"""E6 -- Section 4.3's efficiency claim: Protocol II vs Protocol I.

"In Protocol I ... the server waits for the user to return the
signature of the current root digest in another message.  Only after
receiving this signature, the server can answer the next query.  This
additional blocking step affects throughput in systems with frequent
updates.  Also, the protocol requires a public key infrastructure."

Regenerates the comparison under an update-heavy workload: makespan,
throughput, messages per operation, and whether a PKI is needed --
Protocol II must win on every axis, and the naive baseline shows the
verification overhead both pay relative to trusting the server.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table, overhead_metrics
from repro.core import build_simulation
from repro.simulation.workload import steady_workload

NEEDS_PKI = {"naive": False, "protocol1": True, "protocol2": False}
BLOCKS = {"naive": False, "protocol1": True, "protocol2": False}


def run_honest(protocol: str, seed: int = 4):
    # Frequent updates: tight spacing, all writes -- the workload the
    # paper says hurts Protocol I.
    workload = steady_workload(4, 12, spacing=2, keyspace=16,
                               write_ratio=1.0, seed=seed)
    simulation = build_simulation(protocol, workload, k=10_000, seed=seed)
    return simulation.execute()


def test_protocol_overhead_comparison(capsys, benchmark):
    rows = []
    measured = {}
    for protocol in ("naive", "protocol1", "protocol2"):
        report = run_honest(protocol)
        assert not report.detected
        metrics = overhead_metrics(report)
        measured[protocol] = metrics
        rows.append([
            protocol,
            metrics.operations,
            metrics.completion_makespan,
            round(metrics.throughput_ops_per_round, 3),
            metrics.messages_per_operation,
            NEEDS_PKI[protocol],
            BLOCKS[protocol],
        ])

    emit(capsys, "E6_protocol_overhead", format_table(
        ["protocol", "ops", "makespan (rounds)", "throughput (ops/round)",
         "messages/op", "needs PKI", "blocking step"],
        rows,
        title="E6: Protocol II removes Protocol I's blocking message (update-heavy workload)",
    ))

    # The paper's claims, as measured facts:
    assert measured["protocol1"].messages_per_operation == 3.0
    assert measured["protocol2"].messages_per_operation == 2.0
    assert measured["protocol2"].throughput_ops_per_round > measured["protocol1"].throughput_ops_per_round
    assert measured["protocol2"].completion_makespan < measured["protocol1"].completion_makespan
    # And Protocol II matches the naive baseline's message count: the
    # verification is piggybacked, not an extra round trip.
    assert measured["protocol2"].messages_per_operation == measured["naive"].messages_per_operation

    benchmark.pedantic(lambda: run_honest("protocol2"), rounds=3, iterations=1)


def test_protocol1_blocking_kernel(capsys, benchmark):
    benchmark.pedantic(lambda: run_honest("protocol1"), rounds=3, iterations=1)
