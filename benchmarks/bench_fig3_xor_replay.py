"""E3 -- Figure 3 / Lemma 4.1: the XOR replay and the tagged-state fix.

The paper's Figure 3 shows a server replaying state (D2, 2) so that
every intermediate node of the seen-state graph has even degree: a
plain XOR of untagged states telescopes to (first ^ last) and the fork
is invisible.  Protocol II's two refinements -- tagging each state with
the user that validated the transition into it, and the per-user
counter regression check -- make the same replay leave odd-degree
vertices, so the register check fails (Lemma 4.1).

This bench regenerates the figure as an ablation table:

* untagged XOR register        -> attack hidden (check passes);
* tagged, no counter check     -> attack hidden for a same-user replay;
* full Protocol II             -> attack detected.

plus a randomized fork sweep against the full protocol in simulation.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core import build_simulation
from repro.crypto.hashing import hash_bytes, hash_state, hash_tagged_state, xor_all
from repro.protocols.graph import StateGraph
from repro.server.attacks import ForkAttack
from repro.simulation.workload import steady_workload

ROOTS = {name: hash_bytes(f"M({name})".encode())
         for name in ("D0", "D1", "D2", "D2p", "D2pp", "D3", "D4")}

# Figure 3's edges: (old, old_ctr) -> (new, new_ctr), validating user.
FIG3 = [
    ("D0", 0, "D1", 1, "u1"),
    ("D1", 1, "D2", 2, "u2"),
    ("D2", 2, "D3", 3, "u1"),
    ("D0", 0, "D2p", 2, "u2"),
    ("D2p", 2, "D3", 3, "u3"),
    ("D0", 0, "D2pp", 2, "u1"),
    ("D2pp", 2, "D3", 3, "u2"),
    ("D3", 3, "D4", 4, "u3"),
]


def untagged_check() -> tuple[bool, bool]:
    """(check passes?, graph is a true serial history?)"""
    tag = lambda name, ctr: hash_state(ROOTS[name], ctr)
    graph = StateGraph()
    sigma = xor_all(tag(o, oc) ^ tag(n, nc) for o, oc, n, nc, _u in FIG3)
    for o, oc, n, nc, _u in FIG3:
        graph.add(tag(o, oc), tag(n, nc))
    passes = sigma == (tag("D0", 0) ^ tag("D4", 4))
    return passes, graph.is_directed_path()


def tagged_check() -> tuple[bool, bool]:
    """Full Protocol II: tags + distinct same-counter validators."""
    producer = {("D0", 0): ""}
    tag = lambda name, ctr, user: hash_tagged_state(ROOTS[name], ctr, user)
    edges = []
    for o, oc, n, nc, user in FIG3:
        old = tag(o, oc, producer.get((o, oc), ""))
        new = tag(n, nc, user)
        producer.setdefault((n, nc), user)
        edges.append((old, new))
    graph = StateGraph()
    for old, new in edges:
        graph.add(old, new)
    sigma = xor_all(old ^ new for old, new in edges)
    start = tag("D0", 0, "")
    candidates = {new for _old, new in edges}
    passes = any(sigma == (start ^ last) for last in candidates)
    return passes, graph.is_directed_path()


def test_fig3_ablation(capsys, benchmark):
    untagged_passes, untagged_path = untagged_check()
    tagged_passes, tagged_path = tagged_check()

    rows = [
        ["untagged XOR h(M(D)||ctr)", not untagged_path, untagged_passes,
         "HIDDEN" if untagged_passes else "detected"],
        ["tagged h(M(D)||ctr||user) + ctr check", not tagged_path, tagged_passes,
         "HIDDEN" if tagged_passes else "detected"],
    ]
    emit(capsys, "E3_fig3_xor_replay", format_table(
        ["register design", "server actually forked", "sync check passes", "outcome"],
        rows,
        title="E3 / Figure 3: the replay attack vs register designs (ablation)",
    ))

    assert untagged_passes, "Figure 3: untagged XOR must hide the replay"
    assert not tagged_passes, "Protocol II tagging must expose the replay"
    assert not untagged_path and not tagged_path

    benchmark(tagged_check)


def test_fig3_randomized_forks_always_detected(capsys, benchmark):
    """A fork sweep: whatever round the server forks at, Protocol II's
    registers refuse to telescope at the next sync."""
    detected = 0
    fired = 0
    for seed in range(6):
        workload = steady_workload(3, 14, keyspace=6, write_ratio=0.6, seed=seed)
        attack = ForkAttack(victims=["user1"], fork_round=10 + 5 * seed)
        simulation = build_simulation("protocol2", workload, attack=attack, k=4, seed=seed)
        report = simulation.execute()
        assert not report.false_alarm
        if report.first_deviation_round is not None:
            fired += 1
            # Theorem 4.2's exact promise: detection before any user
            # completes more than k operations issued after deviation.
            ops_after = report.max_ops_after_deviation()
            assert report.detected or ops_after < 4, (seed, ops_after)
            if report.detected:
                detected += 1
    assert fired >= 4  # the sweep must actually exercise the attack
    assert detected >= fired - 1

    workload = steady_workload(3, 14, keyspace=6, write_ratio=0.6, seed=0)
    attack_factory = lambda: ForkAttack(victims=["user1"], fork_round=10)

    def kernel():
        simulation = build_simulation("protocol2", workload, attack=attack_factory(), k=4, seed=0)
        return simulation.execute()

    benchmark.pedantic(kernel, rounds=3, iterations=1)
