"""E13 -- bandwidth: the verification objects in bytes on the wire.

"O(log n) digests" made concrete: every message is encoded with the
binary wire codec and billed.  Two views:

* VO bytes for a point read / update as the database grows (the byte
  version of Figure 2's scaling);
* total protocol bandwidth per operation, naive vs Protocol I vs
  Protocol II on the same workload (the price of verification on the
  wire, and Protocol I's extra signed message).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core.scenarios import build_simulation
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery
from repro.simulation.channels import Network
from repro.simulation.workload import steady_workload
from repro.wire import wire_size

SIZES = (2 ** 6, 2 ** 10, 2 ** 14)


def test_wire_vo_scaling(capsys, benchmark):
    rows = []
    read_bytes = {}
    for n in SIZES:
        db = VerifiedDatabase(order=8)
        for i in range(n):
            db.execute(WriteQuery(f"{i:06d}".encode(), b"x" * 32))
        key = f"{n // 2:06d}".encode()
        read_result = db.execute(ReadQuery(key))
        write_result = db.execute(WriteQuery(key, b"y" * 32))
        read_bytes[n] = wire_size(read_result)
        rows.append([n, read_bytes[n], wire_size(write_result),
                     round(read_bytes[n] / (n * 32), 4)])

    emit(capsys, "E13_wire_vo", format_table(
        ["n", "read response (bytes)", "update response (bytes)",
         "read bytes / data bytes"],
        rows,
        title="E13a: verification objects on the wire (logarithmic in n)",
    ))
    assert read_bytes[2 ** 14] < read_bytes[2 ** 6] * 4  # 256x data, <4x bytes

    db = VerifiedDatabase(order=8)
    for i in range(2 ** 10):
        db.execute(WriteQuery(f"{i:06d}".encode(), b"x" * 32))
    result = db.execute(ReadQuery(b"000512"))
    benchmark(lambda: wire_size(result))


def test_wire_protocol_bandwidth(capsys, benchmark):
    rows = []
    per_op = {}
    for protocol in ("naive", "protocol1", "protocol2"):
        workload = steady_workload(3, 10, spacing=6, keyspace=16,
                                   write_ratio=0.6, seed=4)
        network = Network(user_ids=workload.user_ids, account_bytes=True)
        simulation = build_simulation(protocol, workload, k=10_000, seed=4,
                                      network=network)
        report = simulation.execute()
        assert not report.detected
        ops = sum(report.operations_completed.values())
        per_op[protocol] = network.bytes_sent / ops
        rows.append([protocol, ops, network.bytes_sent, round(per_op[protocol])])

    emit(capsys, "E13_wire_bandwidth", format_table(
        ["protocol", "ops", "total bytes", "bytes / op"],
        rows,
        title="E13b: protocol bandwidth per operation (wire-encoded)",
    ))

    # Both verified protocols pay the VO; Protocol I additionally ships a
    # signed follow-up per op.
    assert per_op["protocol1"] > per_op["protocol2"] > per_op["naive"] * 0.9
    # And the verified overhead stays within an order of magnitude of the
    # unverified baseline (the naive server still ships the same VO data
    # in our implementation; the delta is counters+signatures).
    assert per_op["protocol1"] < per_op["naive"] * 3

    workload = steady_workload(3, 10, spacing=6, keyspace=16, write_ratio=0.6, seed=4)

    def kernel():
        network = Network(user_ids=workload.user_ids, account_bytes=True)
        return build_simulation("protocol2", workload, k=10_000, seed=4,
                                network=network).execute()

    benchmark.pedantic(kernel, rounds=3, iterations=1)
