"""E1 -- Figure 1 / Theorem 3.1: the partition attack.

Regenerates the paper's central claim as a measured series: against a
no-external-communication client (naive) the fork is never detected;
against Protocol II with sync period k, some user detects it before any
user completes more than k operations issued after the deviation --
for every k in the sweep.
"""

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core import build_simulation
from repro.server.attacks import ForkAttack
from repro.simulation.workload import partitionable_workload

K_SWEEP = (1, 2, 4, 8, 16, 32)


def run_partition(protocol: str, k: int, seed: int = 11):
    workload = partitionable_workload(group_a_size=1, group_b_size=2, k=k, seed=seed)
    attack = ForkAttack(victims=workload.metadata["group_b"],
                        fork_round=workload.metadata["fork_round"])
    simulation = build_simulation(protocol, workload, attack=attack, k=k, seed=seed)
    return simulation.execute()


def test_fig1_partition_series(capsys, benchmark):
    rows = []
    for k in K_SWEEP:
        report = run_partition("protocol2", k)
        assert report.detected, f"fork must be detected for k={k}"
        assert not report.false_alarm
        ops_after = report.max_ops_after_deviation()
        assert ops_after is not None and ops_after <= k, (k, ops_after)
        rows.append([k, True, report.detection_delay_rounds(), ops_after])

    naive = run_partition("naive", 8)
    rows.append(["naive (any k)", naive.detected, None, "unbounded"])

    emit(capsys, "E1_fig1_partition", format_table(
        ["sync period k", "detected", "delay (rounds)", "max ops issued after fork"],
        rows,
        title="E1 / Figure 1: partition attack vs Protocol II (k-bounded detection)",
    ))

    # Timed kernel: one full adversarial simulation at k=8.
    benchmark.pedantic(lambda: run_partition("protocol2", 8), rounds=3, iterations=1)


def test_fig1_naive_never_detects(capsys):
    for seed in (11, 12, 13):
        report = run_partition("naive", 8, seed=seed)
        assert report.first_deviation_round is not None
        assert not report.detected
