"""E15 -- exhaustive model checking of Theorem 4.2 (small models).

Randomized campaigns (E8) sample the adversary; this bench *enumerates*
it: every (operating-user sequence, serve-state pick, claimed owner)
the server can choose in a bounded model.  The theorem in miniature:

* every honest behaviour accepted (completeness, zero false alarms);
* every deviating behaviour rejected (soundness);

plus the ablation that makes the design concrete: with untagged
registers and content re-convergence allowed, exhaustive search
*rediscovers the Figure 3 attack* (a triple fork from one state by
three distinct users) -- and the tagged design closes exactly that
hole.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.analysis import modelcheck
from repro.analysis.modelcheck import model_check, model_check_protocol1
from repro.crypto.hashing import hash_bytes, hash_state

SPACES = [
    # (users, ops, owner lies)
    (2, 4, True),
    (2, 5, False),
    (3, 4, False),
    (2, 6, False),
]


def test_exhaustive_theorem42(capsys, benchmark):
    rows = []
    total = 0
    for n_users, n_ops, lies in SPACES:
        report = model_check(n_users=n_users, n_ops=n_ops,
                             enumerate_owner_lies=lies)
        total += report.behaviours
        assert report.theorem_holds, (n_users, n_ops, report.counterexamples)
        rows.append([n_users, n_ops, lies, report.behaviours,
                     report.honest_accepted, report.deviating_rejected,
                     report.honest_rejected, report.deviating_accepted])

    emit(capsys, "E15_modelcheck", format_table(
        ["users", "ops", "owner lies", "behaviours", "honest ok",
         "deviating caught", "false alarms", "missed"],
        rows,
        title=f"E15: exhaustive Theorem 4.2 check -- {total} server behaviours, zero violations",
    ))

    # Protocol I over the same spaces (Theorem 4.1 exhaustively).
    p1_rows = []
    for n_users, n_ops in ((2, 4), (2, 5), (3, 4), (2, 6)):
        report = model_check_protocol1(n_users=n_users, n_ops=n_ops)
        assert report.theorem_holds, (n_users, n_ops)
        p1_rows.append([n_users, n_ops, report.behaviours,
                        report.honest_accepted, report.deviating_rejected,
                        report.honest_rejected, report.deviating_accepted])
    emit(capsys, "E15_modelcheck_p1", format_table(
        ["users", "ops", "behaviours", "honest ok", "deviating caught",
         "false alarms", "missed"],
        p1_rows,
        title="E15c: exhaustive Theorem 4.1 check (Protocol I, count-based sync)",
    ))

    benchmark.pedantic(
        lambda: model_check(n_users=2, n_ops=4, enumerate_owner_lies=True),
        rounds=3, iterations=1)


def test_ablation_rediscovers_figure3(capsys, benchmark):
    original_fresh = modelcheck._fresh_root
    original_tag = modelcheck.hash_tagged_state
    modelcheck._fresh_root = (
        lambda parent, op_index: hash_bytes(bytes([parent.ctr + 1])))
    try:
        modelcheck.hash_tagged_state = lambda root, ctr, owner: hash_state(root, ctr)
        weakened = model_check(n_users=3, n_ops=3, enumerate_owner_lies=False)
        modelcheck.hash_tagged_state = original_tag
        full = model_check(n_users=3, n_ops=3, enumerate_owner_lies=False)
    finally:
        modelcheck._fresh_root = original_fresh
        modelcheck.hash_tagged_state = original_tag

    emit(capsys, "E15_modelcheck_fig3", format_table(
        ["register design", "behaviours", "hidden forks (missed)",
         "canonical counterexample"],
        [
            ["untagged h(M(D)||ctr)", weakened.behaviours,
             weakened.deviating_accepted,
             "3 users forked off one state" if weakened.deviating_accepted else "-"],
            ["tagged h(M(D)||ctr||user)", full.behaviours,
             full.deviating_accepted, "-"],
        ],
        title="E15b: exhaustive search rediscovers Figure 3 when tagging is removed",
    ))
    assert weakened.deviating_accepted > 0
    assert any(c.picks == (0, 0, 0) for c in weakened.counterexamples)
    assert full.theorem_holds

    benchmark.pedantic(
        lambda: model_check(n_users=3, n_ops=3, enumerate_owner_lies=False),
        rounds=3, iterations=1)
