"""E9 -- ablations of the design choices DESIGN.md Section 5 calls out.

* sync period k: detection delay grows with k while the sync cost
  (broadcast messages per operation) amortises as ~1/k -- the paper's
  operational trade-off knob;
* counter regression check: with it disabled, a same-user counter
  replay sails through the per-operation check (it is only caught
  later, at sync, or never for short histories) -- the measured version
  of why step 4 exists;
* flat vs tree-aggregated sync (future-work item 2): per-user sync
  traffic O(n) vs O(1).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core import build_simulation
from repro.server.attacks import CounterReplayAttack, ForkAttack
from repro.simulation.workload import partitionable_workload, steady_workload


def test_ablation_sync_period(capsys, benchmark):
    """k: detection delay up, amortised sync traffic down."""
    rows = []
    broadcast_costs = {}
    delays = {}
    for k in (1, 2, 4, 8, 16):
        # honest run for the cost side
        workload = steady_workload(3, 24, spacing=3, seed=3)
        honest = build_simulation("protocol2", workload, k=k, seed=3).execute()
        assert not honest.detected
        ops = sum(honest.operations_completed.values())
        broadcast_costs[k] = honest.broadcasts_sent / ops

        # adversarial run for the delay side
        attacked_workload = partitionable_workload(k=k, seed=3)
        attack = ForkAttack(victims=attacked_workload.metadata["group_b"],
                            fork_round=attacked_workload.metadata["fork_round"])
        attacked = build_simulation("protocol2", attacked_workload,
                                    attack=attack, k=k, seed=3).execute()
        assert attacked.detected
        delays[k] = attacked.max_ops_after_deviation()
        rows.append([k, round(broadcast_costs[k], 2), delays[k]])

    emit(capsys, "E9_ablation_sync_period", format_table(
        ["k", "broadcasts / op (honest)", "ops after fork (attacked)"],
        rows,
        title="E9a: the sync-period trade-off (cost amortises, delay grows)",
    ))
    assert broadcast_costs[16] < broadcast_costs[1] / 3   # amortisation
    assert delays[16] > delays[1]                          # delayed detection
    assert all(delays[k] <= k for k in delays)             # but always bounded

    benchmark.pedantic(
        lambda: build_simulation("protocol2", steady_workload(3, 24, spacing=3, seed=3),
                                 k=4, seed=3).execute(),
        rounds=3, iterations=1)


def test_ablation_counter_check(capsys, benchmark):
    """Disable the step-4 check: the counter replay is no longer caught
    at the operation; full Protocol II catches it instantly."""

    rows = []
    outcomes = {}
    for enforce in (True, False):
        workload = steady_workload(3, 14, spacing=4, keyspace=6, seed=4)
        attack = CounterReplayAttack(victim="user0", replay_round=workload.horizon() // 3)
        simulation = build_simulation("protocol2", workload, attack=attack, k=50, seed=4)
        if not enforce:
            for user in simulation.users:
                user.client._enforce_counter_check = False
        report = simulation.execute()
        instantly = (report.detected and report.detection_delay_rounds() is not None
                     and report.detection_delay_rounds() <= 3)
        outcomes[enforce] = (report.detected, instantly)
        rows.append(["enabled" if enforce else "DISABLED (ablation)",
                     report.detected, instantly,
                     report.detection_delay_rounds()])

    emit(capsys, "E9_ablation_counter_check", format_table(
        ["step-4 counter check", "replay detected", "caught at the operation",
         "delay (rounds)"],
        rows,
        title="E9b: the per-user counter regression check (Protocol II step 4)",
    ))
    assert outcomes[True] == (True, True)
    detected_without, instant_without = outcomes[False]
    assert not instant_without  # the per-op catch is gone

    benchmark.pedantic(
        lambda: build_simulation(
            "protocol2", steady_workload(3, 14, spacing=4, keyspace=6, seed=4),
            attack=CounterReplayAttack(victim="user0", replay_round=12),
            k=50, seed=4).execute(),
        rounds=3, iterations=1)


def test_ablation_flat_vs_aggregated_sync(capsys, benchmark):
    """Future-work item 2: per-user sync traffic, flat vs tree."""
    rows = []
    flat_traffic = {}
    tree_traffic = {}
    for n_users in (4, 8, 16):
        workload = steady_workload(n_users, 6, spacing=6, seed=5)

        flat = build_simulation("protocol2", workload, k=3, seed=5)
        flat_report = flat.execute()
        assert not flat_report.detected
        # every broadcast reaches n-1 users; normalise per sync
        flat_syncs = max(1, flat_report.broadcasts_sent // (2 * n_users + 1))
        flat_traffic[n_users] = flat_report.broadcasts_sent / flat_syncs

        tree = build_simulation("protocol2agg", workload, k=3, seed=5)
        tree_report = tree.execute()
        assert not tree_report.detected
        tree_syncs = max(1, tree_report.broadcasts_sent // 3)
        worst = max(u.client.sync_messages_received for u in tree.users)
        tree_traffic[n_users] = worst / tree_syncs

        rows.append([n_users, round(flat_traffic[n_users], 1),
                     round(tree_traffic[n_users], 1)])

    emit(capsys, "E9_ablation_aggregation", format_table(
        ["users n", "flat: broadcasts per sync", "tree: worst per-user msgs per sync"],
        rows,
        title="E9c: flat vs tree-aggregated synchronisation (per-sync traffic)",
    ))
    assert flat_traffic[16] > flat_traffic[4] * 2     # flat grows with n
    assert tree_traffic[16] <= tree_traffic[4] + 4    # tree stays constant

    benchmark.pedantic(
        lambda: build_simulation("protocol2agg",
                                 steady_workload(8, 6, spacing=6, seed=5),
                                 k=3, seed=5).execute(),
        rounds=3, iterations=1)
