"""E8 -- Theorems 4.1/4.2/4.3 as an empirical soundness sweep.

Runs the full attack gallery (all violation classes of Section 1)
against every protocol across several seeds, and checks:

* the verifying protocols detect every attack that actually deviates;
* no protocol ever raises a false alarm on an honest run;
* the naive baseline misses everything (the status quo).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core import build_simulation
from repro.server.attacks import (
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    HonestBehavior,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)
from repro.simulation.workload import epoch_workload, steady_workload

EPOCH = 30
SEEDS = (3, 7, 21)

ATTACKS = [
    ("honest", lambda r: HonestBehavior()),
    ("fork", lambda r: ForkAttack(victims=["user1"], fork_round=r)),
    ("drop-commit", lambda r: DropCommitAttack(victim="user1", drop_round=r)),
    ("stale-replay", lambda r: StaleRootReplayAttack(victim="user2", freeze_round=r)),
    ("tamper", lambda r: TamperValueAttack(victim="user0", tamper_round=r)),
    ("tamper-forged", lambda r: TamperValueAttack(victim="user0", tamper_round=r, forge_proof=True)),
    ("ctr-replay", lambda r: CounterReplayAttack(victim="user0", replay_round=r)),
    ("sig-forge", lambda r: SignatureForgeAttack(forge_round=r)),
]

PROTOCOLS = ("naive", "protocol1", "protocol2", "protocol2strong", "protocol2agg", "protocol3")


def make_workload(protocol: str, seed: int):
    if protocol == "protocol3":
        return epoch_workload(n_users=3, epoch_length=EPOCH, epochs=8,
                              keyspace=6, seed=seed)
    if protocol == "protocol1":
        return steady_workload(3, 10, spacing=8, keyspace=6, write_ratio=0.6, seed=seed)
    # the Protocol II variants share Protocol II's workload envelope
    return steady_workload(3, 14, spacing=4, keyspace=6, write_ratio=0.6, seed=seed)


def run_cell(protocol: str, attack_factory, seed: int):
    workload = make_workload(protocol, seed)
    attack = attack_factory(int(workload.horizon() * 0.25))
    simulation = build_simulation(protocol, workload, attack=attack,
                                  k=4, epoch_length=EPOCH, seed=seed)
    return simulation.execute()


def test_attack_gallery_soundness(capsys, benchmark):
    rows = []
    for attack_name, attack_factory in ATTACKS:
        row = [attack_name]
        for protocol in PROTOCOLS:
            fired = detected = false_alarms = 0
            for seed in SEEDS:
                report = run_cell(protocol, attack_factory, seed)
                if report.false_alarm:
                    false_alarms += 1
                if report.first_deviation_round is not None:
                    fired += 1
                    if report.detected:
                        detected += 1
            assert false_alarms == 0, (attack_name, protocol)
            if attack_name == "honest":
                assert fired == 0, protocol
                row.append("clean")
            elif protocol == "naive":
                assert detected == 0, attack_name
                row.append(f"missed {fired}/{fired}" if fired else "n/a")
            else:
                # every verifying protocol catches everything that fired
                assert detected == fired, (attack_name, protocol, detected, fired)
                row.append(f"caught {detected}/{fired}" if fired else "n/a")
        rows.append(row)

    emit(capsys, "E8_attack_gallery", format_table(
        ["attack \\ protocol"] + list(PROTOCOLS), rows,
        title=f"E8: detection soundness over seeds {SEEDS} (caught/fired)",
    ))

    benchmark.pedantic(
        lambda: run_cell("protocol2", ATTACKS[1][1], SEEDS[0]),
        rounds=3, iterations=1,
    )
