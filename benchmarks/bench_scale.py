"""E12 -- scale study: simulator and protocol behaviour as n grows.

Not a paper artifact (the paper has no testbed), but the scaling story
a systems reviewer asks for: honest Protocol II runs at increasing user
counts, reporting completed operations, makespan, protocol throughput
and the broadcast bill -- plus the same sweep for the tree-aggregated
variant to show the sync cost curve bending.

E12b extends the study to the sharded store: ``--shards`` sweeps a
Merkle forest across shard counts, measuring disjoint-shard batched
write throughput (server executes every write with its full two-level
VO, one root refresh per batch), mean VO size in digests, and refresh
work per operation; an untimed verifying client replays *every* VO and
the sweep fails on any verification miss or root divergence.  The
``--users`` sweep runs honest end-to-end simulations past E12's 32
users, in both single-tree and forest mode, checking for detection
false positives.

Run ``python benchmarks/bench_scale.py --quick --check`` for the CI
forest-smoke gate, or without ``--quick`` for the full sweep (shard
counts to 64, user counts to 64).
"""

import argparse
import json
import math
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit, emit_json
from repro.analysis import format_table, overhead_metrics
from repro.core.scenarios import build_simulation
from repro.mtree.database import ClientVerifier, VerifiedDatabase, WriteQuery
from repro.simulation.workload import steady_workload

USER_SWEEP = (4, 8, 16, 32)
EXTENDED_USER_SWEEP = (4, 8, 16, 32, 48, 64)
SHARD_SWEEP = (1, 2, 8, 64)
#: forest mode used in the sharded half of the ``--users`` sweep
SIM_SHARDS = 8


def run_honest(protocol: str, n_users: int, seed: int = 9, shards: int = 1):
    workload = steady_workload(n_users, 8, spacing=6, keyspace=32,
                               write_ratio=0.6, scan_ratio=0.1, seed=seed)
    simulation = build_simulation(protocol, workload, k=4, seed=seed,
                                  shards=shards)
    started = time.perf_counter()
    report = simulation.execute()
    wall = time.perf_counter() - started
    return report, wall


def test_scale_sweep(capsys, benchmark):
    rows = []
    throughput = {}
    for n in USER_SWEEP:
        report, wall = run_honest("protocol2", n)
        assert not report.detected, (n, report.alarms)
        metrics = overhead_metrics(report)
        assert metrics.operations == n * 8
        throughput[n] = metrics.throughput_ops_per_round
        agg_report, _agg_wall = run_honest("protocol2agg", n)
        assert not agg_report.detected
        rows.append([
            n,
            metrics.operations,
            metrics.completion_makespan,
            round(metrics.throughput_ops_per_round, 2),
            report.broadcasts_sent,
            agg_report.broadcasts_sent,
            round(wall * 1000, 1),
        ])

    emit(capsys, "E12_scale", format_table(
        ["users n", "ops", "makespan (rounds)", "throughput (ops/round)",
         "flat sync broadcasts", "tree sync broadcasts", "wall (ms)"],
        rows,
        title="E12: honest Protocol II at scale (flat vs tree sync broadcast bill)",
    ))

    # Throughput grows with concurrency (server is not the bottleneck
    # for the verification-free-of-blocking protocol).
    assert throughput[32] > throughput[4]
    # Tree sync sends a constant 3 broadcasts per sync; flat sends ~2n+1.
    flat = {row[0]: row[4] for row in rows}
    tree = {row[0]: row[5] for row in rows}
    assert flat[32] > tree[32] * 2

    benchmark.pedantic(lambda: run_honest("protocol2", 16)[0], rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# E12b: Merkle-forest shard sweep
# ---------------------------------------------------------------------------


def run_forest_writes(shards: int, *, keys: int = 4096, batches: int = 12,
                      batch_size: int = 64, order: int = 8) -> dict:
    """Disjoint-shard batched writes against a pre-populated store.

    The server path mirrors ``ServerCore.apply_batch``: every write is
    executed with its full VO, then one ``refresh_root`` pass covers
    the whole batch.  Write keys stride across the keyspace so each
    batch touches many distinct shards (the disjoint-shard case the
    forest's dirty tracking is built for).  Verification is untimed but
    *total*: a ``ClientVerifier`` replays every VO in order and the
    derived root chain must land exactly on the server's final root.
    """
    db = VerifiedDatabase(order=order, shards=shards)
    all_keys = [b"key%08d" % i for i in range(keys)]
    for key in all_keys:
        db.mtree.insert(key, b"v")
    db.mtree.refresh_root()

    client = ClientVerifier(
        db.root_digest(), order=db.spec if db.spec.sharded else order)
    pending = []
    recompute = 0
    dirty_seen = []
    step = 0
    started = time.perf_counter()
    for _batch in range(batches):
        for _slot in range(batch_size):
            key = all_keys[(step * 191) % keys]  # stride across shards
            query = WriteQuery(key, b"w%08d" % step)
            pending.append((query, db.execute(query)))
            step += 1
        dirty = getattr(db.mtree, "dirty_shard_count", None)
        if dirty is not None:
            dirty_seen.append(dirty)
        recompute += db.mtree.refresh_root()[1]
    wall = time.perf_counter() - started

    verify_failures = 0
    vo_total = 0
    for query, result in pending:
        vo_total += result.proof.size_digests()
        try:
            client.apply(query, result)
        except Exception:  # noqa: BLE001 - any miss fails the sweep
            verify_failures += 1
    ops = batches * batch_size
    return {
        "shards": shards,
        "ops": ops,
        "ops_per_s": ops / wall,
        "vo_digests_mean": vo_total / ops,
        "recompute_per_op": recompute / ops,
        "dirty_shards_per_batch": (sum(dirty_seen) / len(dirty_seen)
                                   if dirty_seen else None),
        "verify_failures": verify_failures,
        "root_match": client.root_digest == db.root_digest(),
    }


def forest_shard_sweep(shard_counts, **sizes) -> list[dict]:
    """Per-shard-count table rows; speedup is relative to the first
    entry (which must be the single-tree baseline, shards == 1)."""
    results = []
    baseline = None
    for shards in shard_counts:
        row = run_forest_writes(shards, **sizes)
        if baseline is None:
            baseline = row["ops_per_s"]
        row["speedup"] = row["ops_per_s"] / baseline
        results.append(row)
    return results


def forest_sweep_checks(results: list[dict]) -> dict:
    """What the measurements must support for the sweep to pass.

    * soundness is absolute: every VO verifies and every client root
      chain lands on the server root, at every shard count;
    * VO growth stays O(log S): the two-level VO may add at most one
      top-tree path (~``top_order`` digests per top level, i.e.
      ``O(log S)``) over the single-tree VO -- measured, the shallower
      shard trees give most of that back and VOs stay near-flat;
    * the overhead of the two-level structure is bounded: sharded
      throughput stays within 4x of the single tree.  In pure Python
      the forest does not *win* wall-clock at a fixed key count (each
      op builds two proofs whose combined depth matches the single
      tree's), so the honest claim gated here is equivalence at
      bounded cost -- the forest's payoff is the bounded per-batch
      recompute region and the O(log S) VO, not single-node ops/s.
    """
    base = results[0]
    assert base["shards"] == 1, "sweep must start at the single-tree baseline"
    vo_ok = all(
        row["vo_digests_mean"]
        <= base["vo_digests_mean"] + 8 * (1 + math.log2(row["shards"]))
        for row in results[1:])
    return {
        "verify_failures": sum(row["verify_failures"] for row in results),
        "roots_match": all(row["root_match"] for row in results),
        "vo_growth_olog_s": vo_ok,
        "overhead_bounded": all(row["speedup"] >= 0.25 for row in results),
    }


def forest_sweep_passes(checks: dict) -> bool:
    return (checks["verify_failures"] == 0
            and checks["roots_match"]
            and checks["vo_growth_olog_s"]
            and checks["overhead_bounded"])


def forest_table(results: list[dict]) -> str:
    rows = [[
        row["shards"],
        row["ops"],
        round(row["ops_per_s"]),
        round(row["speedup"], 2),
        round(row["vo_digests_mean"], 1),
        round(row["recompute_per_op"], 2),
        ("-" if row["dirty_shards_per_batch"] is None
         else round(row["dirty_shards_per_batch"], 1)),
        row["verify_failures"],
    ] for row in results]
    return format_table(
        ["shards S", "write ops", "ops/s", "speedup vs S=1", "VO (digests)",
         "recompute/op", "dirty shards/batch", "VO misses"],
        rows,
        title="E12b: disjoint-shard batched writes across a Merkle forest",
    )


def test_forest_shard_sweep(capsys):
    """CI-sized shard sweep: every VO verifies, roots converge, VO size
    stays O(log S), and forest overhead stays bounded."""
    results = forest_shard_sweep((1, 2, 8), keys=1024, batches=6,
                                 batch_size=48, order=8)
    checks = forest_sweep_checks(results)
    emit(capsys, "E12b_forest_scale", forest_table(results), rows=results)
    assert forest_sweep_passes(checks), (checks, results)


# ---------------------------------------------------------------------------
# CLI: the forest-smoke gate and the full sweep
# ---------------------------------------------------------------------------


def run_user_sweep(user_counts, seed: int = 9) -> list[dict]:
    """Honest Protocol II simulations past E12's 32 users, single-tree
    vs forest mode side by side; any detection is a false positive."""
    rows = []
    for n in user_counts:
        single, single_wall = run_honest("protocol2", n, seed=seed)
        forest, forest_wall = run_honest("protocol2", n, seed=seed,
                                         shards=SIM_SHARDS)
        metrics = overhead_metrics(single)
        forest_metrics = overhead_metrics(forest)
        rows.append({
            "users": n,
            "ops": metrics.operations,
            "throughput_ops_per_round": metrics.throughput_ops_per_round,
            "forest_throughput_ops_per_round":
                forest_metrics.throughput_ops_per_round,
            "single_wall_ms": single_wall * 1000,
            "forest_wall_ms": forest_wall * 1000,
            "false_positives": int(single.detected) + int(forest.detected),
        })
    return rows


def user_table(rows: list[dict]) -> str:
    return format_table(
        ["users n", "ops", "tput (ops/round)", f"tput S={SIM_SHARDS}",
         "wall (ms)", f"wall S={SIM_SHARDS} (ms)", "false positives"],
        [[row["users"], row["ops"],
          round(row["throughput_ops_per_round"], 2),
          round(row["forest_throughput_ops_per_round"], 2),
          round(row["single_wall_ms"], 1),
          round(row["forest_wall_ms"], 1),
          row["false_positives"]] for row in rows],
        title="E12 extended: honest Protocol II, single tree vs Merkle forest",
    )


def _parse_sweep(text: str) -> tuple[int, ...]:
    values = tuple(int(part) for part in text.split(",") if part.strip())
    if not values:
        raise argparse.ArgumentTypeError("empty sweep")
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller store and sweeps (CI forest smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every criterion holds")
    parser.add_argument("--json", action="store_true", help="JSON only")
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--shards", type=_parse_sweep, default=None,
                        help="comma-separated shard sweep (default 1,2,8,64)")
    parser.add_argument("--users", type=_parse_sweep, default=None,
                        help="comma-separated user sweep (default to 64 users)")
    args = parser.parse_args(argv)

    shard_counts = args.shards or ((1, 2, 8) if args.quick else SHARD_SWEEP)
    user_counts = args.users or ((4, 16, 48) if args.quick
                                 else EXTENDED_USER_SWEEP)
    if shard_counts[0] != 1:
        shard_counts = (1,) + shard_counts
    sizes = (dict(keys=1024, batches=6, batch_size=48) if args.quick
             else dict(keys=4096, batches=12, batch_size=64))

    forest_rows = forest_shard_sweep(shard_counts, order=8, **sizes)
    user_rows = run_user_sweep(user_counts, seed=args.seed)

    checks = forest_sweep_checks(forest_rows)
    checks["sim_false_positives"] = sum(r["false_positives"]
                                        for r in user_rows)
    ok = forest_sweep_passes(checks) and checks["sim_false_positives"] == 0
    results = {
        "quick": args.quick,
        "shard_sweep": forest_rows,
        "user_sweep": user_rows,
        "checks": checks,
        "pass": ok,
    }
    emit_json("E12b_forest_scale", results)
    if not args.json:
        print(forest_table(forest_rows))
        print()
        print(user_table(user_rows))
    print(json.dumps({"checks": checks, "pass": ok}, indent=2))
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
