"""E12 -- scale study: simulator and protocol behaviour as n grows.

Not a paper artifact (the paper has no testbed), but the scaling story
a systems reviewer asks for: honest Protocol II runs at increasing user
counts, reporting completed operations, makespan, protocol throughput
and the broadcast bill -- plus the same sweep for the tree-aggregated
variant to show the sync cost curve bending.
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table, overhead_metrics
from repro.core.scenarios import build_simulation
from repro.simulation.workload import steady_workload

USER_SWEEP = (4, 8, 16, 32)


def run_honest(protocol: str, n_users: int, seed: int = 9):
    workload = steady_workload(n_users, 8, spacing=6, keyspace=32,
                               write_ratio=0.6, scan_ratio=0.1, seed=seed)
    simulation = build_simulation(protocol, workload, k=4, seed=seed)
    started = time.perf_counter()
    report = simulation.execute()
    wall = time.perf_counter() - started
    return report, wall


def test_scale_sweep(capsys, benchmark):
    rows = []
    throughput = {}
    for n in USER_SWEEP:
        report, wall = run_honest("protocol2", n)
        assert not report.detected, (n, report.alarms)
        metrics = overhead_metrics(report)
        assert metrics.operations == n * 8
        throughput[n] = metrics.throughput_ops_per_round
        agg_report, _agg_wall = run_honest("protocol2agg", n)
        assert not agg_report.detected
        rows.append([
            n,
            metrics.operations,
            metrics.completion_makespan,
            round(metrics.throughput_ops_per_round, 2),
            report.broadcasts_sent,
            agg_report.broadcasts_sent,
            round(wall * 1000, 1),
        ])

    emit(capsys, "E12_scale", format_table(
        ["users n", "ops", "makespan (rounds)", "throughput (ops/round)",
         "flat sync broadcasts", "tree sync broadcasts", "wall (ms)"],
        rows,
        title="E12: honest Protocol II at scale (flat vs tree sync broadcast bill)",
    ))

    # Throughput grows with concurrency (server is not the bottleneck
    # for the verification-free-of-blocking protocol).
    assert throughput[32] > throughput[4]
    # Tree sync sends a constant 3 broadcasts per sync; flat sends ~2n+1.
    flat = {row[0]: row[4] for row in rows}
    tree = {row[0]: row[5] for row in rows}
    assert flat[32] > tree[32] * 2

    benchmark.pedantic(lambda: run_honest("protocol2", 16)[0], rounds=3, iterations=1)
