"""Wire-path throughput: threaded stop-and-wait vs async pipelined+batched.

Measures the asyncio server core's tentpole claim: a single-writer
event loop draining per-tick batches -- one Merkle dirty-path root
recompute and (Protocol I) one signature per batch instead of one per
operation -- sustains far higher verified-operation throughput than
the thread-per-connection stop-and-wait deployment once client counts
grow.

For each ``(transport, concurrency, batch)`` cell the harness runs C
concurrent Protocol II sessions against a fresh in-process server,
every session writing its own keys, and reports sustained ops/sec plus
p50/p99 per-operation latency.  Verification is never weakened: each
response's VO is checked with :func:`derive_outcome`, the tagged-state
XOR registers are accumulated per operation, and every cell ends with
a passing ``sync_check`` over all sessions -- a cell that cheats
detection does not count as throughput.

Both deployments run durable (WAL + fsync, the server default): the
threaded path commits the WAL once per operation, the batched core
once per drainer batch, so the group-commit amortization is measured
alongside the root-recompute and scheduling effects.

The Protocol I pair is where the per-op baseline really bleeds: the
stop-and-wait deployment pays one RSA signature and a blocking
follow-up round trip per operation, while the async core turns a
pipelined window into one signing run -- one verified signature and
one produced signature per batch.  The speedup gates ride on this
pair; the Protocol II grid reports transport scaling on its own merits
(both transports execute identical verification CPU under one
interpreter, so its ratio reflects only the amortizable per-op
overheads: group WAL commit, root recompute, scheduling).

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py           # full grid
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick --check

``--check`` enforces the gates: pipelined+batched Protocol I >= 2x the
threaded per-op baseline in quick mode and >= 5x in the full grid,
signatures <= 1 per window (plus scheduling slack), and every cell's
sync/count-sync predicate passing.  The full run (re)writes the
repo-root ``BENCH_throughput.json`` baseline; ``--quick`` writes only
under ``benchmarks/results/`` so CI cannot clobber the committed
numbers.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from collections import deque

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import REPO_ROOT, emit_json  # noqa: E402

from repro.crypto.hashing import Digest, hash_tagged_state  # noqa: E402
from repro.mtree.database import WriteQuery  # noqa: E402
from repro.net import (  # noqa: E402
    PipelinedRemoteClientP1,
    RemoteClient,
    RemoteClientP1,
    serve_async_in_thread,
    serve_in_thread,
    sync_check,
)
from repro.net.framing import async_recv_message, async_send_message  # noqa: E402
from repro.protocols.base import Request, Response  # noqa: E402
from repro.protocols.protocol2 import INITIAL_OWNER  # noqa: E402
from repro.protocols.verify import derive_outcome  # noqa: E402

ORDER = 8
BENCH_THROUGHPUT_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: concurrent connection attempts while ramping a cell up -- kept under
#: the listener backlog so a 5k-session ramp cannot refuse connections.
CONNECT_FANOUT = 64

QUICK_SPEEDUP_GATE = 2.0
FULL_SPEEDUP_GATE = 5.0


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - (0 if q < 1 else 1)))
    return ordered[index]


def _raise_fd_limit(needed: int) -> int | None:
    """Best-effort RLIMIT_NOFILE bump; returns the effective soft limit."""
    try:
        import resource
    except ImportError:  # non-POSIX: report unknown, let the run try
        return None
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(needed, hard), hard))
        except (ValueError, OSError):
            pass
        soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    return soft


def _stats(label: str, clients: int, batch: int, total_ops: int,
           wall: float, latencies_ms: list[float], sync_ok: bool) -> dict:
    return {
        "transport": label,
        "clients": clients,
        "batch": batch,
        "ops": total_ops,
        "wall_s": round(wall, 3),
        "ops_per_s": round(total_ops / wall, 1) if wall else 0.0,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 3),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "sync_check": sync_ok,
    }


# -- threaded baseline: C stop-and-wait RemoteClient threads --------------

def run_threaded(clients: int, ops_per_client: int) -> dict:
    data_dir = tempfile.mkdtemp(prefix="tput-threaded-")
    server = serve_in_thread(order=ORDER, data_dir=data_dir)
    host, port = server.address
    genesis = server.initial_root_digest()
    sessions = [
        RemoteClient(host, port, f"u{index}", genesis, order=ORDER,
                     connect_timeout=30.0, op_timeout=120.0)
        for index in range(clients)
    ]
    barrier = threading.Barrier(clients + 1)
    lat_lists: list[list[float]] = [[] for _ in sessions]

    def worker(session: RemoteClient, latencies: list[float]) -> None:
        barrier.wait()
        user = session.user_id
        for step in range(ops_per_client):
            started = time.perf_counter()
            session.put(f"{user}-{step % 8}".encode(), f"{user}:{step}".encode())
            latencies.append((time.perf_counter() - started) * 1000.0)

    threads = [threading.Thread(target=worker, args=(session, lat), daemon=True)
               for session, lat in zip(sessions, lat_lists)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    registers = {session.user_id: session.registers() for session in sessions}
    sync_ok = sync_check(genesis, registers)
    for session in sessions:
        session.close()
    server.stop(snapshot=False)
    shutil.rmtree(data_dir, ignore_errors=True)
    latencies = [value for lat in lat_lists for value in lat]
    return _stats("threaded", clients, 1, clients * ops_per_client,
                  wall, latencies, sync_ok)


# -- async driver: C pipelined sessions in one client event loop ----------
#
# The real PipelinedRemoteClient is a blocking-socket class; C of those
# would need C threads, which is exactly the overhead the async server
# exists to avoid.  The bench therefore runs a minimal asyncio Protocol
# II session performing the *identical* verification work per response
# (rid echo, counter checks, derive_outcome, tagged-state registers) so
# the two transports are compared op-for-op.

async def _async_session(host: str, port: int, user: str,
                         ops: int, window: int,
                         start_gate: asyncio.Event,
                         connect_gate: asyncio.Semaphore,
                         connected: list, all_connected: asyncio.Event,
                         total: int, latencies: list[float]) -> dict:
    async with connect_gate:
        for attempt in range(5):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                if attempt == 4:
                    raise
                await asyncio.sleep(0.05 * (attempt + 1))
    connected.append(user)
    if len(connected) == total:
        all_connected.set()
    await start_gate.wait()
    nonce = os.urandom(4).hex()
    sigma = Digest.zero()
    last = Digest.zero()
    gctr = 0
    pending: deque = deque()
    sent = 0
    received = 0
    try:
        while received < ops:
            while sent < ops and len(pending) < window:
                query = WriteQuery(f"{user}-{sent % 8}".encode(),
                                   f"{user}:{sent}".encode())
                rid = f"{user}:{nonce}:{sent}"
                await async_send_message(writer, Request(
                    query=query, extras={"user": user, "rid": rid}))
                pending.append((query, rid, time.perf_counter()))
                sent += 1
            await writer.drain()
            message = await async_recv_message(reader)
            if message is None:
                raise RuntimeError(f"{user}: server closed mid-window")
            if not isinstance(message, Response):
                raise RuntimeError(f"{user}: unexpected reply {message!r}")
            query, rid, started = pending.popleft()
            latencies.append((time.perf_counter() - started) * 1000.0)
            echoed = message.extras.get("rid")
            if echoed is not None and echoed != rid:
                raise RuntimeError(f"{user}: reordered response {echoed!r}")
            ctr = int(message.extras["ctr"])
            last_user = message.extras["last_user"]
            if ctr < gctr:
                raise RuntimeError(f"{user}: counter regressed")
            if ctr == 0 and last_user != INITIAL_OWNER:
                raise RuntimeError(f"{user}: initial state owned")
            outcome = derive_outcome(query, message.result, ORDER)
            old_tag = hash_tagged_state(outcome.old_root, ctr, last_user)
            new_tag = hash_tagged_state(outcome.new_root, ctr + 1, user)
            sigma = sigma ^ old_tag ^ new_tag
            last = new_tag
            gctr = ctr + 1
            received += 1
    finally:
        writer.close()
    return {"sigma": sigma, "last": last}


async def _async_cell(host: str, port: int, clients: int, ops_per_client: int,
                      window: int, latencies: list[float]) -> tuple[float, dict]:
    start_gate = asyncio.Event()
    all_connected = asyncio.Event()
    connect_gate = asyncio.Semaphore(CONNECT_FANOUT)
    connected: list = []
    tasks = [
        asyncio.ensure_future(_async_session(
            host, port, f"u{index}", ops_per_client, window,
            start_gate, connect_gate, connected, all_connected,
            clients, latencies))
        for index in range(clients)
    ]
    # Let every session connect before the clock starts: cell timings
    # measure the op phase, not TCP ramp-up.
    await asyncio.wait_for(all_connected.wait(), timeout=120.0)
    started = time.perf_counter()
    start_gate.set()
    registers = await asyncio.wait_for(asyncio.gather(*tasks), timeout=900.0)
    wall = time.perf_counter() - started
    return wall, {f"u{index}": regs for index, regs in enumerate(registers)}


def run_async(clients: int, ops_per_client: int, batch: int) -> dict:
    window = max(1, min(batch, ops_per_client))
    data_dir = tempfile.mkdtemp(prefix="tput-async-")
    handle = serve_async_in_thread(order=ORDER, batch_max=batch,
                                   data_dir=data_dir)
    host, port = handle.address
    genesis = handle.initial_root_digest()
    latencies: list[float] = []
    try:
        wall, registers = asyncio.run(_async_cell(
            host, port, clients, ops_per_client, window, latencies))
        sync_ok = sync_check(genesis, registers)
    finally:
        handle.stop(snapshot=False)
        shutil.rmtree(data_dir, ignore_errors=True)
    return _stats("async", clients, batch, clients * ops_per_client,
                  wall, latencies, sync_ok)


# -- Protocol I: per-op signing baseline vs batched signing runs ----------
#
# This is the pair the tentpole's headline gate rides on.  Protocol I
# pays RSA per operation: the stop-and-wait client signs every new
# root, and the server blocks until the follow-up lands.  The async
# server turns a pipelined window into one *signing run* -- the client
# verifies one signature and produces one signature per batch, with
# the intermediate operations checked by hash-chain membership -- so
# the per-op RSA cost (and the blocking round trip) amortizes away
# while the k-bounded detection guarantee is untouched (every VO is
# still verified per op, and the count sync must still pass).

def _run_p1_side(users: list, signers: dict, verifier,
                 make_server, make_client, pipelined: bool,
                 ops_per_client: int, keyspace: int) -> dict:
    from repro.mtree.database import VerifiedDatabase
    from repro.net import count_sync_check
    from repro.protocols.base import ServerState
    from repro.protocols.protocol1 import Protocol1Server, bootstrap_server_state

    state = ServerState(database=VerifiedDatabase(order=ORDER))
    bootstrap_server_state(state, signers[users[0]])
    server = make_server(Protocol1Server(), state)
    host, port = server.address
    clients = {user: make_client(host, port, user) for user in users}
    barrier = threading.Barrier(len(users) + 1)
    lat_lists: list[list[float]] = [[] for _ in users]

    def worker(user: str, latencies: list[float]) -> None:
        client = clients[user]
        barrier.wait()
        for step in range(ops_per_client):
            query = WriteQuery(f"{user}-{step % keyspace}".encode(),
                               f"{user}:{step}".encode())
            started = time.perf_counter()
            if pipelined:
                client.submit(query)
            else:
                client.execute(query)
            latencies.append((time.perf_counter() - started) * 1000.0)
        if pipelined:
            client.drain()

    threads = [threading.Thread(target=worker, args=(user, lat), daemon=True)
               for user, lat in zip(users, lat_lists)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    sync_ok = count_sync_check(
        {user: client.counts() for user, client in clients.items()})
    signatures = sum(getattr(client, "followups_sent", ops_per_client)
                     for client in clients.values())
    for client in clients.values():
        client.close()
    server.stop(snapshot=False)
    total_ops = len(users) * ops_per_client
    row = _stats("p1-pipelined" if pipelined else "p1-threaded",
                 len(users), 1, total_ops, wall,
                 [value for lat in lat_lists for value in lat], sync_ok)
    row["signatures"] = signatures
    if pipelined:
        # submit() returns before the op completes, so per-op latency
        # is not comparable to the stop-and-wait side; report only
        # whole-run throughput for this row.
        del row["p50_ms"], row["p99_ms"]
    return row


def run_p1_pair(clients: int, ops_per_client: int, window: int,
                batch_max: int, bits: int, keyspace: int = 4) -> dict:
    from repro.crypto.signatures import Signer, Verifier

    users = [f"u{index}" for index in range(clients)]
    signers = {user: Signer.generate(user, bits=bits, seed=100 + index)
               for index, user in enumerate(users)}
    verifier = Verifier({user: signer.public_key
                         for user, signer in signers.items()})

    threaded = _run_p1_side(
        users, signers, verifier,
        lambda protocol, state: serve_in_thread(
            order=ORDER, protocol=protocol, state=state, block_timeout=120.0),
        lambda host, port, user: RemoteClientP1(
            host, port, user, signers[user], verifier, order=ORDER,
            op_timeout=300.0),
        pipelined=False, ops_per_client=ops_per_client, keyspace=keyspace)
    pipelined = _run_p1_side(
        users, signers, verifier,
        lambda protocol, state: serve_async_in_thread(
            order=ORDER, protocol=protocol, state=state,
            batch_max=batch_max, block_timeout=120.0),
        lambda host, port, user: PipelinedRemoteClientP1(
            host, port, user, signers[user], verifier, order=ORDER,
            window=window),
        pipelined=True, ops_per_client=ops_per_client, keyspace=keyspace)
    pipelined["window"] = window
    pipelined["batch"] = batch_max

    speedup = round(pipelined["ops_per_s"] / threaded["ops_per_s"], 2) \
        if threaded["ops_per_s"] else 0.0
    # Each client signs once per full window plus scheduling slack: a
    # fresh signing run starts whenever the drainer catches up with
    # that client's pipeline.
    bound = clients * (-(-ops_per_client // window) + 2)
    return {
        "key_bits": bits,
        "threaded": threaded,
        "pipelined": pipelined,
        "speedup": speedup,
        "signatures_per_op_baseline": 1.0,
        "signatures_per_op_pipelined": round(
            pipelined["signatures"] / pipelined["ops"], 4),
        "amortization_bound": bound,
    }


# -- grid + gates ---------------------------------------------------------

def run_grid(quick: bool, verbose: bool = True) -> dict:
    if quick:
        levels = [16]
        batches = [8]
        target_ops = 600
        threaded_cap = 16
    else:
        levels = [100, 1000, 5000]
        batches = [1, 8, 64]
        target_ops = 6000
        threaded_cap = 1000

    rows: list[dict] = []
    for clients in levels:
        ops_per_client = max(2, target_ops // clients)
        fd_needed = clients * 2 + 256
        fd_limit = _raise_fd_limit(fd_needed)
        if fd_limit is not None and fd_limit < fd_needed:
            rows.append({"transport": "async", "clients": clients,
                         "skipped": f"fd limit {fd_limit} < {fd_needed}"})
            continue
        if clients <= threaded_cap:
            row = run_threaded(clients, ops_per_client)
            rows.append(row)
            if verbose:
                print(f"  {json.dumps(row)}")
        else:
            rows.append({"transport": "threaded", "clients": clients,
                         "skipped": "thread-per-connection is not viable "
                                    "at this concurrency; async-only level"})
        for batch in batches:
            row = run_async(clients, ops_per_client, batch)
            rows.append(row)
            if verbose:
                print(f"  {json.dumps(row)}")

    if quick:
        p1 = run_p1_pair(clients=4, ops_per_client=8, window=8,
                         batch_max=16, bits=1024)
    else:
        p1 = run_p1_pair(clients=100, ops_per_client=16, window=16,
                         batch_max=64, bits=1024)
    if verbose:
        print(f"  p1 {json.dumps(p1)}")

    speedup = {}
    for clients in levels:
        threaded = next((r for r in rows if r["transport"] == "threaded"
                         and r["clients"] == clients and "ops_per_s" in r), None)
        best = max((r for r in rows if r["transport"] == "async"
                    and r["clients"] == clients and "ops_per_s" in r),
                   key=lambda r: r["ops_per_s"], default=None)
        if threaded and best and threaded["ops_per_s"]:
            speedup[f"clients_{clients}"] = round(
                best["ops_per_s"] / threaded["ops_per_s"], 2)

    return {"suite": "bench_throughput", "mode": "quick" if quick else "full",
            "order": ORDER, "rows": rows, "protocol1": p1,
            "p2_transport_speedup": speedup}


def check_gates(results: dict) -> list[str]:
    """The enforced criteria.

    The speedup gate rides on the Protocol I pair: per-op signing and
    blocking (the paper's protocol as deployed stop-and-wait on the
    threaded server) versus pipelined signing runs on the async core.
    The Protocol II grid measures transport scaling and is reported --
    with its own sanity checks -- but carries no speedup gate: both
    transports do identical per-op verification CPU under one
    interpreter, so its honest ratio on a small box is bounded by the
    amortizable fraction (fsync, root recompute, scheduling), not 5x.
    """
    problems: list[str] = []
    quick = results["mode"] == "quick"
    gate = QUICK_SPEEDUP_GATE if quick else FULL_SPEEDUP_GATE

    for row in results["rows"]:
        if row.get("sync_check") is False:
            problems.append(f"sync_check failed: {row}")
    if not any(row.get("transport") == "async" and "ops_per_s" in row
               for row in results["rows"]):
        problems.append("no async Protocol II cell measured")

    p1 = results["protocol1"]
    for side in ("threaded", "pipelined"):
        if not p1[side]["sync_check"]:
            problems.append(f"Protocol I count sync failed ({side})")
    if p1["speedup"] < gate:
        problems.append(
            f"Protocol I pipelined {p1['pipelined']['ops_per_s']} ops/s vs "
            f"threaded per-op baseline {p1['threaded']['ops_per_s']} -- "
            f"{p1['speedup']}x is below the {gate}x gate")
    if p1["pipelined"]["signatures"] > p1["amortization_bound"]:
        problems.append(
            f"Protocol I signatures not amortized: "
            f"{p1['pipelined']['signatures']} for {p1['pipelined']['ops']} "
            f"ops (bound {p1['amortization_bound']})")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid for CI (16 clients, batch 8)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the speedup gates hold")
    parser.add_argument("--json", action="store_true", help="JSON only")
    args = parser.parse_args(argv)

    results = run_grid(quick=args.quick, verbose=not args.json)
    if args.quick:
        path = emit_json("throughput_quick", results)
    else:
        path = emit_json("throughput", results)
        emit_json("BENCH_throughput", results, path=BENCH_THROUGHPUT_PATH)
    problems = check_gates(results)
    results["pass"] = not problems
    print(json.dumps(results, indent=2))
    print(f"[results saved to {path}]")
    if problems:
        print("THROUGHPUT GATE FAILURES:" if args.check else
              "throughput gate notes (not enforced without --check):")
        for line in problems:
            print("  " + line)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
