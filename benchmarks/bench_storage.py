"""Storage robustness -- the crash-point recovery matrix and the
streaming-restart gate for the disk-backed page store.

Three campaigns against ``--backend sqlite`` (the paged Merkle-forest
store):

* **crash matrix** -- kill the server at every announced storage crash
  point (mid WAL append, mid page write, either side of the sqlite
  checkpoint commit, between the WAL rotation rename and the directory
  fsync, mid segment GC...), restart, and gate on: the crash actually
  fired, no acknowledged write was lost, the recovered top root is
  bit-identical to an uninterrupted run of the same prefix, read VOs
  verify against the recovered root, and the store accepts new writes.
* **tamper gallery** -- faults that must be *detected*, never masked:
  a bit-rotted page (quarantined and repaired from the previous
  generation + segment replay, root re-verified), a doctored replay
  segment (refused), a page store that lied about commit durability
  (refused), a garbage manifest (refused).
* **streaming restart** -- a million-entry store is checkpointed and
  reloaded; the loader must parse pages as they arrive, never
  materialising the serialised tree (gated on peak resident page
  bytes staying within a few pages while total streamed bytes run to
  tens of MB).

Run ``python benchmarks/bench_storage.py --quick --check`` for the CI
gate (fixed seed, abridged matrix workload) or without ``--quick`` for
the full campaign.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit_json

from repro.crypto.hashing import Digest
from repro.mtree.database import (
    ClientVerifier,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.net.core import ServerCore
from repro.net.wal import PagedServerStore, WalError
from repro.protocols.base import Request, ServerState
from repro.protocols.protocol2 import Protocol2Server
from repro.storage.engine import PAGE_BYTES
from repro.storage.faults import FaultyIO, SimulatedCrash

SHARDS = 2
ORDER = 4
SNAPSHOT_EVERY = 10

#: every storage crash point, with the occurrence that lands it in the
#: middle of live traffic (occurrence 1 of the checkpoint points is the
#: bootstrap snapshot; rotation/GC points first fire at checkpoints 1/2)
CRASH_POINTS = [
    ("wal:append", 17),
    ("file:mid-write", 17),
    ("pagestore:page-write", 4),
    ("pagestore:pre-commit", 2),
    ("pagestore:post-commit", 2),
    ("checkpoint:before-commit", 2),
    ("checkpoint:after-commit", 2),
    ("compaction:before-rotate", 1),
    ("compaction:between-rename-and-dirfsync", 1),
    ("compaction:mid-segment-gc", 1),
]


def _request(key, value, seq):
    return Request(query=WriteQuery(key, value),
                   extras={"user": "bench", "rid": f"bench:{seq}"})


def _ops(n):
    return [(b"key%06d" % i, b"val%d" % i) for i in range(n)]


def _run_until_crash(core, ops):
    acked = []
    try:
        for seq, (key, value) in enumerate(ops):
            core.apply_request("bench", _request(key, value, seq))
            acked.append((key, value))
    except SimulatedCrash:
        pass
    return acked


def _reference_root(n, ops):
    reference = VerifiedDatabase(order=ORDER, shards=SHARDS)
    for key, value in ops[:n]:
        reference.execute(WriteQuery(key, value))
    return reference.root_digest()


def _vos_verify(database, keys):
    """Read VOs for ``keys`` must verify against the recovered root."""
    verifier = ClientVerifier(database.root_digest(), order=database.spec)
    for key in keys:
        query = ReadQuery(key)
        result = database.execute(query)
        verifier.apply(query, result)  # raises ProofError on violation
    return True


def crash_matrix(n_ops, seed, verbose):
    ops = _ops(n_ops)
    cells = []
    for point, occurrence in CRASH_POINTS:
        data_dir = tempfile.mkdtemp(prefix="bench-storage-")
        try:
            io = FaultyIO(seed=seed + occurrence,
                          crash_at={point: occurrence})
            core = ServerCore(order=ORDER, data_dir=data_dir,
                              backend="sqlite", fsync=True, shards=SHARDS,
                              snapshot_every=SNAPSHOT_EVERY, io=io)
            acked = _run_until_crash(core, ops)
            fired = io.crash_count == 1
            core.store.close()
            io.simulate_crash()

            fresh = ServerCore(order=ORDER, data_dir=data_dir,
                               backend="sqlite", fsync=True,
                               shards=SHARDS, io=io)
            lost = [key for key, value in acked
                    if fresh.state.database.get(key) != value]
            executed = fresh.state.ctr
            root_match = (executed >= len(acked)
                          and fresh.state.database.root_digest()
                          == _reference_root(executed, ops))
            vo_ok = _vos_verify(fresh.state.database,
                                [key for key, _ in acked[-5:]] or [b"x"])
            fresh.apply_request("bench", _request(b"post", b"crash", n_ops))
            post_ok = fresh.state.database.get(b"post") == b"crash"
            fresh.close_store()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
        cell = {
            "point": point,
            "fired": fired,
            "acked": len(acked),
            "executed": executed,
            "acked_lost": len(lost),
            "root_matches_reference": root_match,
            "vos_verify": vo_ok,
            "writable_after_recovery": post_ok,
        }
        cell["pass"] = (fired and not lost and root_match
                        and vo_ok and post_ok)
        cells.append(cell)
        if verbose:
            status = "ok" if cell["pass"] else "FAIL"
            print(f"  crash @ {point:<42} acked={len(acked):>3} "
                  f"executed={executed:>3} lost={len(lost)} [{status}]")
    return cells


def _populated_dir(n_ops, data_dir):
    core = ServerCore(order=ORDER, data_dir=data_dir, backend="sqlite",
                      fsync=False, shards=SHARDS,
                      snapshot_every=SNAPSHOT_EVERY)
    ops = _ops(n_ops)
    for seq, (key, value) in enumerate(ops):
        core.apply_request("bench", _request(key, value, seq))
    root = core.state.database.root_digest()
    core.snapshot()
    core.close_store()
    return root


def tamper_gallery(n_ops, seed, verbose):
    rows = []

    def scenario(name, run):
        data_dir = tempfile.mkdtemp(prefix="bench-storage-")
        try:
            root = _populated_dir(n_ops, data_dir)
            ok, note = run(data_dir, root)
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
        rows.append({"scenario": name, "pass": ok, "outcome": note})
        if verbose:
            print(f"  tamper: {name:<28} {note} "
                  f"[{'ok' if ok else 'FAIL'}]")

    def bitrot(data_dir, root):
        io = FaultyIO(seed=seed, bitrot_page=("any", -1))
        core = ServerCore(order=ORDER, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=SHARDS, io=io)
        repaired = list(core.store.repaired_shards)
        match = core.state.database.root_digest() == root
        core.close_store()
        if repaired and match:
            return True, f"quarantined + repaired shard {repaired[0]}"
        return False, "rot not repaired or root diverged"

    def segment_tamper(data_dir, root):
        segments = sorted(name for name in os.listdir(data_dir)
                          if name.startswith("wal-seg."))
        if not segments:
            return False, "no retained segment to tamper"
        path = os.path.join(data_dir, segments[-1])
        with open(path, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[9] ^= 0x20
            handle.seek(0)
            handle.write(blob)
        io = FaultyIO(seed=seed, bitrot_page=("any", -1))
        try:
            ServerCore(order=ORDER, data_dir=data_dir, backend="sqlite",
                       fsync=False, shards=SHARDS, io=io)
        except WalError:
            return True, "repair refused the doctored segment"
        return False, "tampered segment silently accepted"

    def lost_commit(data_dir, root):
        # re-run traffic with an engine that lies about one commit
        shutil.rmtree(data_dir)
        io = FaultyIO(seed=seed, lose_commit=3)
        core = ServerCore(order=ORDER, data_dir=data_dir, backend="sqlite",
                          fsync=True, shards=SHARDS,
                          snapshot_every=SNAPSHOT_EVERY, io=io)
        _run_until_crash(core, _ops(n_ops))
        core.store.close()
        io.simulate_crash()
        try:
            ServerCore(order=ORDER, data_dir=data_dir, backend="sqlite",
                       fsync=True, shards=SHARDS, io=io)
        except WalError as exc:
            if "lost a checkpoint" in str(exc):
                return True, "lying commit detected on restart"
            return True, f"refused: {exc}"
        return False, "lost checkpoint silently served"

    def garbage_manifest(data_dir, root):
        import sqlite3
        conn = sqlite3.connect(os.path.join(data_dir, "pages.db"))
        conn.execute("UPDATE meta SET value=? WHERE key='checkpoint'",
                     (b"garbage",))
        conn.commit()
        conn.close()
        try:
            ServerCore(order=ORDER, data_dir=data_dir, backend="sqlite",
                       fsync=False, shards=SHARDS)
        except WalError:
            return True, "undecodable manifest refused"
        return False, "garbage manifest accepted"

    scenario("bitrot-page", bitrot)
    scenario("doctored-segment", segment_tamper)
    scenario("lying-commit", lost_commit)
    scenario("garbage-manifest", garbage_manifest)
    return rows


def streaming_restart(entries, verbose):
    """Checkpoint a large store, reload it, gate on bounded residency."""
    database = VerifiedDatabase(order=64, shards=4)
    forest = database.mtree
    build_start = time.time()
    for i in range(entries):
        forest.insert(b"%010d" % i, b"value-%d" % i)
    root = database.root_digest()
    build_secs = time.time() - build_start

    state = ServerState(database=database)
    Protocol2Server().initialize(state)
    state.ctr = entries

    data_dir = tempfile.mkdtemp(prefix="bench-storage-big-")
    try:
        store = PagedServerStore(data_dir, fsync=False)
        checkpoint_start = time.time()
        store.write_snapshot(state, {})
        checkpoint_secs = time.time() - checkpoint_start
        store.close()
        db_bytes = os.path.getsize(os.path.join(data_dir, "pages.db"))

        fresh = PagedServerStore(data_dir, fsync=False)
        load_start = time.time()
        loaded = fresh.load_snapshot()
        load_secs = time.time() - load_start
        stats = fresh.load_stats
        fresh.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    loaded_db, ctr, _meta, _dedup, _chain = loaded
    result = {
        "entries": entries,
        "root_matches": loaded_db.root_digest() == root and ctr == entries,
        "build_secs": round(build_secs, 2),
        "checkpoint_secs": round(checkpoint_secs, 2),
        "load_secs": round(load_secs, 2),
        "store_mb": round(db_bytes / 1e6, 1),
        "streamed_mb": round(stats.bytes / 1e6, 1),
        "pages_streamed": stats.pages,
        "max_resident_page_bytes": stats.max_resident_page_bytes,
        # one in-flight page per stream, each overshooting the 32 KiB
        # target by at most one line: "never holds the tree's serialised
        # form" is the acceptance criterion for million-entry restarts
        "residency_bound_bytes": 4 * PAGE_BYTES,
    }
    result["pass"] = (result["root_matches"]
                      and stats.bytes > 10 * PAGE_BYTES
                      and stats.max_resident_page_bytes
                      < result["residency_bound_bytes"])
    if verbose:
        print(f"  streaming restart: {entries} entries, "
              f"{result['streamed_mb']} MB streamed in "
              f"{result['load_secs']}s, peak resident page bytes "
              f"{stats.max_resident_page_bytes} "
              f"[{'ok' if result['pass'] else 'FAIL'}]")
    return result


def run_campaign(n_ops, entries, seed, verbose=True):
    if verbose:
        print("crash-point recovery matrix (--backend sqlite):")
    matrix = crash_matrix(n_ops, seed, verbose)
    if verbose:
        print("tamper gallery (detected, never masked):")
    gallery = tamper_gallery(n_ops, seed, verbose)
    if verbose:
        print("streaming restart:")
    streaming = streaming_restart(entries, verbose)
    return {
        "config": {"ops": n_ops, "entries": entries, "seed": seed,
                   "shards": SHARDS, "snapshot_every": SNAPSHOT_EVERY},
        "crash_matrix": matrix,
        "tamper_gallery": gallery,
        "streaming_restart": streaming,
    }


def campaign_passes(results):
    return (all(cell["pass"] for cell in results["crash_matrix"])
            and all(row["pass"] for row in results["tamper_gallery"])
            and results["streaming_restart"]["pass"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="abridged matrix workload for CI (fixed seed)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every criterion holds")
    parser.add_argument("--seed", type=int, default=4201)
    parser.add_argument("--json", action="store_true", help="JSON only")
    args = parser.parse_args(argv)

    if args.quick:
        results = run_campaign(n_ops=35, entries=1_000_000,
                               seed=args.seed, verbose=not args.json)
    else:
        results = run_campaign(n_ops=120, entries=1_000_000,
                               seed=args.seed, verbose=not args.json)

    ok = campaign_passes(results)
    results["pass"] = ok
    emit_json("storage_recovery", results)
    print(json.dumps(results, indent=2, default=str))
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
