"""E5 -- Protocol I / Theorem 4.1: signed-root detection and constant
per-operation overhead.

Two series:

* k-sweep: detection of a partition fork within k operations per user,
  mirroring E1 but with the signature-based protocol (and a PKI);
* message accounting: exactly one extra (blocking) client->server
  message per operation, independent of history length -- the bounded
  workload preservation argument of Theorem 4.1.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table, overhead_metrics
from repro.core import build_simulation
from repro.server.attacks import ForkAttack
from repro.simulation.workload import partitionable_workload, steady_workload

K_SWEEP = (2, 4, 8, 16)


def run_partition(k: int, seed: int = 3):
    # Sparse schedule: Protocol I's blocking handshake halves server
    # throughput, and a saturated server would serialise everything
    # before the fork engages.
    workload = partitionable_workload(group_a_size=1, group_b_size=2, k=k,
                                      seed=seed, spacing=16, fork_round=60)
    attack = ForkAttack(victims=workload.metadata["group_b"],
                        fork_round=workload.metadata["fork_round"])
    simulation = build_simulation("protocol1", workload, attack=attack, k=k, seed=seed)
    return simulation.execute()


def test_protocol1_k_sweep(capsys, benchmark):
    rows = []
    for k in K_SWEEP:
        report = run_partition(k)
        assert report.detected, k
        assert not report.false_alarm
        ops_after = report.max_ops_after_deviation()
        assert ops_after is not None and ops_after <= k, (k, ops_after)
        rows.append([k, True, report.detection_delay_rounds(), ops_after])

    emit(capsys, "E5_protocol1_detection", format_table(
        ["sync period k", "detected", "delay (rounds)", "max ops issued after fork"],
        rows,
        title="E5 / Theorem 4.1: Protocol I detects the partition within k",
    ))

    benchmark.pedantic(lambda: run_partition(4), rounds=3, iterations=1)


def test_protocol1_constant_message_overhead(capsys, benchmark):
    """3 messages per op (query, response, signature), regardless of how
    long the system has been running -- the constant c of bounded
    workload preservation."""
    rows = []
    for ops_per_user in (4, 8, 16):
        workload = steady_workload(3, ops_per_user, spacing=10, seed=9)
        simulation = build_simulation("protocol1", workload, k=10_000, seed=9)
        report = simulation.execute()
        assert not report.detected
        metrics = overhead_metrics(report)
        rows.append([metrics.operations, metrics.messages,
                     metrics.messages_per_operation])
        assert metrics.messages_per_operation == 3.0

    emit(capsys, "E5_protocol1_overhead", format_table(
        ["operations", "messages", "messages / operation"],
        rows,
        title="E5: Protocol I per-operation message overhead is constant (= 3)",
    ))

    workload = steady_workload(3, 8, spacing=10, seed=9)

    def kernel():
        return build_simulation("protocol1", workload, k=10_000, seed=9).execute()

    benchmark.pedantic(kernel, rounds=3, iterations=1)
