"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure): it
prints the rows/series to the terminal (bypassing pytest capture) and
also writes them under ``benchmarks/results/`` so EXPERIMENTS.md can
cite the measured numbers.  Structured results (lists of row dicts or
metric mappings) are additionally persisted as JSON so tooling -- the
perf-regression smoke job in CI in particular -- can diff runs without
parsing tables.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The machine-readable perf trajectory lives at the repo root so every
# future PR can be compared against it (see benchmarks/perf_suite.py).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PERF_BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")


def emit(capsys, experiment_id: str, text: str, rows: list[dict] | None = None) -> None:
    """Show a result table on the live terminal and persist it.

    ``rows``, when given, is a list of per-row dicts; it is written as
    ``benchmarks/results/<experiment_id>.json`` alongside the ``.txt``
    rendering so downstream tooling gets structured data.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    if rows is not None:
        emit_json(experiment_id, rows)
    with capsys.disabled():
        print(f"\n{text}\n[saved to {os.path.relpath(path)}]")


def emit_json(experiment_id: str, payload: object, path: str | None = None) -> str:
    """Persist a JSON-serialisable payload under ``benchmarks/results/``
    (or at an explicit ``path``, e.g. the repo-root perf baseline).

    Returns the path written.
    """
    if path is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(experiment_id: str, path: str | None = None) -> object | None:
    """Load a previously emitted JSON payload, or ``None`` if absent."""
    if path is None:
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
