"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure): it
prints the rows/series to the terminal (bypassing pytest capture) and
also writes them under ``benchmarks/results/`` so EXPERIMENTS.md can
cite the measured numbers.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(capsys, experiment_id: str, text: str) -> None:
    """Show a result table on the live terminal and persist it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    with capsys.disabled():
        print(f"\n{text}\n[saved to {os.path.relpath(path)}]")
