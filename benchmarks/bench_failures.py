"""E11 -- failures (future-work item 3): the protocols under loss and
crashes.

The paper excludes failures; our extension restores bounded delivery
via ARQ and durable registers for crash-recovery.  This bench measures
what that costs and checks the guarantees survive:

* loss-rate sweep: completion stays at 100%, latency degrades
  gracefully, and zero false alarms;
* detection still works under loss;
* a user crash spanning a sync stalls it (liveness cost) but produces
  no false alarm, and the workload completes after recovery.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core.scenarios import build_simulation
from repro.server.attacks import ForkAttack
from repro.simulation.faults import LossyNetwork, crash_schedule
from repro.simulation.workload import steady_workload

LOSS_SWEEP = (0.0, 0.1, 0.3, 0.5)


def run_lossy(loss_rate: float, attack=None, seed: int = 6):
    workload = steady_workload(3, 10, spacing=12, keyspace=6,
                               write_ratio=0.6, seed=seed)
    lossy = LossyNetwork(user_ids=workload.user_ids, loss_rate=loss_rate,
                         seed=seed, retransmit_timeout=3, max_attempts=7)
    simulation = build_simulation(
        "protocol2", workload, k=4, seed=seed, network=lossy,
        attack=attack,
        transaction_timeout=3 * lossy.worst_case_delay(),
    )
    report = simulation.execute(max_rounds=8000)
    return report, lossy, workload


def test_failures_loss_sweep(capsys, benchmark):
    rows = []
    makespans = {}
    for loss in LOSS_SWEEP:
        report, lossy, workload = run_lossy(loss)
        assert not report.detected, (loss, report.alarms)
        completed = sum(report.operations_completed.values())
        assert completed == workload.total_operations(), loss
        completions = [r for rs in report.completion_rounds.values() for r in rs]
        makespans[loss] = max(completions)
        rows.append([loss, completed, lossy.losses_injected,
                     makespans[loss], False])

    emit(capsys, "E11_failures_loss", format_table(
        ["loss rate", "ops completed", "losses injected", "finish round",
         "false alarms"],
        rows,
        title="E11a: Protocol II over a lossy link (ARQ) -- graceful degradation",
    ))
    assert makespans[0.5] >= makespans[0.0]  # loss costs latency, never loses ops

    benchmark.pedantic(lambda: run_lossy(0.3)[0], rounds=3, iterations=1)


def test_failures_detection_survives_loss(capsys, benchmark):
    detected = fired = 0
    for seed in (6, 7, 8):
        workload = steady_workload(3, 14, spacing=8, keyspace=6,
                                   write_ratio=0.6, seed=seed)
        lossy = LossyNetwork(user_ids=workload.user_ids, loss_rate=0.25,
                             seed=seed, retransmit_timeout=3, max_attempts=7)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        simulation = build_simulation(
            "protocol2", workload, k=4, seed=seed, network=lossy, attack=attack,
            transaction_timeout=3 * lossy.worst_case_delay())
        report = simulation.execute(max_rounds=8000)
        assert not report.false_alarm
        if report.first_deviation_round is not None:
            fired += 1
            if report.detected:
                detected += 1
    assert fired >= 2
    assert detected == fired

    emit(capsys, "E11_failures_detection", format_table(
        ["loss rate", "forks fired", "forks detected"],
        [[0.25, fired, detected]],
        title="E11b: fork detection under 25% message loss",
    ))

    benchmark.pedantic(
        lambda: run_lossy(0.25, attack=ForkAttack(victims=["user1"], fork_round=40))[0],
        rounds=3, iterations=1)


def test_failures_crash_recovery(capsys, benchmark):
    def run_crash():
        workload = steady_workload(3, 10, spacing=4, seed=8)
        offline = {"user2": crash_schedule([(15, 45)])}
        simulation = build_simulation("protocol2", workload, k=3, seed=8,
                                      offline=offline, transaction_timeout=120)
        return simulation.execute(max_rounds=8000), workload

    report, workload = run_crash()
    assert not report.detected
    assert sum(report.operations_completed.values()) == workload.total_operations()

    baseline_workload = steady_workload(3, 10, spacing=4, seed=8)
    baseline = build_simulation("protocol2", baseline_workload, k=3, seed=8).execute()

    emit(capsys, "E11_failures_crash", format_table(
        ["scenario", "ops completed", "finish round", "false alarms"],
        [
            ["no crash", sum(baseline.operations_completed.values()),
             baseline.rounds_executed, baseline.false_alarm],
            ["user2 down rounds 15-45", sum(report.operations_completed.values()),
             report.rounds_executed, report.false_alarm],
        ],
        title="E11c: crash-recovery user (durable registers, stalled sync resumes)",
    ))
    assert report.rounds_executed > baseline.rounds_executed  # the liveness cost

    benchmark.pedantic(lambda: run_crash()[0], rounds=3, iterations=1)
