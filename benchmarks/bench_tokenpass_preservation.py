"""E7 -- Section 2.2.3: the token-passing strawman fails bounded
workload preservation.

"In a workload where a user performs two operations in succession, the
above protocol forces the user to wait for all the other users to
write null records to the server before performing her second
operation!"

Regenerates the n-sweep: the gap between one user's back-to-back
operations grows linearly with the number of users under token passing,
while Protocol II keeps it constant -- the measured form of the
c-workload-preservation definition.
"""

import statistics
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table, user_gaps
from repro.core import build_simulation
from repro.simulation.workload import back_to_back_workload

N_SWEEP = (2, 4, 8, 16)
SLOT_LENGTH = 6


def mean_gap(protocol: str, n_users: int, seed: int = 2) -> float:
    workload = back_to_back_workload(n_users, ops_per_user=3, seed=seed)
    simulation = build_simulation(protocol, workload, k=10_000,
                                  slot_length=SLOT_LENGTH, seed=seed)
    report = simulation.execute()
    assert not report.detected
    gaps = user_gaps(report, "user0")
    assert gaps, "busy user must have completed several operations"
    return statistics.mean(gaps)


def test_tokenpass_gap_grows_with_users(capsys, benchmark):
    rows = []
    token_gaps = {}
    protocol2_gaps = {}
    for n in N_SWEEP:
        token_gaps[n] = mean_gap("tokenpass", n)
        protocol2_gaps[n] = mean_gap("protocol2", n)
        rows.append([n, round(token_gaps[n], 1), round(protocol2_gaps[n], 1),
                     round(token_gaps[n] / protocol2_gaps[n], 1)])

    emit(capsys, "E7_tokenpass_preservation", format_table(
        ["users n", "token-pass gap (rounds)", "Protocol II gap (rounds)",
         "slowdown factor"],
        rows,
        title="E7 / Section 2.2.3: back-to-back operation gap vs number of users",
    ))

    # Token passing: gap ~ n * slot_length (linear in n).
    assert token_gaps[16] > token_gaps[2] * 4
    assert token_gaps[16] >= 0.8 * 16 * SLOT_LENGTH
    # Protocol II: constant small gap regardless of n.
    assert max(protocol2_gaps.values()) <= min(protocol2_gaps.values()) + 2
    assert max(protocol2_gaps.values()) <= 5

    benchmark.pedantic(lambda: mean_gap("tokenpass", 4), rounds=3, iterations=1)
