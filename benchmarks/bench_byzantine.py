"""Byzantine campaign: the attack gallery against real sockets, with
benign chaos in the same run, measured against the detection bound.

The simulator's detection matrix proves soundness in-process; the chaos
campaign proves liveness under benign faults.  This campaign closes the
remaining gap: a *malicious* server (every wire-adapted attack from
:mod:`repro.server.attacks`) serving a real client fleet over TCP,
composed with the chaos proxy's drops/truncations/resets/delays, for
Protocols I and II.

Pass criteria (all checked, printed as JSON):

* **zero false positives** -- honest-but-chaotic runs (faults injected,
  no attack) never raise ``IntegrityError`` and pass every periodic
  sync;
* **zero missed detections** -- every deviating run is detected, and
  within the protocol's operation bound: instant-class attacks (bad VO,
  counter replay, forged signature) on the deviating operation itself,
  partition-class attacks (fork, drop-commit, stale root) by the next
  register/count synchronisation, i.e. within ``k * n_users + n_users``
  global operations of the first deviating response;
* **every detection is provable** -- a forensic evidence bundle is
  written (by the client for per-operation detections, from the
  exchanged registers/counts for sync detections) and
  ``repro evidence-inspect`` re-verifies each offline as a genuine
  deviation (exit 0).

Detection latency is measured against the :class:`WireAttack` ground
truth: the server tick at which a deviating response actually went out,
converted to global operations.

Run ``python benchmarks/bench_byzantine.py --quick --check`` for the CI
gate or without ``--quick`` for the full campaign (every attack class
against both protocols).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.mtree.database import VerifiedDatabase  # noqa: E402
from repro.net import (  # noqa: E402
    ChaosConfig,
    ChaosProxy,
    IntegrityError,
    QuorumChecker,
    RemoteClient,
    Replicator,
    RetryPolicy,
    ServerBusyError,
    TransientNetworkError,
    WireAttack,
    WitnessCollusion,
    WitnessProtocol,
    count_sync_check,
    make_replica_keys,
    serve_async_in_thread,
    serve_in_thread,
    sync_check,
)
from repro.net import evidence  # noqa: E402
from repro.net.client import RemoteClientP1, ReplicationDivergence  # noqa: E402
from repro.net.replication import witness_name  # noqa: E402
from repro.core.scenarios import make_keys  # noqa: E402
from repro.protocols.base import ServerState  # noqa: E402
from repro.protocols.protocol1 import (  # noqa: E402
    Protocol1Server,
    bootstrap_server_state,
)
from repro.server.attacks import (  # noqa: E402
    CompositeAttack,
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)

ORDER = 8
KEY_SEED = 4096


def _inspect_ok(path: str) -> bool:
    """``repro evidence-inspect`` must certify the bundle (exit 0)."""
    return cli_main(["evidence-inspect", path], out=io.StringIO()) == 0


def _sync_evidence(evidence_dir: str, tag: str, bundle: dict) -> str:
    path = os.path.join(evidence_dir, f"{tag}.evidence")
    return evidence.write_bundle(path, bundle)


# -- Protocol II runs ------------------------------------------------------

def run_p2(name, attack_factory, *, seed, n_users=3, k=4, steps=14,
           chaos=True, verbose=True, use_async=False) -> dict:
    """One seeded run: round-robin client fleet through the chaos proxy
    against a (possibly Byzantine) Protocol II server.  Returns the
    per-run record for the campaign report."""
    users = [f"u{i}" for i in range(n_users)]
    wire = WireAttack(attack_factory()) if attack_factory else None
    evidence_dir = tempfile.mkdtemp(prefix=f"byz-{name}-")
    if use_async:
        server = serve_async_in_thread(order=ORDER, attack=wire)
    else:
        server = serve_in_thread(order=ORDER, attack=wire)
    genesis = server.initial_root_digest()
    proxy = None
    host, port = server.address
    if chaos:
        proxy = ChaosProxy(host, port, seed=seed, config=ChaosConfig(
            drop_rate=0.015, truncate_rate=0.01, reset_rate=0.01,
            delay_rate=0.02, delay_s=0.002, immune_chunks=1)).start()
        host, port = proxy.address

    clients = {
        user: RemoteClient(
            host, port, user, genesis, order=ORDER,
            connect_timeout=5.0, op_timeout=10.0,
            retry=RetryPolicy(attempts=24, base=0.01, cap=0.25,
                              jitter=0.5, seed=seed + index),
            evidence_dir=evidence_dir)
        for index, user in enumerate(users)
    }

    detection = None  # (kind, global_op, bundle_path)
    false_alarm = False
    sync_rounds = 0
    global_op = 0
    try:
        for step in range(steps):
            for user in users:
                if detection or false_alarm:
                    break
                global_op += 1
                client = clients[user]
                try:
                    if step % 3 == 2:
                        client.get(f"{user}-{(step - 1) % 5}".encode())
                    else:
                        client.put(f"{user}-{step % 5}".encode(),
                                   f"{user}:{step}".encode())
                except ServerBusyError:
                    raise
                except IntegrityError as exc:
                    if wire is None or wire.first_deviation_op is None:
                        false_alarm = True
                        break
                    detection = ("response", global_op,
                                 getattr(exc, "evidence_path", None))
                if not detection and global_op % (k * n_users) == 0:
                    sync_rounds += 1
                    registers = {u: c.registers()
                                 for u, c in clients.items()}
                    if not sync_check(genesis, registers):
                        if wire is None or wire.first_deviation_op is None:
                            false_alarm = True
                        else:
                            detection = ("sync", global_op, _sync_evidence(
                                evidence_dir, f"sync-{global_op}",
                                evidence.sync_bundle(genesis, registers)))
            if detection or false_alarm:
                break
        if not detection and not false_alarm:  # final sync closes every run
            sync_rounds += 1
            registers = {u: c.registers() for u, c in clients.items()}
            if not sync_check(genesis, registers):
                if wire is None or wire.first_deviation_op is None:
                    false_alarm = True
                else:
                    detection = ("sync", global_op, _sync_evidence(
                        evidence_dir, "sync-final",
                        evidence.sync_bundle(genesis, registers)))
    finally:
        for client in clients.values():
            client.close()
        if proxy is not None:
            proxy.stop()
        server.stop()

    return _run_record(name, "II", wire, detection, false_alarm,
                       global_op, k, n_users, messages_per_op=1,
                       sync_rounds=sync_rounds, evidence_dir=evidence_dir,
                       proxy=proxy, verbose=verbose)


# -- Protocol I runs -------------------------------------------------------

def run_p1(name, attack_factory, *, seed, k=4, steps=10,
           chaos=True, verbose=True, use_async=False) -> dict:
    """Protocol I fleet (alice operates first as the elected signer,
    then round-robin).  The P1 client does not transparently reconnect,
    so benign chaos is delay-only -- loss still reaches the *server
    side* untouched (the attack layer sits behind the proxy)."""
    users = ["alice", "bob"]
    keys = make_keys(users, seed=KEY_SEED)
    wire = WireAttack(attack_factory()) if attack_factory else None
    evidence_dir = tempfile.mkdtemp(prefix=f"byz-{name}-")

    state = ServerState(database=VerifiedDatabase(order=ORDER))
    protocol = Protocol1Server()
    protocol.initialize(state)
    bootstrap_server_state(state, keys.signers["alice"])
    if use_async:
        server = serve_async_in_thread(order=ORDER, protocol=protocol,
                                       state=state, block_timeout=10.0,
                                       attack=wire)
    else:
        server = serve_in_thread(order=ORDER, protocol=protocol, state=state,
                                 block_timeout=10.0, attack=wire)
    proxy = None
    host, port = server.address
    if chaos:
        proxy = ChaosProxy(host, port, seed=seed, config=ChaosConfig(
            delay_rate=0.05, delay_s=0.002)).start()
        host, port = proxy.address

    clients = {
        user: RemoteClientP1(host, port, user, keys.signers[user],
                             keys.verifier, order=ORDER,
                             evidence_dir=evidence_dir)
        for user in users
    }

    detection = None
    false_alarm = False
    sync_rounds = 0
    global_op = 0
    try:
        for step in range(steps):
            for user in users:
                if detection or false_alarm:
                    break
                global_op += 1
                client = clients[user]
                try:
                    if step % 3 == 2:
                        client.get(f"{user}-{(step - 1) % 5}".encode())
                    else:
                        client.put(f"{user}-{step % 5}".encode(),
                                   f"{user}:{step}".encode())
                except ServerBusyError:
                    raise
                except IntegrityError as exc:
                    if wire is None or wire.first_deviation_op is None:
                        false_alarm = True
                        break
                    detection = ("response", global_op,
                                 getattr(exc, "evidence_path", None))
                if not detection and global_op % (k * len(users)) == 0:
                    sync_rounds += 1
                    counts = {u: c.counts() for u, c in clients.items()}
                    if not count_sync_check(counts):
                        if wire is None or wire.first_deviation_op is None:
                            false_alarm = True
                        else:
                            detection = ("count-sync", global_op,
                                         _sync_evidence(
                                             evidence_dir,
                                             f"count-sync-{global_op}",
                                             evidence.count_sync_bundle(counts)))
            if detection or false_alarm:
                break
        if not detection and not false_alarm:
            sync_rounds += 1
            counts = {u: c.counts() for u, c in clients.items()}
            if not count_sync_check(counts):
                if wire is None or wire.first_deviation_op is None:
                    false_alarm = True
                else:
                    detection = ("count-sync", global_op, _sync_evidence(
                        evidence_dir, "count-sync-final",
                        evidence.count_sync_bundle(counts)))
    finally:
        for client in clients.values():
            client.close()
        if proxy is not None:
            proxy.stop()
        server.stop()

    # Each Protocol I operation is two wire messages (request +
    # follow-up signature), so ticks convert to operations at 2:1.
    return _run_record(name, "I", wire, detection, false_alarm,
                       global_op, k, len(users), messages_per_op=2,
                       sync_rounds=sync_rounds, evidence_dir=evidence_dir,
                       proxy=proxy, verbose=verbose)


# -- replicated (N-server) runs -------------------------------------------

_REPLICA_KEYS: dict[int, object] = {}


def _replica_keys(n_witnesses: int):
    """Deterministic deployment keyrings, memoised -- key generation
    dominates run setup and the ring depends only on (N, seed)."""
    if n_witnesses not in _REPLICA_KEYS:
        _REPLICA_KEYS[n_witnesses] = make_replica_keys(n_witnesses, KEY_SEED)
    return _REPLICA_KEYS[n_witnesses]


def run_replicated(name, attack_factory, *, seed, n_witnesses=3, colluders=0,
                   collusion_mode="fabricate", n_users=3, steps=12,
                   quorum_every=2, verbose=True) -> dict:
    """One N-server run: a (possibly Byzantine) primary behind the full
    chaos proxy replicating its signed root lineage to ``n_witnesses``
    witness servers (the first ``colluders`` of which lie on fetches),
    while a client fleet confirms every verified root against random
    f+1 witness quorums routed through light per-witness chaos.

    The run ends with each surviving client confirming its entire
    lineage (``require_all``) -- the no-rollback progress gate: as long
    as f+1 honest witnesses exist, honest clients finish their whole
    workload on the quorum-agreed lineage.
    """
    users = [f"u{i}" for i in range(n_users)]
    f = (n_witnesses - 1) // 2
    keys = _replica_keys(n_witnesses)
    wire = WireAttack(attack_factory()) if attack_factory else None
    evidence_dir = tempfile.mkdtemp(prefix=f"byz-{name}-")

    collusions = {}
    witness_servers = []
    witness_proxies = []
    witness_endpoints = []  # client fetch leg, chaos-routed
    deposit_endpoints = []  # primary deposit leg, direct
    for index in range(n_witnesses):
        wid = witness_name(index)
        collusion = (WitnessCollusion(collusion_mode)
                     if index < colluders else None)
        if collusion is not None:
            collusions[wid] = collusion
        protocol = WitnessProtocol(wid, keys.witnesses[index], keys.verifier,
                                   collusion=collusion)
        witness = serve_in_thread(order=ORDER, protocol=protocol)
        witness_servers.append(witness)
        deposit_endpoints.append(witness.address)
        wproxy = ChaosProxy(*witness.address, seed=seed * 7 + index,
                            config=ChaosConfig(drop_rate=0.01,
                                               delay_rate=0.05,
                                               delay_s=0.001,
                                               immune_chunks=1)).start()
        witness_proxies.append(wproxy)
        witness_endpoints.append((wid, wproxy.address))

    replicator = Replicator(keys.primary, witnesses=deposit_endpoints)
    server = serve_in_thread(order=ORDER, attack=wire, replicator=replicator)
    genesis = server.initial_root_digest()
    proxy = ChaosProxy(*server.address, seed=seed, config=ChaosConfig(
        drop_rate=0.015, truncate_rate=0.01, reset_rate=0.01,
        delay_rate=0.02, delay_s=0.002, immune_chunks=1)).start()
    host, port = proxy.address

    clients = {}
    for index, user in enumerate(users):
        quorum = QuorumChecker(
            witness_endpoints, keys.verifier, f, user_id=user,
            seed=seed + 100 + index,
            retry=RetryPolicy(attempts=12, base=0.01, cap=0.25,
                              jitter=0.5, seed=seed + 200 + index),
            evidence_dir=evidence_dir, order=ORDER)
        clients[user] = RemoteClient(
            host, port, user, genesis, order=ORDER,
            connect_timeout=5.0, op_timeout=10.0,
            retry=RetryPolicy(attempts=24, base=0.01, cap=0.25,
                              jitter=0.5, seed=seed + index),
            evidence_dir=evidence_dir,
            quorum=quorum, quorum_every=quorum_every)

    detections = []        # primary-implicating halts, one per victim
    halted = {}
    false_alarm = False
    confirm_failures = []
    global_op = 0
    completed = {user: 0 for user in users}

    def _halt(user, exc):
        nonlocal false_alarm
        if wire is None or wire.first_deviation_op is None:
            false_alarm = True
            return
        halted[user] = global_op
        detections.append({
            "user": user, "op": global_op,
            "kind": ("replication" if isinstance(exc, ReplicationDivergence)
                     else "response"),
            "deviant": getattr(exc, "deviant", None),
            "evidence_path": getattr(exc, "evidence_path", None)})

    try:
        for step in range(steps):
            for user in users:
                if false_alarm:
                    break
                if user in halted:
                    continue
                global_op += 1
                client = clients[user]
                try:
                    if step % 3 == 2:
                        client.get(f"{user}-{(step - 1) % 5}".encode())
                    else:
                        client.put(f"{user}-{step % 5}".encode(),
                                   f"{user}:{step}".encode())
                    completed[user] += 1
                except ServerBusyError:
                    raise
                except IntegrityError as exc:
                    _halt(user, exc)
            if false_alarm:
                break
        # The no-rollback gate: every client the attack did not halt
        # must confirm its whole lineage against the witness quorum.
        for user, client in clients.items():
            if user in halted or false_alarm:
                continue
            try:
                client.quorum_check(require_all=True)
            except IntegrityError as exc:
                _halt(user, exc)
            except TransientNetworkError as exc:
                confirm_failures.append((user, str(exc)))
    finally:
        for client in clients.values():
            client.close()
        proxy.stop()
        for wproxy in witness_proxies:
            wproxy.stop()
        server.stop()
        for witness in witness_servers:
            witness.stop()

    witness_detections = [
        dict(entry, user=user)
        for user, client in clients.items()
        for entry in client.quorum.detections
        if entry["mode"] == "witness-fabrication"]
    excluded = {user: sorted(client.quorum.excluded)
                for user, client in clients.items() if client.quorum.excluded}
    served = {wid: collusion.served for wid, collusion in collusions.items()}

    return _replicated_record(
        name, wire, n_witnesses=n_witnesses, f=f, colluders=sorted(collusions),
        collusion_mode=collusion_mode if collusions else None,
        detections=detections, witness_detections=witness_detections,
        excluded=excluded, served=served, false_alarm=false_alarm,
        confirm_failures=confirm_failures, halted=halted,
        completed=completed, steps=steps, global_op=global_op,
        clients=clients, evidence_dir=evidence_dir, verbose=verbose)


def _replicated_record(name, wire, *, n_witnesses, f, colluders,
                       collusion_mode, detections, witness_detections,
                       excluded, served, false_alarm, confirm_failures,
                       halted, completed, steps, global_op, clients,
                       evidence_dir, verbose) -> dict:
    deviated = wire is not None and wire.first_deviation_op is not None
    colluder_set = set(colluders)

    def _genuine(path):
        return bool(path) and (evidence.reverify(
            evidence.read_bundle(path))[0] and _inspect_ok(path))

    bad_bundles = [entry for entry in detections + witness_detections
                   if not _genuine(entry["evidence_path"])]
    # Attribution: a primary-implicating replication bundle must name
    # the primary; a fabrication bundle must name an actual colluder.
    misattributed = (
        [entry for entry in detections
         if entry["kind"] == "replication" and entry["deviant"] != "primary"]
        + [entry for entry in witness_detections
           if entry["deviant"] not in colluder_set])
    # An honest witness must never be excluded.
    falsely_excluded = sorted({
        wid for wids in excluded.values() for wid in wids
        if wid not in colluder_set})
    # Progress: every client the attack did not halt finished its whole
    # workload and confirmed it against the quorum.
    survivors = [user for user in completed if user not in halted]
    stalled = [user for user in survivors if completed[user] != steps]
    fabricating = collusion_mode == "fabricate" and bool(colluder_set)
    record = {
        "run": name,
        "protocol": "replicated",
        "attack": wire.name if wire else None,
        "witnesses": n_witnesses,
        "f": f,
        "colluders": colluders,
        "collusion_mode": collusion_mode,
        "collusion_served": served,
        "operations": global_op,
        "quorum_checks": sum(c.quorum.checks for c in clients.values()),
        "confirmed_roots": sum(c.quorum.confirmed for c in clients.values()),
        "false_alarm": false_alarm,
        "deviated": deviated,
        "injected_responses": wire.injected if wire else 0,
        "detected": bool(detections),
        "detections": [
            {k: v for k, v in entry.items() if k != "evidence_path"}
            for entry in detections],
        "witness_detections": [
            {k: v for k, v in entry.items() if k != "evidence_path"}
            for entry in witness_detections],
        "excluded": excluded,
        "confirm_failures": [user for user, _ in confirm_failures],
        "stalled_clients": stalled,
        "bad_bundles": len(bad_bundles),
        "misattributed": len(misattributed),
        "falsely_excluded": falsely_excluded,
        # Fabricating colluders that actually served a lie are always
        # caught (valid outer, invalid inner signature); withholding
        # ones never are -- starvation is indistinguishable from lag.
        "collusion_exercised": (not colluder_set
                                or any(count > 0 for count in served.values())),
        "false_accusations": (len(witness_detections)
                              if not fabricating else 0),
    }
    if verbose:
        if false_alarm:
            print(f"  [{name}] FALSE ALARM")
        elif deviated and not detections:
            print(f"  [{name}] MISSED: primary deviated but no client halted")
        elif deviated:
            first = detections[0]
            print(f"  [{name}] {len(detections)} client(s) caught the primary "
                  f"via {first['kind']} at op {first['op']}; "
                  f"{len(witness_detections)} fabrication(s) named; "
                  f"survivors confirmed "
                  f"{record['confirmed_roots']} roots")
        else:
            print(f"  [{name}] clean: {global_op} ops, "
                  f"{record['quorum_checks']} quorum checks, "
                  f"{record['confirmed_roots']} roots confirmed, "
                  f"{len(witness_detections)} fabrication(s) named")
    shutil.rmtree(evidence_dir, ignore_errors=True)
    return record


# -- shared reporting ------------------------------------------------------

def _run_record(name, protocol, wire, detection, false_alarm, global_op,
                k, n_users, messages_per_op, sync_rounds, evidence_dir,
                proxy, verbose) -> dict:
    bound = k * n_users + n_users
    deviated = wire is not None and wire.first_deviation_op is not None
    record = {
        "run": name,
        "protocol": protocol,
        "attack": wire.name if wire else None,
        "operations": global_op,
        "sync_rounds": sync_rounds,
        "false_alarm": false_alarm,
        "deviated": deviated,
        "injected_responses": wire.injected if wire else 0,
        "proxy_faults": dict(proxy.faults) if proxy else None,
        "detected": detection is not None,
        "bound_ops": bound,
    }
    if deviated:
        deviation_op = (wire.first_deviation_op
                        + messages_per_op - 1) // messages_per_op
        record["first_deviation_op"] = deviation_op
        if detection:
            kind, detect_op, bundle_path = detection
            latency = detect_op - deviation_op
            genuine = False
            if bundle_path:
                genuine = (evidence.reverify(
                    evidence.read_bundle(bundle_path))[0]
                    and _inspect_ok(bundle_path))
            record.update({
                "detection_kind": kind,
                "detection_op": detect_op,
                "latency_ops": latency,
                "within_bound": 0 <= latency <= bound,
                "evidence_bundle": bundle_path,
                "evidence_genuine": genuine,
            })
    if verbose:
        if detection:
            print(f"  [{name}] detected via {record['detection_kind']} at op "
                  f"{record['detection_op']} (deviated at "
                  f"{record['first_deviation_op']}, latency "
                  f"{record['latency_ops']} <= {bound}), evidence "
                  f"{'re-verified' if record['evidence_genuine'] else 'BAD'}")
        elif deviated:
            print(f"  [{name}] MISSED: deviated but never detected")
        else:
            print(f"  [{name}] honest run clean: {global_op} ops, "
                  f"{sync_rounds} sync round(s), no alarms")
    shutil.rmtree(evidence_dir, ignore_errors=True)
    return record


P2_ATTACKS = [
    ("p2-fork", lambda: ForkAttack(victims=["u1"], fork_round=10)),
    ("p2-drop-commit", lambda: DropCommitAttack(victim="u1", drop_round=10)),
    ("p2-stale-root", lambda: StaleRootReplayAttack(victim="u1",
                                                    freeze_round=10)),
    ("p2-tamper", lambda: TamperValueAttack(victim="u0", tamper_round=6)),
    ("p2-tamper-forged", lambda: TamperValueAttack(victim="u0",
                                                   tamper_round=6,
                                                   forge_proof=True)),
    ("p2-counter-replay", lambda: CounterReplayAttack(victim="u0",
                                                      replay_round=10)),
    ("p2-composite", lambda: CompositeAttack([
        ForkAttack(victims=["u2"], fork_round=12),
        TamperValueAttack(victim="u0", tamper_round=18),
    ])),
]

P1_ATTACKS = [
    ("p1-fork", lambda: ForkAttack(victims=["bob"], fork_round=8)),
    ("p1-stale-root", lambda: StaleRootReplayAttack(victim="bob",
                                                    freeze_round=8)),
    ("p1-sig-forge", lambda: SignatureForgeAttack(forge_round=8)),
    ("p1-tamper", lambda: TamperValueAttack(victim="alice", tamper_round=8)),
    ("p1-counter-replay", lambda: CounterReplayAttack(victim="alice",
                                                      replay_round=8)),
]

QUICK_P2 = {"p2-fork", "p2-tamper", "p2-counter-replay"}
QUICK_P1 = {"p1-fork", "p1-sig-forge"}


def run_campaign(seed: int = 2203, quick: bool = False,
                 verbose: bool = True, use_async: bool = False) -> dict:
    from repro import obs

    obs.reset()
    obs.enable()
    runs = []
    try:
        p2_steps = 8 if quick else 14
        p1_steps = 8 if quick else 12
        runs.append(run_p2("p2-honest-chaotic", None, seed=seed,
                           steps=p2_steps, verbose=verbose,
                           use_async=use_async))
        runs.append(run_p1("p1-honest-chaotic", None, seed=seed + 1,
                           steps=p1_steps, verbose=verbose,
                           use_async=use_async))
        for index, (name, factory) in enumerate(P2_ATTACKS):
            if quick and name not in QUICK_P2:
                continue
            runs.append(run_p2(name, factory, seed=seed + 10 + index,
                               steps=p2_steps, verbose=verbose,
                               use_async=use_async))
        for index, (name, factory) in enumerate(P1_ATTACKS):
            if quick and name not in QUICK_P1:
                continue
            runs.append(run_p1(name, factory, seed=seed + 50 + index,
                               steps=p1_steps, verbose=verbose,
                               use_async=use_async))
        obs_counters = {
            name: obs.registry.counter(name).total()
            for name in ("net.attacks_injected", "net.detections",
                         "net.evidence_bundles", "chaos.resets",
                         "chaos.conn_drops", "chaos.truncations")}
    finally:
        obs.disable()

    honest = [r for r in runs if r["attack"] is None]
    malicious = [r for r in runs if r["attack"] is not None]
    deviating = [r for r in malicious if r["deviated"]]
    checks = {
        "false_positives": sum(1 for r in honest
                               if r["false_alarm"] or r["detected"]),
        "missed_detections": sum(1 for r in deviating if not r["detected"]),
        "out_of_bound_detections": sum(
            1 for r in deviating
            if r["detected"] and not r.get("within_bound", False)),
        "unproven_detections": sum(
            1 for r in deviating
            if r["detected"] and not r.get("evidence_genuine", False)),
        "attacks_that_never_deviated": sum(
            1 for r in malicious if not r["deviated"]),
        "obs_consistent": (
            obs_counters["net.attacks_injected"] >= len(deviating)
            and obs_counters["net.evidence_bundles"] >= len(deviating)),
    }
    return {
        "config": {"seed": seed, "quick": quick, "order": ORDER},
        "runs": runs,
        "obs": obs_counters,
        "checks": checks,
    }


def campaign_passes(results: dict) -> bool:
    checks = results["checks"]
    return (checks["false_positives"] == 0
            and checks["missed_detections"] == 0
            and checks["out_of_bound_detections"] == 0
            and checks["unproven_detections"] == 0
            and checks["attacks_that_never_deviated"] == 0
            and checks["obs_consistent"])


# -- the replicated campaign ----------------------------------------------

# f-of-N colluding-witness sweep: every tolerated minority size at every
# deployment width the issue names.
REPL_COLLUSION_CONFIGS = [
    (3, 0), (3, 1),
    (5, 0), (5, 1), (5, 2),
    (7, 0), (7, 1), (7, 2),
]


def run_replicated_campaign(seed: int = 2203, replicas: int = 3,
                            quick: bool = False,
                            verbose: bool = True) -> dict:
    """The N-server gauntlet: the full WireAttack gallery on the primary
    at ``replicas`` witnesses, the f-of-N colluding-witness sweep, a
    withholding colluder (must read as noise, never an accusation), and
    a fork composed with a fabricating colluder."""
    from repro import obs

    obs.reset()
    obs.enable()
    runs = []
    try:
        steps = 8 if quick else 12
        runs.append(run_replicated("repl-honest", None, seed=seed,
                                   n_witnesses=replicas, steps=steps,
                                   verbose=verbose))
        for index, (name, factory) in enumerate(P2_ATTACKS):
            if quick and name not in QUICK_P2:
                continue
            runs.append(run_replicated(f"repl-{name}", factory,
                                       seed=seed + 10 + index,
                                       n_witnesses=replicas, steps=steps,
                                       verbose=verbose))
        configs = [(3, 1)] if quick else REPL_COLLUSION_CONFIGS
        for index, (n_witnesses, colluders) in enumerate(configs):
            runs.append(run_replicated(
                f"repl-collude-{colluders}of{n_witnesses}", None,
                seed=seed + 40 + index, n_witnesses=n_witnesses,
                colluders=colluders, steps=steps, verbose=verbose))
        if not quick:
            runs.append(run_replicated(
                "repl-withhold-1of3", None, seed=seed + 70, n_witnesses=3,
                colluders=1, collusion_mode="withhold", steps=steps,
                verbose=verbose))
            runs.append(run_replicated(
                "repl-fork+collude-1of5",
                lambda: ForkAttack(victims=["u1"], fork_round=10),
                seed=seed + 71, n_witnesses=5, colluders=1, steps=steps,
                verbose=verbose))
        obs_counters = {
            name: obs.registry.counter(name).total()
            for name in ("repl.deposits", "repl.quorum_checks",
                         "repl.divergences", "net.attacks_injected")}
    finally:
        obs.disable()

    deviating = [r for r in runs if r["deviated"]]
    named = sum(
        sum(1 for d in r["detections"] if d["kind"] == "replication")
        + len(r["witness_detections"])
        for r in runs)
    checks = {
        "false_positives": sum(1 for r in runs if r["false_alarm"]),
        "missed_divergences": sum(1 for r in deviating if not r["detected"]),
        "misattributed_bundles": sum(r["misattributed"] for r in runs),
        "unproven_detections": sum(r["bad_bundles"] for r in runs),
        "falsely_excluded_witnesses": sum(
            len(r["falsely_excluded"]) for r in runs),
        "false_accusations": sum(r["false_accusations"] for r in runs),
        "stalled_honest_clients": sum(
            len(r["stalled_clients"]) + len(r["confirm_failures"])
            for r in runs),
        "collusions_never_exercised": sum(
            1 for r in runs if not r["collusion_exercised"]),
        "attacks_that_never_deviated": sum(
            1 for r in runs if r["attack"] is not None and not r["deviated"]),
        # Every divergence the clients named is mirrored in the obs
        # counter, and the quorum machinery demonstrably ran.
        "obs_consistent": (obs_counters["repl.divergences"] >= named
                           and obs_counters["repl.deposits"] > 0
                           and obs_counters["repl.quorum_checks"] > 0),
    }
    return {
        "config": {"seed": seed, "quick": quick, "order": ORDER,
                   "replicas": replicas},
        "runs": runs,
        "obs": obs_counters,
        "checks": checks,
    }


def replicated_campaign_passes(results: dict) -> bool:
    checks = results["checks"]
    return all(checks[key] == 0 for key in checks if key != "obs_consistent") \
        and checks["obs_consistent"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="subset of attacks, fewer ops (CI gate)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every criterion holds")
    parser.add_argument("--seed", type=int, default=2203)
    parser.add_argument("--json", action="store_true", help="JSON only")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="run every attack against the asyncio server")
    parser.add_argument("--replicas", type=int, default=0, metavar="N",
                        help="run the N-server replicated campaign instead: "
                             "the gallery on the primary at N witnesses plus "
                             "the f-of-N colluding-witness sweep")
    args = parser.parse_args(argv)

    if args.replicas:
        results = run_replicated_campaign(seed=args.seed,
                                          replicas=args.replicas,
                                          quick=args.quick,
                                          verbose=not args.json)
        ok = replicated_campaign_passes(results)
    else:
        results = run_campaign(seed=args.seed, quick=args.quick,
                               verbose=not args.json,
                               use_async=args.use_async)
        ok = campaign_passes(results)
    results["pass"] = ok
    print(json.dumps(results, indent=2))
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
