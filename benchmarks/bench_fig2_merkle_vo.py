"""E2 -- Figure 2 / Section 4.1: Merkle B+-tree verification objects.

"Since the height of the tree is bounded by O(log n) ... for a single
update we only need to know O(log n) other digests to recompute the
root hash."

Regenerates the scaling series: database size n vs VO size (digests),
client verify time for reads and updates, and the number of node
re-hashes per update.  The shape must be logarithmic: growing n by
1024x should grow each cost by a small additive amount.
"""

import math
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    build_read_proof,
    build_update_proof,
    verify_read,
    verify_update,
)

SIZES = (2 ** 6, 2 ** 8, 2 ** 10, 2 ** 12, 2 ** 14, 2 ** 16)
ORDER = 8


def build_tree(n: int) -> MerkleBPlusTree:
    mtree = MerkleBPlusTree(order=ORDER)
    for i in range(n):
        mtree.insert(f"{i:08d}".encode(), b"x" * 16)
    mtree.root_digest()
    return mtree


def _time(fn, repeats: int = 200) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats * 1e6  # microseconds


def test_fig2_vo_scaling(capsys, benchmark):
    rows = []
    read_sizes = {}
    for n in SIZES:
        mtree = build_tree(n)
        root = mtree.root_digest()
        key = f"{n // 2:08d}".encode()

        read_proof = build_read_proof(mtree, key)
        read_sizes[n] = read_proof.size_digests()
        read_us = _time(lambda: verify_read(root, read_proof, key))

        update_proof = build_update_proof(mtree, "insert", key)
        update_us = _time(
            lambda: verify_update(root, update_proof, ORDER, key, b"y" * 16), repeats=100)

        mtree.root_digest()
        before = mtree.digest_recomputations
        mtree.insert(key, b"z" * 16)
        mtree.root_digest()
        rehashes = mtree.digest_recomputations - before

        rows.append([n, mtree.height(), read_proof.size_digests(),
                     update_proof.size_digests(), round(read_us, 1),
                     round(update_us, 1), rehashes])

    emit(capsys, "E2_fig2_merkle_vo", format_table(
        ["n", "height", "read VO (digests)", "update VO (digests)",
         "verify read (us)", "verify update (us)", "re-hashes/update"],
        rows,
        title="E2 / Figure 2: Merkle B+-tree VO size and verification cost",
    ))

    # Shape assertions: 1024x more data, far-sublinear VO growth.
    assert read_sizes[2 ** 16] <= read_sizes[2 ** 6] + 6 * math.log(2 ** 10, ORDER) * ORDER
    assert read_sizes[2 ** 16] < 2 ** 6  # absurdly smaller than the data

    # Timed kernel: client-side read verification at n = 65536.
    mtree = build_tree(2 ** 16)
    root = mtree.root_digest()
    key = b"00032768"
    proof = build_read_proof(mtree, key)
    benchmark(lambda: verify_read(root, proof, key))


def test_fig2_update_verify_kernel(capsys, benchmark):
    mtree = build_tree(2 ** 12)
    root = mtree.root_digest()
    key = b"00002048"
    proof = build_update_proof(mtree, "insert", key)
    benchmark(lambda: verify_update(root, proof, ORDER, key, b"new value"))
