"""Chaos campaign: crashes + flaky links, end to end, with receipts.

The paper's model (and future-work item (3)) assumes reliable delivery
and a crash-free server.  This campaign removes both assumptions at
once and measures what the recovery machinery must guarantee:

* a seeded :class:`~repro.net.chaosproxy.ChaosProxy` between clients
  and server severs connections and truncates frames mid-stream;
* the server is crash-stopped (connections severed, no flush beyond
  the WAL -- SIGKILL-equivalent) and restarted from WAL + snapshot at
  scheduled points mid-workload;
* every client is a self-healing :class:`~repro.net.RemoteClient`
  retrying idempotent requests through reconnects.

Pass criteria (all checked, printed as JSON):

* **zero integrity false-positives** -- no client ever raises
  ``IntegrityError`` during the honest-but-chaotic run;
* **zero lost acknowledged writes, zero duplicated writes** -- the
  final server counter equals the number of distinct operations, every
  acknowledged value reads back, and the final root digest equals an
  *uninterrupted* reference run of the same seeded workload;
* **register soundness** -- the Protocol II ``sync_check`` passes over
  all clients' registers;
* **tamper true-positive** -- a byte-flipped WAL refuses to replay
  (``WalError``), so recovery cannot be used as a forking side door.

Run ``python benchmarks/bench_chaos.py --quick --check`` for the CI
gate (small N/M, fixed seed) or without ``--quick`` for the full
campaign (>= 20 injected connection drops, >= 5 server restarts).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.mtree.database import VerifiedDatabase, WriteQuery  # noqa: E402
from repro.net import (  # noqa: E402
    ChaosConfig,
    ChaosProxy,
    IntegrityError,
    PipelinedRemoteClient,
    RemoteClient,
    RetryPolicy,
    WalError,
    serve_async_in_thread,
    serve_in_thread,
    sync_check,
)
from repro.net.server import TrustedCvsTcpServer  # noqa: E402

ORDER = 8


def _workload(users: list[str], ops_per_user: int, keyspace: int):
    """The deterministic op sequence: round-robin users, each writing
    ``user-k`` keys with strictly increasing values.  Returns
    ``(user, key, value)`` triples."""
    sequence = []
    for step in range(ops_per_user):
        for user in users:
            key = f"{user}-{step % keyspace}".encode()
            value = f"{user}:{step}".encode()
            sequence.append((user, key, value))
    return sequence


def _reference_root(sequence) -> tuple:
    """Root digest + op count of an uninterrupted, failure-free run."""
    database = VerifiedDatabase(order=ORDER)
    for _user, key, value in sequence:
        database.execute(WriteQuery(key, value))
    return database.root_digest(), len(sequence)


def _start_server(data_dir: str, port: int, snapshot_every: int,
                  use_async: bool):
    if use_async:
        return serve_async_in_thread(order=ORDER, port=port,
                                     data_dir=data_dir,
                                     snapshot_every=snapshot_every)
    return serve_in_thread(order=ORDER, port=port, data_dir=data_dir,
                           snapshot_every=snapshot_every)


def _restart_server(data_dir: str, port: int, snapshot_every: int,
                    use_async: bool = False):
    # The freed port can linger in TIME_WAIT bookkeeping for a moment on
    # some platforms; retry briefly rather than flaking the campaign.
    deadline = time.monotonic() + 10.0
    while True:
        try:
            return _start_server(data_dir, port, snapshot_every, use_async)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


def run_campaign(users: int = 3, ops_per_user: int = 60, keyspace: int = 12,
                 restarts: int = 5, seed: int = 1301,
                 drop_rate: float = 0.012, truncate_rate: float = 0.01,
                 snapshot_every: int = 40, verbose: bool = True,
                 use_async: bool = False, pipeline_depth: int = 1) -> dict:
    user_ids = [f"u{i}" for i in range(users)]
    sequence = _workload(user_ids, ops_per_user, keyspace)
    expected_root, expected_ops = _reference_root(sequence)

    data_dir = tempfile.mkdtemp(prefix="chaos-server-")
    anchor_dir = tempfile.mkdtemp(prefix="chaos-anchors-")
    restart_points = {((i + 1) * len(sequence)) // (restarts + 1)
                      for i in range(restarts)}

    results: dict = {"config": {
        "users": users, "ops_per_user": ops_per_user, "keyspace": keyspace,
        "restarts": restarts, "seed": seed, "drop_rate": drop_rate,
        "truncate_rate": truncate_rate, "snapshot_every": snapshot_every,
        "server": "async" if use_async else "threaded",
        "pipeline_depth": pipeline_depth,
    }}
    integrity_false_positives = 0
    acked: dict[bytes, bytes] = {}

    from repro import obs

    obs.reset()
    obs.enable()
    server = _start_server(data_dir, 0, snapshot_every, use_async)
    server_port = server.address[1]
    genesis = server.initial_root_digest()
    proxy = ChaosProxy(*server.address, seed=seed, config=ChaosConfig(
        drop_rate=drop_rate, truncate_rate=truncate_rate,
        delay_rate=0.02, delay_s=0.002, immune_chunks=1)).start()
    host, port = proxy.address

    def _make_client(index: int, user: str):
        kwargs = dict(
            order=ORDER, connect_timeout=5.0, op_timeout=10.0,
            retry=RetryPolicy(attempts=24, base=0.01, cap=0.25,
                              jitter=0.5, seed=seed + index),
            anchor_path=os.path.join(anchor_dir, f"{user}.anchor"))
        if pipeline_depth > 1:
            return PipelinedRemoteClient(host, port, user, genesis,
                                         window=pipeline_depth, **kwargs)
        return RemoteClient(host, port, user, genesis, **kwargs)

    clients = {user: _make_client(index, user)
               for index, user in enumerate(user_ids)}

    wal_replays = 0
    try:
        for step, (user, key, value) in enumerate(sequence):
            if step in restart_points:
                server.stop(snapshot=False)  # crash: WAL only
                server = _restart_server(data_dir, server_port,
                                         snapshot_every, use_async)
                wal_replays += server.replayed_records
                if verbose:
                    print(f"  [step {step}] crash-restart: replayed "
                          f"{server.replayed_records} WAL record(s)")
            try:
                if pipeline_depth > 1:
                    # Fire-and-track: submit() blocks only on a full
                    # window; every op is drained (and verified) below
                    # before anything counts as acknowledged.
                    clients[user].submit(WriteQuery(key, value))
                else:
                    clients[user].put(key, value)
            except IntegrityError:
                integrity_false_positives += 1
                raise
            acked[key] = value
        if pipeline_depth > 1:
            try:
                for client in clients.values():
                    client.drain()
            except IntegrityError:
                integrity_false_positives += 1
                raise

        # Final read-back of every acknowledged write, through the
        # verifying clients themselves (reads carry VOs too).
        reader = clients[user_ids[0]]
        readback_mismatches = sum(
            1 for key, value in sorted(acked.items())
            if reader.get(key) != value)

        registers = {user: client.registers()
                     for user, client in clients.items()}
        sync_ok = sync_check(genesis, registers)
        if use_async:
            final_root, final_ctr = server.read_state(
                lambda state: (state.database.root_digest(), state.ctr))
        else:
            with server.state_lock:
                final_root = server.state.database.root_digest()
                final_ctr = server.state.ctr
    finally:
        for client in clients.values():
            client.close()
        proxy.stop()
        server.stop(snapshot=False)
        obs_counters = {
            name: obs.registry.counter(name).total()
            for name in ("net.reconnects", "net.retries",
                         "server.wal_replays", "server.wal_appends",
                         "server.dedup_hits", "server.snapshots",
                         "chaos.conn_drops", "chaos.truncations")}
        obs.disable()

    # -- tamper true-positive: recovery must refuse a doctored store -----
    wal_path = os.path.join(data_dir, "wal.log")
    target = wal_path if os.path.getsize(wal_path) > 16 \
        else os.path.join(data_dir, "state.snapshot")
    with open(target, "r+b") as handle:
        blob = bytearray(handle.read())
        blob[min(40, len(blob) - 1)] ^= 0xFF
        handle.seek(0)
        handle.write(blob)
    try:
        TrustedCvsTcpServer(order=ORDER, data_dir=data_dir).server_close()
        tamper_detected = False
    except WalError:
        tamper_detected = True

    total_reads = len(acked)
    results["measured"] = {
        "operations": expected_ops,
        "final_reads": total_reads,
        "server_ctr": final_ctr,
        "expected_ctr": expected_ops + total_reads,
        "wal_replays": wal_replays,
        "restarts": restarts,
        "proxy_faults": dict(proxy.faults),
        "obs": obs_counters,
    }
    results["checks"] = {
        "integrity_false_positives": integrity_false_positives,
        "lost_acked_writes": readback_mismatches,
        # ctr > expected would mean a retried write was double-applied;
        # ctr < expected would mean an acknowledged one vanished.
        "duplicated_writes": max(0, final_ctr - (expected_ops + total_reads)),
        "root_matches_uninterrupted_run": final_root == expected_root,
        "sync_check": sync_ok,
        "tampered_wal_detected": tamper_detected,
    }
    shutil.rmtree(data_dir, ignore_errors=True)
    shutil.rmtree(anchor_dir, ignore_errors=True)
    return results


def campaign_passes(results: dict, require_min_faults: bool) -> bool:
    checks = results["checks"]
    ok = (checks["integrity_false_positives"] == 0
          and checks["lost_acked_writes"] == 0
          and checks["duplicated_writes"] == 0
          and checks["root_matches_uninterrupted_run"]
          and checks["sync_check"]
          and checks["tampered_wal_detected"] is True)
    if require_min_faults:
        measured = results["measured"]
        ok = ok and measured["proxy_faults"]["drops"] \
            + measured["proxy_faults"]["truncations"] >= 20 \
            and measured["restarts"] >= 5
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small N/M for CI (fixed seed)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every criterion holds")
    parser.add_argument("--seed", type=int, default=1301)
    parser.add_argument("--json", action="store_true", help="JSON only")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="run the campaign against the asyncio server")
    parser.add_argument("--pipeline-depth", type=int, default=1,
                        help="client pipeline window (1 = stop-and-wait)")
    args = parser.parse_args(argv)

    if args.quick:
        results = run_campaign(users=2, ops_per_user=25, keyspace=8,
                               restarts=2, seed=args.seed,
                               drop_rate=0.02, truncate_rate=0.015,
                               snapshot_every=16, verbose=not args.json,
                               use_async=args.use_async,
                               pipeline_depth=args.pipeline_depth)
        require_min_faults = False
    else:
        results = run_campaign(users=3, ops_per_user=80, keyspace=12,
                               restarts=5, seed=args.seed,
                               drop_rate=0.05, truncate_rate=0.035,
                               snapshot_every=48, verbose=not args.json,
                               use_async=args.use_async,
                               pipeline_depth=args.pipeline_depth)
        require_min_faults = True

    ok = campaign_passes(results, require_min_faults)
    results["pass"] = ok
    print(json.dumps(results, indent=2))
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
