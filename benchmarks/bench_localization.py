"""E14 -- fault localisation accuracy (future-work item 1).

After a Protocol II alarm, the users pool their register checkpoints
and bracket the fault.  This bench measures, across seeds and fork
times, how often the bracket is found and how tight it is -- plus the
cost knob: the checkpoint ring is the only extra client state.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core.scenarios import build_simulation, populate_database
from repro.mtree.database import VerifiedDatabase
from repro.protocols.localization import localize_fault
from repro.protocols.protocol2 import initial_state_tag
from repro.server.attacks import ForkAttack
from repro.simulation.workload import steady_workload

SEEDS = (1, 3, 5, 7, 11, 13)


def run_localization(seed: int):
    workload = steady_workload(3, 16, spacing=4, keyspace=6,
                               write_ratio=0.6, seed=seed)
    attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
    simulation = build_simulation("protocol2", workload, attack=attack,
                                  k=4, seed=seed, keep_checkpoints=True)
    report = simulation.execute()
    if report.first_deviation_round is None or not report.detected:
        return None
    logs = {u.user_id: u.client.checkpoints.items() for u in simulation.users}
    pristine = VerifiedDatabase(order=8)
    populate_database(pristine, workload)
    result = localize_fault(initial_state_tag(pristine.root_digest()), logs)
    return simulation.server.observed_deviation_ctr, result


def test_localization_accuracy(capsys, benchmark):
    rows = []
    located = attempted = 0
    widths = []
    for seed in SEEDS:
        outcome = run_localization(seed)
        if outcome is None:
            continue
        attempted += 1
        true_ctr, result = outcome
        if not result.fault_found:
            rows.append([seed, true_ctr, None, None, False])
            continue
        located += 1
        lower, upper = result.bracket()
        widths.append(upper - lower)
        # ground truth uses arrival ordinals; the bracket lives in
        # branch-counter space, a few ops of slack apart on a fork
        hit = lower <= true_ctr + 1 and upper >= true_ctr - 3
        rows.append([seed, true_ctr, f"({lower}, {upper}]", upper - lower, hit])
        assert hit, (seed, true_ctr, result.bracket())

    emit(capsys, "E14_localization", format_table(
        ["seed", "true fault op", "bracket", "width", "ground truth in bracket"],
        rows,
        title="E14: fault localisation accuracy (per-op checkpoints, k=4 sync)",
    ))

    assert attempted >= 4
    assert located == attempted          # every detected fault localised
    assert max(widths) <= 2              # per-op checkpoints: 1-2 op brackets

    benchmark.pedantic(lambda: run_localization(3), rounds=3, iterations=1)
