"""E4 -- Figure 4 / Theorem 4.3: Protocol III epochs.

"This protocol guarantees that a fault by the server will be detected
within two epochs" -- a time bound, not an operation bound, with no
broadcast channel at all.

Regenerates the epoch-length sweep: for each epoch length t, inject a
fork and measure detection latency in rounds and in epochs.  The
latency must stay within two epochs (plus scheduling slack inside the
detecting epoch) and must scale linearly with t -- that is the knob
the deployment turns.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.core import build_simulation
from repro.server.attacks import ForkAttack
from repro.simulation.workload import epoch_workload

EPOCH_LENGTHS = (20, 30, 40, 60)


def run_epoch_fork(epoch_length: int, seed: int = 5):
    workload = epoch_workload(n_users=3, epoch_length=epoch_length,
                              epochs=9, keyspace=6, seed=seed)
    fork_round = int(epoch_length * 2.4)
    attack = ForkAttack(victims=["user1"], fork_round=fork_round)
    simulation = build_simulation("protocol3", workload, attack=attack,
                                  epoch_length=epoch_length, seed=seed)
    report = simulation.execute()
    return report, fork_round


def test_fig4_epoch_sweep(capsys, benchmark):
    rows = []
    delays = {}
    for t in EPOCH_LENGTHS:
        report, fork_round = run_epoch_fork(t)
        assert report.detected, t
        assert not report.false_alarm
        # Theorem 4.3's clock starts at the *fault* (the fork), not at
        # the first deviating response the fork happens to serve.
        delay = report.detection_round - fork_round
        delays[t] = delay
        rows.append([t, fork_round, report.detection_round,
                     delay, round(delay / t, 2), report.broadcasts_sent])
        # Theorem 4.3 bound (plus in-epoch scheduling slack).
        assert delay <= 2 * t + t // 2, (t, delay)

    emit(capsys, "E4_fig4_epochs", format_table(
        ["epoch length t", "fork (fault) round", "detect round", "delay (rounds)",
         "delay (epochs)", "broadcasts used"],
        rows,
        title="E4 / Figure 4: Protocol III detects within two epochs, no broadcast",
    ))

    # Latency scales with t: quadrupling t should not leave delay flat.
    assert delays[60] > delays[20]
    # And never a single broadcast-channel message.
    assert all(row[5] == 0 for row in rows)

    benchmark.pedantic(lambda: run_epoch_fork(30)[0], rounds=3, iterations=1)


def test_fig4_honest_epochs_clean(capsys, benchmark):
    def kernel():
        workload = epoch_workload(n_users=3, epoch_length=30, epochs=6,
                                  keyspace=6, seed=8)
        simulation = build_simulation("protocol3", workload, epoch_length=30, seed=8)
        return simulation.execute()

    report = kernel()
    assert not report.detected
    assert report.broadcasts_sent == 0
    benchmark.pedantic(kernel, rounds=3, iterations=1)
