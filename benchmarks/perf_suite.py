"""Machine-readable performance suite over the repo's hot paths.

Times the code paths every protocol operation funnels through --
digest XOR algebra, tagged-state hashing, Merkle VO build+verify
round-trips, RSA sign/verify, server-state snapshots, wire encoding,
and an E12-style 32-user Protocol II makespan -- and persists the
numbers as JSON so the perf trajectory is diffable across PRs.

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py            # full run
    PYTHONPATH=src python benchmarks/perf_suite.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf_suite.py --check    # fail on >3x
                                                              # regression vs
                                                              # BENCH_perf.json
    PYTHONPATH=src python benchmarks/perf_suite.py \
        --write-baseline --before benchmarks/results/perf_seed.json

``--write-baseline`` (re)writes the repo-root ``BENCH_perf.json`` with
the current numbers as ``after``; ``--before FILE`` embeds a previously
captured run (e.g. the pre-optimisation seed) as ``before`` plus the
implied speedups.

Metric naming convention: ``*_per_s`` is a throughput (higher is
better); ``*_ms`` is a latency/makespan (lower is better).  The
regression check uses the suffix to orient the comparison.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import PERF_BASELINE_PATH, emit_json

from repro.crypto import rsa
from repro.crypto.hashing import Digest, hash_bytes, hash_tagged_state, xor_all
from repro.core.scenarios import build_simulation
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery
from repro.protocols.base import ServerState
from repro.protocols.verify import derive_outcome
from repro.simulation.workload import steady_workload
from repro import wire

REGRESSION_FACTOR = 3.0

#: hard ceiling on the *estimated* cost of disabled observability hooks
#: relative to the E12 makespan (the tentpole's "no-op-cheap" promise).
OBS_OVERHEAD_LIMIT_PCT = 3.0


def _rate(fn, *, min_time: float = 0.2, batch: int = 1) -> float:
    """Operations per second of ``fn`` (which performs ``batch`` ops)."""
    # Warm up once so first-call caches and imports are off the clock.
    fn()
    iterations = 0
    started = time.perf_counter()
    deadline = started + min_time
    while True:
        fn()
        iterations += 1
        now = time.perf_counter()
        if now >= deadline:
            return (iterations * batch) / (now - started)


def _digests(count: int, seed: int = 7) -> list[Digest]:
    rng = random.Random(seed)
    return [hash_bytes(rng.randbytes(16)) for _ in range(count)]


def _populated_db(entries: int, order: int = 8, seed: int = 11) -> VerifiedDatabase:
    rng = random.Random(seed)
    db = VerifiedDatabase(order=order)
    for index in range(entries):
        db.execute(WriteQuery(key=f"k{index:05d}".encode(), value=rng.randbytes(24)))
    return db


def measure(quick: bool = False) -> dict[str, float]:
    scale = 0.25 if quick else 1.0
    min_time = 0.05 if quick else 0.2
    metrics: dict[str, float] = {}

    # -- digest algebra ----------------------------------------------------
    pairs = _digests(256)
    def xor_pairs():
        for index in range(0, 256, 2):
            _ = pairs[index] ^ pairs[index + 1]
    metrics["digest_xor_per_s"] = _rate(xor_pairs, min_time=min_time, batch=128)

    fold = _digests(1024)
    metrics["xor_all_digests_per_s"] = _rate(
        lambda: xor_all(fold), min_time=min_time, batch=1024)

    roots = _digests(64, seed=13)
    def tagged_states():
        for index, root in enumerate(roots):
            hash_tagged_state(root, index, "u%d" % (index % 8))
    metrics["hash_tagged_state_per_s"] = _rate(tagged_states, min_time=min_time, batch=64)

    # -- Merkle VO round-trips --------------------------------------------
    entries = int(512 * scale) or 64
    db = _populated_db(entries)
    order = db.order
    read_keys = [f"k{i:05d}".encode() for i in range(0, entries, 7)]
    def read_roundtrip():
        for key in read_keys:
            result = db.execute(ReadQuery(key=key))
            derive_outcome(ReadQuery(key=key), result, order)
    metrics["vo_read_roundtrip_per_s"] = _rate(
        read_roundtrip, min_time=min_time, batch=len(read_keys))

    write_rng = random.Random(17)
    def write_roundtrip():
        key = f"k{write_rng.randrange(entries):05d}".encode()
        query = WriteQuery(key=key, value=write_rng.randbytes(24))
        result = db.execute(query)
        derive_outcome(query, result, order)
    metrics["vo_update_roundtrip_per_s"] = _rate(write_roundtrip, min_time=min_time)

    # -- RSA ---------------------------------------------------------------
    key = rsa.generate_keypair(bits=1024, seed=42)
    digest = hash_bytes(b"perf-suite")
    metrics["rsa_sign_per_s"] = _rate(
        lambda: rsa.sign_digest(key, digest), min_time=min_time)
    signature = rsa.sign_digest(key, digest)
    fresh = [hash_bytes(b"perf-%d" % i) for i in range(64)]
    sigs = [rsa.sign_digest(key, d) for d in fresh]
    def verify_batch():
        for d, s in zip(fresh, sigs):
            assert rsa.verify_digest(key.public, d, s)
    metrics["rsa_verify_per_s"] = _rate(verify_batch, min_time=min_time, batch=64)

    # -- state snapshots & wire encoding ----------------------------------
    state = ServerState(database=_populated_db(int(256 * scale) or 32))
    state.meta["p2.last_user"] = "u0"
    metrics["state_clone_per_s"] = _rate(lambda: state.clone(), min_time=min_time)

    sample_key = b"k00003"
    response = db.execute(ReadQuery(key=sample_key))
    frame_bytes = len(wire.encode(response.proof))
    def encode_proof():
        for _ in range(16):
            wire.encode(response.proof)
    metrics["wire_encode_mb_per_s"] = _rate(
        encode_proof, min_time=min_time, batch=16) * frame_bytes / 1e6

    # -- E12-style makespan wall time --------------------------------------
    n_users = 8 if quick else 32
    workload = steady_workload(n_users, 8, spacing=6, keyspace=32,
                               write_ratio=0.6, scan_ratio=0.1, seed=9)
    started = time.perf_counter()
    report = build_simulation("protocol2", workload, k=4, seed=9).execute()
    wall_ms = (time.perf_counter() - started) * 1000.0
    assert not report.detected, report.alarms
    metrics["e12_makespan_ms" if not quick else "e12_quick_makespan_ms"] = wall_ms

    # -- observability overhead --------------------------------------------
    # The <3% disabled-overhead budget is far below wall-clock noise, so
    # it is *computed* rather than timed directly: an obs-enabled E12 run
    # counts how many instrument hooks the workload fires
    # (``runtime.hook_fires``); a disabled run executes at most that many
    # enabled-checks, each costing no more than a full disabled
    # instrument call, which micro-benchmarks measure exactly.
    from repro import obs

    obs.disable()
    probe_counter = obs.counter("perf.disabled_probe")
    def disabled_incs():
        for _ in range(256):
            probe_counter.inc()
    metrics["obs_disabled_inc_ns"] = 1e9 / _rate(
        disabled_incs, min_time=min_time, batch=256)

    def disabled_spans():
        for _ in range(256):
            with obs.span("perf.disabled_probe_span"):
                pass
    metrics["obs_disabled_span_ns"] = 1e9 / _rate(
        disabled_spans, min_time=min_time, batch=256)

    obs.reset()
    obs.enable()
    try:
        started = time.perf_counter()
        report = build_simulation("protocol2", workload, k=4, seed=9).execute()
        enabled_ms = (time.perf_counter() - started) * 1000.0
        hook_fires = obs.runtime.hook_fires
        span_fires = sum(agg["count"] for agg in obs.tracer.aggregate().values())
    finally:
        obs.disable()
        obs.reset()
    assert not report.detected, report.alarms
    metrics["e12_obs_enabled_makespan_ms"] = enabled_ms
    metrics["obs_hook_fires_e12"] = float(hook_fires)
    # Bill each hook at its own disabled cost: span sites pay a full
    # disabled span() call, every other fire at most a disabled inc().
    overhead_ns = (span_fires * metrics["obs_disabled_span_ns"]
                   + (hook_fires - span_fires) * metrics["obs_disabled_inc_ns"])
    metrics["obs_disabled_overhead_pct"] = overhead_ns / (wall_ms * 1e6) * 100.0

    return {name: round(value, 3) for name, value in metrics.items()}


#: Diagnostics that must never enter the regression baseline: counts
#: and obs-instrumentation numbers whose value depends on the run mode
#: (quick fires far fewer hooks than full, which is not a regression)
#: or that are gated by their own explicit budget instead.
_DIAGNOSTIC_METRICS = frozenset({
    "obs_hook_fires_e12",
    "obs_disabled_overhead_pct",
    "obs_disabled_inc_ns",
    "obs_disabled_span_ns",
    "e12_obs_enabled_makespan_ms",
    "e12_quick_makespan_ms",
})


def _gateable(metrics: dict) -> dict:
    return {name: value for name, value in metrics.items()
            if name not in _DIAGNOSTIC_METRICS}


def _higher_is_better(name: str) -> bool:
    return not name.endswith("_ms")


def compare(current: dict, baseline: dict, factor: float = REGRESSION_FACTOR) -> list[str]:
    """Regressions of more than ``factor`` versus the baseline."""
    problems = []
    for name, base in baseline.items():
        now = current.get(name)
        if now is None or not base:
            continue
        ratio = (base / now) if _higher_is_better(name) else (now / base)
        if ratio > factor:
            problems.append(f"{name}: {now} vs baseline {base} ({ratio:.1f}x worse)")
    return problems


def speedups(before: dict, after: dict) -> dict[str, float]:
    out = {}
    for name, new in after.items():
        old = before.get(name)
        if not old or not new:
            continue
        out[name] = round(new / old if _higher_is_better(name) else old / new, 2)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller workloads (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail on >%.0fx regression vs BENCH_perf.json" % REGRESSION_FACTOR)
    parser.add_argument("--write-baseline", action="store_true",
                        help="write BENCH_perf.json with this run as 'after'")
    parser.add_argument("--before", metavar="FILE",
                        help="JSON metrics file to embed as 'before' in the baseline")
    parser.add_argument("--json", metavar="FILE",
                        help="also write this run's metrics to FILE")
    args = parser.parse_args(argv)

    metrics = measure(quick=args.quick)
    width = max(len(name) for name in metrics)
    print("perf_suite (%s mode)" % ("quick" if args.quick else "full"))
    for name in sorted(metrics):
        print(f"  {name:<{width}}  {metrics[name]:>14,.3f}")

    run_id = "perf_suite_quick" if args.quick else "perf_suite"
    path = emit_json(run_id, metrics, path=args.json)
    print(f"[metrics saved to {path}]")

    if args.write_baseline:
        payload = {"suite": "perf_suite", "mode": "quick" if args.quick else "full",
                   "after": _gateable(metrics)}
        if args.before:
            try:
                with open(args.before, encoding="utf-8") as handle:
                    before = json.load(handle)
            except (OSError, ValueError) as exc:
                parser.error(f"--before {args.before}: {exc}")
            payload["before"] = before
            payload["speedup"] = speedups(before, metrics)
        emit_json("BENCH_perf", payload, path=PERF_BASELINE_PATH)
        print(f"[baseline written to {PERF_BASELINE_PATH}]")

    if args.check:
        try:
            with open(PERF_BASELINE_PATH, encoding="utf-8") as handle:
                baseline = json.load(handle)["after"]
        except (OSError, KeyError, ValueError):
            print("no usable BENCH_perf.json baseline; skipping regression check")
            return 0
        problems = compare(metrics, baseline)
        overhead = metrics.get("obs_disabled_overhead_pct")
        if overhead is not None and overhead > OBS_OVERHEAD_LIMIT_PCT:
            problems.append(
                f"obs_disabled_overhead_pct: {overhead} exceeds the "
                f"{OBS_OVERHEAD_LIMIT_PCT:.0f}% disabled-hook budget")
        if problems:
            print("PERF REGRESSION (> %.0fx):" % REGRESSION_FACTOR)
            for line in problems:
                print("  " + line)
            return 1
        print("regression check passed (all metrics within "
              f"{REGRESSION_FACTOR:.0f}x of baseline; obs disabled overhead "
              f"{overhead}% < {OBS_OVERHEAD_LIMIT_PCT:.0f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
