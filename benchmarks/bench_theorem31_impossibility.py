"""E10 -- Theorem 3.1, executable.

The paper omits the proof for space; we *run* it.  For each client
strategy the harness builds the honest runs rA and rB and the forked
run r, then compares every user's message transcript:

* server-only clients (no broadcast traffic): views identical
  message-for-message => the fork is undetectable *by construction*,
  for any deterministic client;
* the same client with the broadcast sync enabled: views diverge and
  the fork is caught -- external communication is exactly what the
  theorem says is necessary.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from bench_common import emit
from repro.analysis import format_table
from repro.analysis.impossibility import demonstrate_partition


def test_theorem31_construction(capsys, benchmark):
    rows = []
    for label, protocol, kwargs in [
        ("naive (today's CVS)", "naive", {}),
        ("Protocol I, no sync", "protocol1", {}),
        ("Protocol II, no sync", "protocol2", {}),
        ("Protocol III, idle epochs", "protocol3", {"epoch_length": 100_000}),
        ("Protocol II, sync k=3", "protocol2", {"k": 3}),
        ("Protocol II (tree sync), k=3", "protocol2agg", {"k": 3}),
    ]:
        report = demonstrate_partition(protocol, seed=4, **kwargs)
        rows.append([
            label,
            report.server_forked,
            report.views_match_a and report.views_match_b,
            report.attack_detected,
        ])

    emit(capsys, "E10_theorem31", format_table(
        ["client strategy", "server forked", "views identical to honest runs",
         "fork detected"],
        rows,
        title="E10 / Theorem 3.1: indistinguishability without external communication",
    ))

    # Server-only strategies: identical views, no detection.
    for row in rows[:4]:
        assert row[1] and row[2] and not row[3], row
    # External communication: views diverge, detection follows.
    for row in rows[4:]:
        assert row[1] and not row[2] and row[3], row

    benchmark.pedantic(lambda: demonstrate_partition("protocol2", seed=4),
                       rounds=3, iterations=1)
