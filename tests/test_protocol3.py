"""Protocol III: epoch deposits, server-mediated audits, no broadcast
channel (Theorem 4.3: detection within two epochs)."""

import pytest

from helpers import FakeContext, run_scenario
from repro.core.scenarios import make_keys
from repro.crypto.hashing import Digest
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery
from repro.protocols.base import DeviationDetected, Request, Response, ServerState
from repro.protocols.protocol3 import EpochDeposit, Protocol3Client, Protocol3Server
from repro.server.attacks import ForkAttack, StaleRootReplayAttack
from repro.simulation.workload import epoch_workload

USERS = ["u0", "u1", "u2"]
EPOCH = 30


@pytest.fixture(scope="module")
def keys():
    return make_keys(USERS, seed=55)


@pytest.fixture
def rig(keys):
    state = ServerState(database=VerifiedDatabase(order=4))
    state.database.execute(WriteQuery(b"file", b"v0"))
    server = Protocol3Server(epoch_length=EPOCH)
    server.initialize(state)
    initial_root = state.database.root_digest()
    clients = {
        u: Protocol3Client(u, USERS, EPOCH, initial_root,
                           keys.signers[u], keys.verifier, order=4)
        for u in USERS
    }
    return state, server, clients


def roundtrip(state, server, client, query, round_no):
    ctx = FakeContext(round_no=round_no)
    request = client.make_request(query)
    response = server.handle_request(client.user_id, request, state, round_no)
    answer = client.handle_response(query, response, ctx)
    return answer, request


class TestEpochs:
    def test_epoch_length_minimum(self):
        with pytest.raises(ValueError):
            Protocol3Server(epoch_length=2)

    def test_server_reports_epoch(self, rig):
        state, server, _clients = rig
        response = server.handle_request("u0", Request(query=ReadQuery(b"file")), state, 65)
        assert response.extras["epoch"] == 65 // EPOCH

    def test_client_tracks_epoch(self, rig):
        state, server, clients = rig
        client = clients["u0"]
        for _ in range(5):
            client.on_round(FakeContext())  # advance local clock
        roundtrip(state, server, client, ReadQuery(b"file"), 5)
        assert client.current_epoch == 0

    def test_deposit_on_second_op_of_new_epoch(self, rig):
        state, server, clients = rig
        client = clients["u0"]
        clock_ctx = FakeContext()
        for r in range(1, EPOCH + 6):
            client.on_round(clock_ctx)
        # two ops in epoch 0 would normally precede; jump straight in:
        roundtrip(state, server, client, ReadQuery(b"file"), 4)
        # first op in epoch 1: triggers the backup
        sigma_end_epoch0 = client.sigma
        last_end_epoch0 = client.last
        _answer, _request = roundtrip(state, server, client, ReadQuery(b"file"), EPOCH + 2)
        assert client._pending_deposit is not None
        # sigma was reset at the boundary, then accumulated exactly the
        # one transition of the new epoch: old_tag ^ new_tag.
        assert client.sigma == last_end_epoch0 ^ client.last
        # second op in epoch 1 carries the deposit
        request = client.make_request(ReadQuery(b"file"))
        deposit = request.extras["deposit"]
        assert isinstance(deposit, EpochDeposit)
        assert deposit.epoch == 0
        assert deposit.sigma == sigma_end_epoch0
        assert deposit.last == last_end_epoch0
        assert client._pending_deposit is None

    def test_server_stores_deposits(self, rig, keys):
        state, server, clients = rig
        client = clients["u0"]
        deposit = EpochDeposit(
            user_id="u0", epoch=0, sigma=Digest.zero(), last=Digest.zero(),
            signature=keys.signers["u0"].sign(
                EpochDeposit(user_id="u0", epoch=0, sigma=Digest.zero(),
                             last=Digest.zero(), signature=None).digest()),
        )
        request = Request(query=ReadQuery(b"file"), extras={"deposit": deposit})
        server.handle_request("u0", request, state, 40)
        assert state.meta["p3.deposits"][0]["u0"] is deposit

    def test_epoch_regression_detected(self, rig):
        state, server, clients = rig
        client = clients["u1"]
        clock = FakeContext()
        for _ in range(EPOCH * 2 + 10):
            client.on_round(clock)
        roundtrip(state, server, client, ReadQuery(b"file"), EPOCH * 2 + 2)
        response = server.handle_request("u1", Request(query=ReadQuery(b"file")), state, EPOCH * 2 + 4)
        lying = Response(result=response.result, extras={**response.extras, "epoch": 0})
        with pytest.raises(DeviationDetected, match="implausible|backwards"):
            client.handle_response(ReadQuery(b"file"), lying, FakeContext())

    def test_implausible_epoch_detected(self, rig):
        state, server, clients = rig
        client = clients["u2"]
        for _ in range(4):
            client.on_round(FakeContext())
        response = server.handle_request("u2", Request(query=ReadQuery(b"file")), state, 4)
        lying = Response(result=response.result, extras={**response.extras, "epoch": 7})
        with pytest.raises(DeviationDetected, match="implausible"):
            client.handle_response(ReadQuery(b"file"), lying, FakeContext())

    def test_missing_epoch_field_detected(self, rig):
        state, server, clients = rig
        response = server.handle_request("u0", Request(query=ReadQuery(b"file")), state, 4)
        extras = {k: v for k, v in response.extras.items() if k != "epoch"}
        with pytest.raises(DeviationDetected, match="epoch"):
            clients["u0"].handle_response(ReadQuery(b"file"),
                                          Response(result=response.result, extras=extras),
                                          FakeContext())


class TestAuditing:
    def test_auditor_rotation(self, rig):
        _state, _server, clients = rig
        client = clients["u0"]
        assert client.auditor_of(0) == "u0"
        assert client.auditor_of(1) == "u1"
        assert client.auditor_of(2) == "u2"
        assert client.auditor_of(3) == "u0"

    def test_fetch_returns_deposits(self, rig):
        state, server, _clients = rig
        response = server.handle_request(
            "u0", Request(query=None, extras={"fetch_epochs": [0, 1]}), state, 70)
        assert response.extras["deposits"] == {0: {}, 1: {}}

    def test_missing_deposit_detected(self, rig):
        _state, _server, clients = rig
        client = clients["u0"]
        client._audit_in_flight = 0
        empty = Response(result=None, extras={"epoch": 2, "deposits": {0: {}}})
        with pytest.raises(DeviationDetected, match="no deposit"):
            client.handle_response(None, empty, FakeContext())

    def test_forged_deposit_signature_detected(self, rig, keys):
        _state, _server, clients = rig
        client = clients["u0"]
        client._audit_in_flight = 0
        deposits = {}
        for u in USERS:
            template = EpochDeposit(user_id=u, epoch=0, sigma=Digest.zero(),
                                    last=Digest.zero(), signature=None)
            deposits[u] = EpochDeposit(
                user_id=u, epoch=0, sigma=template.sigma, last=template.last,
                signature=keys.signers[u].sign(template.digest()))
        # corrupt one signature (server-forged bytes)
        good = deposits["u1"]
        deposits["u1"] = EpochDeposit(
            user_id="u1", epoch=0, sigma=good.sigma, last=good.last,
            signature=type(good.signature)(signer_id="u1", digest=good.signature.digest,
                                           raw=bytes(len(good.signature.raw))))
        response = Response(result=None, extras={"epoch": 2, "deposits": {0: deposits}})
        with pytest.raises(DeviationDetected, match="forged"):
            client.handle_response(None, response, FakeContext())

    def test_mislabelled_deposit_detected(self, rig, keys):
        _state, _server, clients = rig
        client = clients["u0"]
        client._audit_in_flight = 0
        deposits = {}
        for u in USERS:
            template = EpochDeposit(user_id=u, epoch=1, sigma=Digest.zero(),
                                    last=Digest.zero(), signature=None)
            deposits[u] = EpochDeposit(
                user_id=u, epoch=1, sigma=template.sigma, last=template.last,
                signature=keys.signers[u].sign(template.digest()))
        # epoch-1 deposits presented for an epoch-0 audit: replay across epochs
        response = Response(result=None, extras={"epoch": 2, "deposits": {0: deposits}})
        with pytest.raises(DeviationDetected, match="mislabelled"):
            client.handle_response(None, response, FakeContext())


class TestSimulations:
    def test_honest_run_clean(self):
        workload = epoch_workload(n_users=3, epoch_length=EPOCH, epochs=6, seed=1)
        report = run_scenario("protocol3", workload, epoch_length=EPOCH, seed=1)
        assert not report.detected
        assert sum(report.operations_completed.values()) == workload.total_operations()

    def test_honest_run_clean_under_drifting_clocks(self):
        workload = epoch_workload(n_users=3, epoch_length=EPOCH, epochs=5, seed=2)
        report = run_scenario("protocol3", workload, epoch_length=EPOCH, seed=2, p=2)
        assert not report.detected

    def test_fork_detected_within_two_epochs(self):
        workload = epoch_workload(n_users=3, epoch_length=EPOCH, epochs=9, seed=3)
        attack = ForkAttack(victims=["user2"], fork_round=int(EPOCH * 2.5))
        report = run_scenario("protocol3", workload, attack=attack, epoch_length=EPOCH, seed=3)
        assert report.detected
        assert not report.false_alarm
        # Theorem 4.3: within two epochs of the fault.
        assert report.detection_round is not None
        assert report.detection_round - report.first_deviation_round <= 2 * EPOCH + EPOCH // 2

    def test_stale_replay_detected(self):
        workload = epoch_workload(n_users=3, epoch_length=EPOCH, epochs=9, seed=4)
        attack = StaleRootReplayAttack(victim="user1", freeze_round=int(EPOCH * 2.2))
        report = run_scenario("protocol3", workload, attack=attack, epoch_length=EPOCH, seed=4)
        assert report.detected
        assert not report.false_alarm

    def test_no_broadcasts_used(self):
        workload = epoch_workload(n_users=4, epoch_length=EPOCH, epochs=4, seed=5)
        report = run_scenario("protocol3", workload, epoch_length=EPOCH, seed=5)
        assert report.broadcasts_sent == 0

    def test_constant_local_state(self, keys):
        client = Protocol3Client("u0", USERS, EPOCH, Digest.zero(),
                                 keys.signers["u0"], keys.verifier)
        assert client.state_size() < 10


class TestHeavyClockDrift:
    def test_honest_run_clean_at_p3(self):
        """p = 3 partial synchrony: local clocks run up to 3x slow; the
        epoch plausibility window must still admit every honest
        announcement."""
        workload = epoch_workload(n_users=3, epoch_length=EPOCH, epochs=5, seed=9)
        report = run_scenario("protocol3", workload, epoch_length=EPOCH, seed=9, p=3)
        assert not report.detected, report.alarms
        assert sum(report.operations_completed.values()) == workload.total_operations()
