"""Replicated root deposits across N untrusted servers.

A primary replicates its signed root lineage to witness servers; a
client confirms every verified root against a random f+1 witness
quorum.  These tests cover the codec, the witness's banking/attestation
protocol (including WAL crash replay), the client-side quorum check in
every verdict class -- confirmation, primary fork, primary
equivocation, witness fabrication, withholding-as-noise -- endpoint
failover, and the offline re-verification of every evidence bundle.
"""

import os

import pytest

from repro.crypto.hashing import Digest
from repro.mtree.database import VerifiedDatabase
from repro.net import (
    EndpointConnector,
    PipelinedRemoteClient,
    QuorumChecker,
    RemoteClient,
    Replicator,
    RetryPolicy,
    TransientNetworkError,
    WireAttack,
    WitnessCollusion,
    WitnessProtocol,
    attest,
    attestation_valid,
    deposit_valid,
    make_deposit,
    make_replica_keys,
    serve_async_in_thread,
    serve_in_thread,
)
from repro.net import evidence
from repro.net.client import ReplicationDivergence
from repro.net.framing import recv_message, send_message
from repro.net.replication import (
    ATTEST_KEY,
    DEPOSIT_KEY,
    FETCH_KEY,
    HEAD_KEY,
    META_CONFLICTS,
    META_DEPOSITS,
    REPL_USER,
    RootAttestation,
    RootDeposit,
    witness_name,
)
from repro.protocols.base import Request, ServerState
from repro.server.attacks import ForkAttack
from repro.wire import decode, encode

ORDER = 4
KEYS = make_replica_keys(3, 91)  # one keygen for the whole module


def _root(tag: bytes) -> Digest:
    from repro.crypto.hashing import hash_bytes

    return hash_bytes(b"test-root:" + tag)


def _witness_protocol(index: int, collusion=None) -> WitnessProtocol:
    wid = witness_name(index)
    return WitnessProtocol(wid, KEYS.witnesses[index], KEYS.verifier,
                           collusion=collusion)


def _witness_cluster(n=3, collusions=None, **serve_kwargs):
    """n witness servers; returns (servers, [(wid, (host, port))])."""
    servers, endpoints = [], []
    for index in range(n):
        protocol = _witness_protocol(index,
                                     (collusions or {}).get(index))
        server = serve_in_thread(order=ORDER, protocol=protocol,
                                 **serve_kwargs)
        servers.append(server)
        endpoints.append((witness_name(index), server.address))
    return servers, endpoints


def _quorum(endpoints, user="alice", f=1, seed=7, evidence_dir=None):
    return QuorumChecker(endpoints, KEYS.verifier, f, user_id=user,
                         seed=seed,
                         retry=RetryPolicy(attempts=8, base=0.005,
                                           cap=0.05, seed=seed),
                         evidence_dir=evidence_dir, order=ORDER)


# -- codec -----------------------------------------------------------------

class TestCodec:
    def test_deposit_roundtrip(self):
        deposit = make_deposit(KEYS.primary, 7, _root(b"a"))
        assert decode(encode(deposit)) == deposit

    def test_attestation_roundtrip(self):
        deposit = make_deposit(KEYS.primary, 3, _root(b"b"))
        attestation = attest(KEYS.witnesses[0], deposit)
        decoded = decode(encode(attestation))
        assert decoded == attestation
        assert attestation_valid(decoded, KEYS.verifier)

    def test_signatures_survive_the_wire(self):
        deposit = decode(encode(make_deposit(KEYS.primary, 1, _root(b"c"))))
        assert deposit_valid(deposit, KEYS.verifier)
        tampered = RootDeposit(primary_id=deposit.primary_id, ctr=2,
                               root=deposit.root,
                               signature=deposit.signature)
        assert not deposit_valid(tampered, KEYS.verifier)


# -- the witness protocol, driven directly ---------------------------------

class TestWitnessBanking:
    def _fresh(self, collusion=None):
        protocol = _witness_protocol(0, collusion)
        state = ServerState(database=VerifiedDatabase(order=ORDER))
        protocol.initialize(state)
        return protocol, state

    def _deposit(self, protocol, state, deposits):
        request = Request(query=None, extras={"user": REPL_USER,
                                              DEPOSIT_KEY: deposits})
        return protocol.handle_request(REPL_USER, request, state, round_no=0)

    def _fetch(self, protocol, state, ctrs, user="alice"):
        request = Request(query=None, extras={"user": user, FETCH_KEY: ctrs})
        return protocol.handle_request(user, request, state, round_no=0)

    def test_banks_valid_deposits_and_attests(self):
        protocol, state = self._fresh()
        deposit = make_deposit(KEYS.primary, 1, _root(b"x"))
        reply = self._deposit(protocol, state, [deposit])
        assert reply.extras["stored"] == 1
        assert reply.extras[HEAD_KEY] == 1
        attestation = self._fetch(protocol, state, [1]).extras[ATTEST_KEY][1]
        assert attestation.witness_id == witness_name(0)
        assert attestation.deposit == deposit
        assert attestation_valid(attestation, KEYS.verifier)

    def test_redelivery_is_idempotent(self):
        protocol, state = self._fresh()
        deposit = make_deposit(KEYS.primary, 1, _root(b"x"))
        self._deposit(protocol, state, [deposit])
        reply = self._deposit(protocol, state, [deposit, deposit])
        assert reply.extras["stored"] == 0
        assert len(state.meta[META_DEPOSITS]) == 1
        assert state.meta[META_CONFLICTS] == []

    def test_invalid_primary_signature_rejected(self):
        protocol, state = self._fresh()
        good = make_deposit(KEYS.primary, 1, _root(b"x"))
        forged = RootDeposit(primary_id=good.primary_id, ctr=2,
                             root=good.root, signature=good.signature)
        reply = self._deposit(protocol, state, [forged])
        assert reply.extras["rejected"] == 1
        assert state.meta[META_DEPOSITS] == {}
        assert protocol.rejected == 1

    def test_conflicting_deposit_keeps_first_remembers_confession(self):
        protocol, state = self._fresh()
        first = make_deposit(KEYS.primary, 1, _root(b"x"))
        second = make_deposit(KEYS.primary, 1, _root(b"y"))
        self._deposit(protocol, state, [first])
        self._deposit(protocol, state, [second])
        assert state.meta[META_DEPOSITS][1] == first
        assert state.meta[META_CONFLICTS] == [second]

    def test_fetch_unknown_counter_is_lag_not_error(self):
        protocol, state = self._fresh()
        reply = self._fetch(protocol, state, [5])
        assert reply.extras[ATTEST_KEY][5] is None
        assert reply.extras[HEAD_KEY] == -1


class TestWitnessWalReplay:
    def test_crash_replay_rebuilds_the_deposit_store(self, tmp_path):
        """Deposits ride the hash-chained WAL: a crash-stop witness
        replays to the identical banked lineage."""
        import socket as socket_module

        data_dir = str(tmp_path / "witness")
        server = serve_in_thread(order=ORDER, protocol=_witness_protocol(0),
                                 data_dir=data_dir)
        deposits = [make_deposit(KEYS.primary, ctr, _root(b"%d" % ctr))
                    for ctr in (1, 2, 3)]
        with socket_module.create_connection(server.address,
                                             timeout=5) as sock:
            send_message(sock, Request(query=None, extras={
                "user": REPL_USER, DEPOSIT_KEY: deposits}))
            assert recv_message(sock).extras["stored"] == 3
        server.stop(snapshot=False)  # crash: WAL only

        restarted = serve_in_thread(order=ORDER,
                                    protocol=_witness_protocol(0),
                                    data_dir=data_dir)
        try:
            assert restarted.replayed_records == 1
            with restarted.state_lock:
                banked = restarted.state.meta[META_DEPOSITS]
                assert {ctr: banked[ctr] for ctr in banked} == {
                    deposit.ctr: deposit for deposit in deposits}
        finally:
            restarted.stop()


# -- replication + quorum end to end ---------------------------------------

class TestQuorumEndToEnd:
    def test_honest_lineage_confirmed(self):
        witnesses, endpoints = _witness_cluster()
        replicator = Replicator(KEYS.primary,
                                witnesses=[e for _, e in endpoints])
        server = serve_in_thread(order=ORDER, replicator=replicator)
        try:
            host, port = server.address
            with RemoteClient(host, port, "alice",
                              server.initial_root_digest(), order=ORDER,
                              quorum=_quorum(endpoints), quorum_every=2) as alice:
                for i in range(6):
                    alice.put(b"k%d" % (i % 3), b"v%d" % i)
                assert replicator.flush(timeout=10)
                alice.quorum_check(require_all=True)
                assert alice.quorum.pending == 0
                assert alice.quorum.confirmed == 6
                assert alice.quorum.detections == []
        finally:
            server.stop()
            for witness in witnesses:
                witness.stop()

    def test_async_primary_replicates_per_executed_op(self):
        witnesses, endpoints = _witness_cluster(n=1)
        replicator = Replicator(KEYS.primary,
                                witnesses=[e for _, e in endpoints])
        handle = serve_async_in_thread(order=ORDER, replicator=replicator)
        try:
            host, port = handle.address
            with RemoteClient(host, port, "alice",
                              handle.initial_root_digest(),
                              order=ORDER) as alice:
                for i in range(4):
                    alice.put(b"a%d" % i, b"v%d" % i)
            assert replicator.flush(timeout=10)
            with witnesses[0].state_lock:
                banked = witnesses[0].state.meta[META_DEPOSITS]
            # one deposit per executed op, even under batched draining
            assert sorted(banked) == [1, 2, 3, 4]
        finally:
            handle.graceful_stop()
            for witness in witnesses:
                witness.stop()

    def test_pipelined_client_confirms_through_quorum(self):
        witnesses, endpoints = _witness_cluster()
        replicator = Replicator(KEYS.primary,
                                witnesses=[e for _, e in endpoints])
        server = serve_in_thread(order=ORDER, replicator=replicator)
        try:
            host, port = server.address
            with PipelinedRemoteClient(host, port, "alice",
                                       server.initial_root_digest(),
                                       order=ORDER, window=4,
                                       quorum=_quorum(endpoints),
                                       quorum_every=3) as alice:
                for i in range(8):
                    alice.put(b"p%d" % (i % 4), b"v%d" % i)
                alice.drain()
                assert replicator.flush(timeout=10)
                alice.quorum_check(require_all=True)
                assert alice.quorum.pending == 0
                assert alice.quorum.confirmed == 8
        finally:
            server.stop()
            for witness in witnesses:
                witness.stop()


class TestForkDetection:
    def test_forked_client_is_outvoted_and_names_the_primary(self, tmp_path):
        """The tentpole scenario: the primary serves alice a forked
        history; the witnesses hold only the public lineage, so alice's
        next quorum check convicts the primary -- with offline-provable
        evidence -- while bob keeps operating with no rollback."""
        witnesses, endpoints = _witness_cluster()
        replicator = Replicator(KEYS.primary,
                                witnesses=[e for _, e in endpoints])
        wire = WireAttack(ForkAttack(victims=["alice"], fork_round=3))
        server = serve_in_thread(order=ORDER, attack=wire,
                                 replicator=replicator)
        evidence_dir = str(tmp_path)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            alice = RemoteClient(host, port, "alice", genesis, order=ORDER,
                                 quorum=_quorum(endpoints, "alice",
                                                evidence_dir=evidence_dir),
                                 quorum_every=2)
            bob = RemoteClient(host, port, "bob", genesis, order=ORDER,
                               quorum=_quorum(endpoints, "bob", seed=8,
                                              evidence_dir=evidence_dir),
                               quorum_every=2)
            try:
                with pytest.raises(ReplicationDivergence) as caught:
                    for i in range(8):
                        alice.put(b"a%d" % i, b"v%d" % i)
                        bob.put(b"b%d" % i, b"v%d" % i)
                assert caught.value.deviant == "primary"
                path = caught.value.evidence_path
                genuine, why = evidence.reverify(evidence.read_bundle(path))
                assert genuine, why
                assert "fork" in why or "contradict" in why

                # bob was served the honest lineage: he finishes his
                # workload and confirms all of it -- the out-vote means
                # progress, not a halt.
                for i in range(8, 12):
                    bob.put(b"b%d" % i, b"v%d" % i)
                assert replicator.flush(timeout=10)
                bob.quorum_check(require_all=True)
                assert bob.quorum.pending == 0
                assert bob.quorum.detections == []
            finally:
                alice.close()
                bob.close()
        finally:
            server.stop()
            for witness in witnesses:
                witness.stop()


class TestWitnessFabrication:
    def test_fabricating_witness_is_named_and_excluded(self, tmp_path):
        """A colluding minority cannot equivocate: its lie (valid
        witness signature over a deposit the primary never signed) is
        itself the evidence, the client excludes it and keeps going."""
        collusion = WitnessCollusion("fabricate")
        witnesses, endpoints = _witness_cluster(collusions={0: collusion})
        replicator = Replicator(KEYS.primary,
                                witnesses=[e for _, e in endpoints])
        server = serve_in_thread(order=ORDER, replicator=replicator)
        evidence_dir = str(tmp_path)
        try:
            host, port = server.address
            with RemoteClient(host, port, "carol",
                              server.initial_root_digest(), order=ORDER,
                              quorum=_quorum(endpoints, "carol",
                                             evidence_dir=evidence_dir),
                              quorum_every=2) as carol:
                for i in range(8):
                    carol.put(b"c%d" % i, b"v%d" % i)
                assert replicator.flush(timeout=10)
                carol.quorum_check(require_all=True)
                assert carol.quorum.pending == 0
                assert collusion.served > 0  # the colluder really lied
                assert carol.quorum.excluded == {witness_name(0)}
                assert carol.quorum.detections, "fabrication went unnamed"
                for detection in carol.quorum.detections:
                    assert detection["deviant"] == witness_name(0)
                    assert detection["mode"] == "witness-fabrication"
                    genuine, why = evidence.reverify(
                        evidence.read_bundle(detection["evidence_path"]))
                    assert genuine, why
        finally:
            server.stop()
            for witness in witnesses:
                witness.stop()

    def test_withholding_witness_is_noise_not_evidence(self):
        """Starvation is indistinguishable from lag: a withholding
        witness must never be accused, and the honest majority still
        confirms everything."""
        collusion = WitnessCollusion("withhold")
        witnesses, endpoints = _witness_cluster(collusions={0: collusion})
        replicator = Replicator(KEYS.primary,
                                witnesses=[e for _, e in endpoints])
        server = serve_in_thread(order=ORDER, replicator=replicator)
        try:
            host, port = server.address
            with RemoteClient(host, port, "dave",
                              server.initial_root_digest(), order=ORDER,
                              quorum=_quorum(endpoints, "dave"),
                              quorum_every=2) as dave:
                for i in range(8):
                    dave.put(b"d%d" % i, b"v%d" % i)
                assert replicator.flush(timeout=10)
                dave.quorum_check(require_all=True)
                assert dave.quorum.pending == 0
                assert dave.quorum.detections == []
                assert dave.quorum.excluded == set()
        finally:
            server.stop()
            for witness in witnesses:
                witness.stop()


class TestEquivocation:
    def test_double_signed_counter_convicts_the_primary(self, tmp_path):
        """Hand-crafted equivocation: two witnesses each hold a
        *different* validly-signed deposit for one counter.  Sampling
        both exposes the primary's double signature."""
        witnesses, endpoints = _witness_cluster(n=2)
        try:
            roots = [_root(b"left"), _root(b"right")]
            for index, server in enumerate(witnesses):
                import socket as socket_module

                deposit = make_deposit(KEYS.primary, 1, roots[index])
                with socket_module.create_connection(server.address,
                                                     timeout=5) as sock:
                    send_message(sock, Request(query=None, extras={
                        "user": REPL_USER, DEPOSIT_KEY: [deposit]}))
                    assert recv_message(sock).extras["stored"] == 1
            checker = _quorum(endpoints, "erin",
                              evidence_dir=str(tmp_path))
            checker.record(1, roots[0])
            with pytest.raises(ReplicationDivergence) as caught:
                checker.check(require_all=True)
            assert caught.value.deviant == "primary"
            assert "equivocation" in caught.value.args[0] \
                or "different roots" in caught.value.args[0]
            genuine, why = evidence.reverify(
                evidence.read_bundle(caught.value.evidence_path))
            assert genuine, why
            checker.close()
        finally:
            for witness in witnesses:
                witness.stop()

    def test_unreachable_quorum_is_transient_not_divergence(self):
        witnesses, endpoints = _witness_cluster(n=2)
        for witness in witnesses:
            witness.stop()
        checker = QuorumChecker(endpoints, KEYS.verifier, 1, user_id="f",
                                retry=RetryPolicy(attempts=2, base=0.001,
                                                  cap=0.002, seed=1),
                                connect_timeout=0.5, op_timeout=0.5,
                                order=ORDER)
        checker.record(1, _root(b"z"))
        with pytest.raises(TransientNetworkError):
            checker.check(require_all=True)
        checker.close()


# -- evidence: negative re-verification ------------------------------------

class TestReplicationEvidenceNegatives:
    def _fork_bundle(self, tmp_path):
        deposit = make_deposit(KEYS.primary, 1, _root(b"served"))
        attestation = attest(KEYS.witnesses[0], deposit)
        bundle = evidence.replication_bundle(
            mode="primary-fork", deviant="primary", user_id="u", ctr=1,
            reason="test", attestations=[encode(attestation)],
            order=ORDER, expected_root=_root(b"expected"),
            verifier_keys=evidence.key_directory(KEYS.verifier))
        return bundle

    def test_honest_material_is_not_evidence(self, tmp_path):
        """A 'fork' bundle whose deposit matches the expected root
        verifies cleanly -- it implicates nobody."""
        deposit = make_deposit(KEYS.primary, 1, _root(b"same"))
        attestation = attest(KEYS.witnesses[0], deposit)
        bundle = evidence.replication_bundle(
            mode="primary-fork", deviant="primary", user_id="u", ctr=1,
            reason="test", attestations=[encode(attestation)],
            order=ORDER, expected_root=_root(b"same"),
            verifier_keys=evidence.key_directory(KEYS.verifier))
        genuine, why = evidence.reverify(bundle)
        assert not genuine

    def test_garbled_attestation_frame_is_not_evidence(self, tmp_path):
        bundle = self._fork_bundle(tmp_path)
        frame = bundle["attestation_frames"][0]
        bundle["attestation_frames"] = [frame[:-3]]
        genuine, why = evidence.reverify(bundle)
        assert not genuine

    def test_fabrication_bundle_requires_invalid_primary_signature(self):
        """An honestly-signed deposit wrapped in a fabrication claim
        must NOT convict the witness."""
        deposit = make_deposit(KEYS.primary, 1, _root(b"fine"))
        attestation = attest(KEYS.witnesses[0], deposit)
        bundle = evidence.replication_bundle(
            mode="witness-fabrication", deviant=witness_name(0),
            user_id="u", ctr=1, reason="test",
            attestations=[encode(attestation)], order=ORDER,
            verifier_keys=evidence.key_directory(KEYS.verifier))
        genuine, why = evidence.reverify(bundle)
        assert not genuine


# -- endpoint failover ------------------------------------------------------

def _dead_port() -> int:
    import socket as socket_module

    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestEndpointFailover:
    def test_connector_rotates_past_dead_endpoints(self):
        server = serve_in_thread(order=ORDER)
        try:
            connector = EndpointConnector(
                [("127.0.0.1", _dead_port()), server.address],
                connect_timeout=0.5, op_timeout=5.0)
            sock = connector.connect()
            sock.close()
            assert connector.failovers == 1
            assert connector.current == server.address
            # sticky: the next connect goes straight to the live one
            sock = connector.connect()
            sock.close()
            assert connector.failovers == 1
        finally:
            server.stop()

    def test_client_operates_through_failover_list(self):
        server = serve_in_thread(order=ORDER)
        try:
            endpoints = [("127.0.0.1", _dead_port()), server.address]
            with RemoteClient(endpoints, user_id="alice",
                              initial_root=server.initial_root_digest(),
                              order=ORDER, connect_timeout=0.5,
                              retry=RetryPolicy(attempts=6, base=0.005,
                                                cap=0.05, seed=3)) as alice:
                for i in range(4):
                    alice.put(b"k%d" % i, b"v%d" % i)
                assert alice.gctr == 4
        finally:
            server.stop()
