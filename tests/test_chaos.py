"""The chaos proxy, and self-healing clients driven through it."""

import socket
import threading

import pytest

from repro.net import (
    ChaosConfig,
    ChaosProxy,
    RemoteClient,
    RetryPolicy,
    serve_in_thread,
    sync_check,
)


@pytest.fixture
def server():
    srv = serve_in_thread(order=4)
    yield srv
    srv.stop()


def _echo_server():
    """A raw TCP echo server for proxy-level tests."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)

    def serve():
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            def pump(conn=conn):
                try:
                    while True:
                        chunk = conn.recv(4096)
                        if not chunk:
                            return
                        conn.sendall(chunk)
                except OSError:
                    pass
                finally:
                    conn.close()
            threading.Thread(target=pump, daemon=True).start()

    threading.Thread(target=serve, daemon=True).start()
    return listener


class TestProxyPlumbing:
    def test_clean_passthrough(self):
        upstream = _echo_server()
        with ChaosProxy(*upstream.getsockname(), seed=1) as proxy:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.sendall(b"hello through the proxy")
                assert sock.recv(64) == b"hello through the proxy"
        assert proxy.faults["connections"] == 1
        assert proxy.faults["drops"] == 0
        upstream.close()

    def test_upstream_down_refuses_cleanly(self):
        # Point at a port nothing listens on.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with ChaosProxy("127.0.0.1", dead_port, seed=1) as proxy:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                assert sock.recv(64) == b""  # severed, no garbage

    def test_forced_drop_severs_connection(self):
        upstream = _echo_server()
        config = ChaosConfig(drop_rate=1.0)  # every chunk dies
        with ChaosProxy(*upstream.getsockname(), seed=3, config=config) as proxy:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.sendall(b"doomed")
                assert sock.recv(64) == b""
        assert proxy.faults["drops"] >= 1
        upstream.close()

    def test_truncation_forwards_a_prefix_at_most(self):
        upstream = _echo_server()
        config = ChaosConfig(truncate_rate=1.0)
        with ChaosProxy(*upstream.getsockname(), seed=4, config=config) as proxy:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.sendall(b"A" * 1000)
                received = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    received += chunk
        assert len(received) < 1000  # never the full message
        assert proxy.faults["truncations"] >= 1
        upstream.close()

    def test_forced_reset_aborts_abruptly(self):
        """reset_rate=1.0: the peer sees at most a prefix and then an
        abrupt failure (RST) or severed stream -- never the full echo."""
        upstream = _echo_server()
        config = ChaosConfig(reset_rate=1.0)
        with ChaosProxy(*upstream.getsockname(), seed=8, config=config) as proxy:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.sendall(b"B" * 1000)
                received = b""
                try:
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        received += chunk
                except OSError:
                    pass  # ECONNRESET: the abrupt abort, as advertised
        assert len(received) < 1000
        assert proxy.faults["resets"] >= 1
        upstream.close()

    def test_reset_rate_is_per_direction(self):
        """reset_rate_s2c only: the client's bytes reach the upstream
        unharmed; the echo coming back is what gets reset."""
        upstream = _echo_server()
        config = ChaosConfig(reset_rate=0.0, reset_rate_s2c=1.0)
        with ChaosProxy(*upstream.getsockname(), seed=9, config=config) as proxy:
            with socket.create_connection(proxy.address, timeout=5) as sock:
                sock.sendall(b"C" * 500)
                received = b""
                try:
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        received += chunk
                except OSError:
                    pass
        assert len(received) < 500
        assert proxy.faults["resets"] >= 1
        # only the server-to-client pump ever rolled a reset
        assert proxy.faults["drops"] == 0
        assert proxy.faults["truncations"] == 0
        upstream.close()

    def test_reset_schedule_is_seeded(self):
        """Same seed, same reset pattern across connections."""
        def run(seed):
            upstream = _echo_server()
            config = ChaosConfig(reset_rate=0.5)
            outcomes = []
            with ChaosProxy(*upstream.getsockname(), seed=seed,
                            config=config) as proxy:
                for _ in range(12):
                    with socket.create_connection(proxy.address,
                                                  timeout=5) as sock:
                        sock.sendall(b"ping")
                        try:
                            outcomes.append(sock.recv(16) == b"ping")
                        except OSError:
                            outcomes.append(False)
            upstream.close()
            return outcomes

        assert run(51) == run(51)
        assert run(51) != run(52)

    def test_seeded_fault_schedule_is_reproducible(self):
        """Same seed, same per-connection chunk pattern -> same faults."""
        def run(seed):
            upstream = _echo_server()
            config = ChaosConfig(drop_rate=0.5)
            outcomes = []
            with ChaosProxy(*upstream.getsockname(), seed=seed,
                            config=config) as proxy:
                for _ in range(12):
                    with socket.create_connection(proxy.address, timeout=5) as sock:
                        sock.sendall(b"ping")
                        outcomes.append(sock.recv(16) == b"ping")
            upstream.close()
            return outcomes

        assert run(42) == run(42)
        assert run(42) != run(43)  # and the seed actually matters


class TestSelfHealingThroughChaos:
    def test_client_survives_injected_drops(self, server):
        host, port = server.address
        genesis = server.initial_root_digest()
        config = ChaosConfig(drop_rate=0.25, immune_chunks=0)
        with ChaosProxy(host, port, seed=11, config=config) as proxy:
            phost, pport = proxy.address
            with RemoteClient(phost, pport, "alice", genesis, order=4,
                              retry=RetryPolicy(attempts=30, base=0.005,
                                                cap=0.05, seed=5)) as alice:
                for i in range(30):
                    alice.put(f"k{i % 4}".encode(), f"v{i}".encode())
                assert alice.operations == 30
                assert sync_check(genesis, {"alice": alice.registers()})
            assert proxy.faults["drops"] >= 1  # chaos actually happened
        # exactly-once despite every retry
        with server.state_lock:
            assert server.state.ctr == 30

    def test_client_survives_connection_resets(self, server):
        """ECONNRESET mid-response is just another transport failure:
        the client reconnects, resends verbatim, and the dedup table
        keeps every acknowledged write exactly-once."""
        host, port = server.address
        genesis = server.initial_root_digest()
        config = ChaosConfig(reset_rate=0.2, immune_chunks=0)
        with ChaosProxy(host, port, seed=17, config=config) as proxy:
            phost, pport = proxy.address
            with RemoteClient(phost, pport, "alice", genesis, order=4,
                              retry=RetryPolicy(attempts=30, base=0.005,
                                                cap=0.05, seed=7)) as alice:
                for i in range(20):
                    alice.put(f"k{i % 3}".encode(), f"v{i}".encode())
                assert alice.gctr == 20
                assert sync_check(genesis, {"alice": alice.registers()})
            assert proxy.faults["resets"] >= 1
        with server.state_lock:
            assert server.state.ctr == 20

    def test_client_survives_truncated_frames(self, server):
        host, port = server.address
        genesis = server.initial_root_digest()
        config = ChaosConfig(truncate_rate=0.2, immune_chunks=0)
        with ChaosProxy(host, port, seed=29, config=config) as proxy:
            phost, pport = proxy.address
            with RemoteClient(phost, pport, "alice", genesis, order=4,
                              retry=RetryPolicy(attempts=30, base=0.005,
                                                cap=0.05, seed=6)) as alice:
                for i in range(20):
                    alice.put(f"k{i % 3}".encode(), f"v{i}".encode())
                assert alice.gctr == 20
            assert proxy.faults["truncations"] >= 1
        with server.state_lock:
            assert server.state.ctr == 20
