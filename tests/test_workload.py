"""Tests for the workload generators."""

from collections import Counter

from repro.mtree.database import ReadQuery, WriteQuery
from repro.simulation.workload import (
    back_to_back_workload,
    bursty_workload,
    epoch_workload,
    partitionable_workload,
    seed_queries,
    sleepy_workload,
    steady_workload,
)

import pytest


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = steady_workload(4, 10, seed=7)
        b = steady_workload(4, 10, seed=7)
        assert a.schedules == b.schedules

    def test_different_seed_differs(self):
        a = steady_workload(4, 10, seed=7)
        b = steady_workload(4, 10, seed=8)
        assert a.schedules != b.schedules


class TestSteady:
    def test_shape(self):
        wl = steady_workload(3, 5)
        assert wl.user_ids == ["user0", "user1", "user2"]
        assert wl.total_operations() == 15
        for intents in wl.schedules.values():
            rounds = [i.round for i in intents]
            assert rounds == sorted(rounds)
            assert rounds[0] >= 1

    def test_write_ratio_extremes(self):
        all_writes = steady_workload(2, 20, write_ratio=1.0)
        for intents in all_writes.schedules.values():
            assert all(isinstance(i.query, WriteQuery) for i in intents)
        all_reads = steady_workload(2, 20, write_ratio=0.0)
        for intents in all_reads.schedules.values():
            assert all(isinstance(i.query, ReadQuery) for i in intents)

    def test_horizon(self):
        wl = steady_workload(2, 5, spacing=3)
        assert wl.horizon() == max(i.round for s in wl.schedules.values() for i in s)


class TestBurstyAndSleepy:
    def test_bursty_has_gaps(self):
        wl = bursty_workload(1, sessions=2, ops_per_session=3, session_gap=100, seed=1)
        rounds = [i.round for i in wl.schedules["user0"]]
        gaps = [b - a for a, b in zip(rounds, rounds[1:])]
        assert max(gaps) >= 100

    def test_sleepy_metadata(self):
        wl = sleepy_workload(4, sleeper_fraction=0.5, seed=2)
        assert wl.metadata["sleepers"] == ["user0", "user1"]
        # sleepers do fewer ops than the awake users
        assert len(wl.schedules["user0"]) < len(wl.schedules["user3"])


class TestPartitionable:
    def test_groups_and_causality(self):
        wl = partitionable_workload(group_a_size=1, group_b_size=2, k=5, seed=3)
        meta = wl.metadata
        assert meta["group_a"] == ["us0"]
        assert meta["group_b"] == ["cn0", "cn1"]
        assert meta["t1_round"] < meta["t2_round"]
        # t1: group A writes the shared key
        t1 = [i for i in wl.schedules["us0"] if i.round == meta["t1_round"]][-1]
        assert isinstance(t1.query, WriteQuery)
        assert t1.query.key == meta["shared_key"]
        # t2: group B reads it (the causal dependency)
        t2 = [i for i in wl.schedules["cn0"] if i.round == meta["t2_round"]][0]
        assert isinstance(t2.query, ReadQuery)
        assert t2.query.key == meta["shared_key"]

    def test_group_a_offline_after_t1(self):
        wl = partitionable_workload(k=5, seed=3)
        meta = wl.metadata
        for user in meta["group_a"]:
            assert all(i.round <= meta["t1_round"] for i in wl.schedules[user])

    def test_k_plus_one_ops_after_t2(self):
        wl = partitionable_workload(k=7, seed=4)
        meta = wl.metadata
        late = [i for i in wl.schedules["cn0"] if i.round > meta["t2_round"]]
        assert len(late) == 7 + 1


class TestEpochWorkload:
    def test_two_ops_every_epoch(self):
        wl = epoch_workload(n_users=3, epoch_length=25, epochs=5, seed=5)
        for user, intents in wl.schedules.items():
            per_epoch = Counter(i.round // 25 for i in intents)
            for epoch in range(5):
                assert per_epoch[epoch] >= 2, (user, epoch)

    def test_rejects_fewer_than_two(self):
        with pytest.raises(ValueError):
            epoch_workload(2, 20, 3, ops_per_epoch=1)

    def test_ops_land_early_enough(self):
        wl = epoch_workload(n_users=2, epoch_length=20, epochs=4, seed=6)
        for intents in wl.schedules.values():
            for intent in intents:
                offset = intent.round % 20
                assert 1 <= offset <= 14


class TestBackToBack:
    def test_single_busy_user(self):
        wl = back_to_back_workload(4, ops_per_user=5)
        assert len(wl.schedules["user0"]) == 5
        assert all(i.round == 1 for i in wl.schedules["user0"])
        for u in range(1, 4):
            assert wl.schedules[f"user{u}"] == []


class TestSeedQueries:
    def test_covers_keyspace(self):
        queries = seed_queries(8)
        assert len(queries) == 8
        assert len({q.key for q in queries}) == 8
        assert all(isinstance(q, WriteQuery) for q in queries)


class TestTimezoneWorkload:
    def test_requires_teams(self):
        from repro.simulation.workload import timezone_workload

        with pytest.raises(ValueError):
            timezone_workload({})

    def test_team_offsets(self):
        from repro.simulation.workload import timezone_workload

        wl = timezone_workload({"cn": 1, "us": 1}, day_length=100, days=1,
                               ops_per_day=4, seed=2)
        cn_rounds = [i.round for i in wl.schedules["cn0"]]
        us_rounds = [i.round for i in wl.schedules["us0"]]
        # cn works the first half-day, us the second (offset by 50)
        assert max(cn_rounds) < 50
        assert min(us_rounds) >= 50

    def test_shared_and_private_keys(self):
        from repro.simulation.workload import timezone_workload

        wl = timezone_workload({"a": 2, "b": 2}, day_length=60, days=3,
                               keyspace=20, shared_fraction=0.2, seed=3)
        shared = wl.metadata["shared_keys"]
        for user, intents in wl.schedules.items():
            for intent in intents:
                index = int(intent.query.key.decode().split("file")[1].split(".")[0])
                if index >= shared:
                    # private keys stay within the user's team slice
                    team = user[0]
                    assert (index < shared + 8) == (team == "a")

    def test_deterministic(self):
        from repro.simulation.workload import timezone_workload

        assert (timezone_workload({"x": 2}, seed=4).schedules
                == timezone_workload({"x": 2}, seed=4).schedules)

    def test_runs_clean_under_protocol2(self):
        from repro.simulation.workload import timezone_workload
        from repro.core import build_simulation

        wl = timezone_workload({"us": 2, "cn": 2}, day_length=80, days=2, seed=5)
        report = build_simulation("protocol2", wl, k=5, seed=5).execute()
        assert not report.detected


class TestScanRatio:
    def test_scans_generated(self):
        from repro.mtree.database import RangeQuery
        from repro.simulation.workload import steady_workload

        wl = steady_workload(3, 30, write_ratio=0.3, scan_ratio=0.3, seed=11)
        scans = [i for s in wl.schedules.values() for i in s
                 if isinstance(i.query, RangeQuery)]
        assert scans
        for intent in scans:
            assert intent.query.low <= intent.query.high

    def test_scans_verified_through_protocols(self):
        from repro.core import build_simulation
        from repro.simulation.workload import steady_workload

        wl = steady_workload(3, 12, write_ratio=0.3, scan_ratio=0.4,
                             keyspace=12, seed=12)
        for protocol in ("protocol1", "protocol2"):
            report = build_simulation(protocol, wl, k=5, seed=12).execute()
            assert not report.detected, (protocol, report.alarms)
            assert sum(report.operations_completed.values()) == 36

    def test_stale_scan_detected(self):
        """A fork makes range scans return stale row sets; the register
        chain must still catch it."""
        from repro.core import build_simulation
        from repro.server.attacks import ForkAttack
        from repro.simulation.workload import steady_workload

        wl = steady_workload(3, 16, write_ratio=0.5, scan_ratio=0.3,
                             keyspace=8, seed=13)
        attack = ForkAttack(victims=["user1"], fork_round=wl.horizon() // 2)
        report = build_simulation("protocol2", wl, k=4, seed=13,
                                  attack=attack).execute()
        if report.first_deviation_round is not None:
            assert report.detected
