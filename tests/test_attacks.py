"""The detection matrix: every attack against every applicable protocol.

The paper's soundness claims, empirically: Protocols I/II/III detect
every attack class (with their respective bounds), the baselines show
the expected gaps, and nobody ever raises a false alarm on an honest
run."""

import pytest

from helpers import run_scenario
from repro.server.attacks import (
    Attack,
    CompositeAttack,
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    HonestBehavior,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)
from repro.simulation.workload import epoch_workload, steady_workload

EPOCH = 30


def workload_for(protocol, seed):
    if protocol == "protocol3":
        return epoch_workload(n_users=3, epoch_length=EPOCH, epochs=8,
                              keyspace=6, seed=seed)
    if protocol == "protocol1":
        # blocking handshake halves throughput; keep the server unsaturated
        return steady_workload(3, 10, spacing=8, keyspace=6, write_ratio=0.6, seed=seed)
    return steady_workload(3, 14, spacing=4, keyspace=6, write_ratio=0.6, seed=seed)


def run(protocol, attack_factory, seed=7, trigger_fraction=0.5):
    """attack_factory gets the attack-trigger round (mid-workload)."""
    workload = workload_for(protocol, seed)
    trigger = int(workload.horizon() * trigger_fraction)
    attack = attack_factory(trigger) if callable(attack_factory) else attack_factory
    return run_scenario(
        protocol,
        workload,
        attack=attack,
        k=5,
        epoch_length=EPOCH,
        seed=seed,
    )


VERIFYING_PROTOCOLS = ["protocol1", "protocol2", "protocol3"]


class TestHonestRunsNeverAlarm:
    @pytest.mark.parametrize("protocol", VERIFYING_PROTOCOLS + ["tokenpass", "naive"])
    def test_no_false_alarms(self, protocol):
        report = run(protocol, HonestBehavior())
        assert not report.detected, report.alarms
        assert report.first_deviation_round is None


class TestForkDetection:
    @pytest.mark.parametrize("protocol", VERIFYING_PROTOCOLS)
    def test_fork_detected(self, protocol):
        report = run(protocol, lambda r: ForkAttack(victims=["user1"], fork_round=r))
        assert report.detected, protocol
        assert not report.false_alarm


class TestDropCommit:
    @pytest.mark.parametrize("protocol", ["protocol2", "protocol3"])
    def test_detected(self, protocol):
        report = run(protocol, lambda r: DropCommitAttack(victim="user1", drop_round=r))
        if report.first_deviation_round is None:
            pytest.skip("victim issued no update after the trigger")
        assert report.detected, protocol


class TestStaleRootReplay:
    @pytest.mark.parametrize("protocol", VERIFYING_PROTOCOLS)
    def test_detected(self, protocol):
        report = run(protocol, lambda r: StaleRootReplayAttack(victim="user2", freeze_round=r))
        assert report.detected, protocol
        assert not report.false_alarm


class TestTamper:
    @pytest.mark.parametrize("protocol", VERIFYING_PROTOCOLS)
    @pytest.mark.parametrize("forge_proof", [False, True])
    def test_detected(self, protocol, forge_proof):
        # Early trigger: Protocol III's audit lags the fault by up to two
        # epochs, so the fault must land well inside the workload.
        report = run(
            protocol,
            lambda r: TamperValueAttack(victim="user0", tamper_round=r, forge_proof=forge_proof),
            trigger_fraction=0.2,
        )
        if report.first_deviation_round is None:
            pytest.skip("victim issued no read after the trigger")
        assert report.detected, (protocol, forge_proof)

    def test_unforged_tamper_is_detected_instantly(self):
        report = run("protocol2", lambda r: TamperValueAttack(victim="user0", tamper_round=10, forge_proof=False))
        assert report.detected
        assert report.detection_delay_rounds() <= 3


class TestCounterReplay:
    @pytest.mark.parametrize("protocol", ["protocol2", "protocol3"])
    def test_detected_by_regression_check(self, protocol):
        report = run(protocol, lambda r: CounterReplayAttack(victim="user0", replay_round=r))
        assert report.detected, protocol
        assert "regressed" in next(iter(report.alarms.values())).reason


class TestSignatureForge:
    def test_protocol1_detects(self):
        report = run("protocol1", lambda r: SignatureForgeAttack(forge_round=r))
        assert report.detected
        assert "signature" in next(iter(report.alarms.values())).reason


class _TaggingAttack(Attack):
    """Test double: appends its tag to a response extra and logs calls,
    so composite ordering is observable."""

    def __init__(self, tag, log, own_state=None, deviate_at=None):
        super().__init__()
        self.tag = tag
        self.log = log
        self.own_state = own_state
        self.deviate_at = deviate_at

    def select_state(self, user_id, round_no, server):
        if self.own_state is not None:
            return self.own_state
        return server.states["main"]

    def mutate_response(self, user_id, request, response, state, round_no):
        from repro.protocols.base import Response

        self.log.append(self.tag)
        if self.deviate_at is not None and round_no >= self.deviate_at:
            self._mark_deviation(round_no)
        extras = dict(response.extras)
        extras["trace"] = extras.get("trace", "") + self.tag
        return Response(result=response.result, extras=extras)


class TestCompositeAttack:
    """Ordering semantics and first_deviation_round propagation."""

    @staticmethod
    def _server_stub():
        from types import SimpleNamespace

        return SimpleNamespace(states={"main": object()})

    @staticmethod
    def _response():
        from repro.protocols.base import Response

        return Response(result=None, extras={})

    def test_mutations_apply_in_list_order(self):
        log = []
        composite = CompositeAttack([_TaggingAttack("a", log),
                                     _TaggingAttack("b", log),
                                     _TaggingAttack("c", log)])
        server = self._server_stub()
        mutated = composite.mutate_response(
            "u", None, self._response(), server.states["main"], 5)
        assert log == ["a", "b", "c"]
        # later components see (and build on) earlier components' output
        assert mutated.extras["trace"] == "abc"

    def test_select_state_first_non_main_wins(self):
        server = self._server_stub()
        fork_a, fork_b = object(), object()
        log = []
        composite = CompositeAttack([
            _TaggingAttack("m", log),                       # stays on main
            _TaggingAttack("a", log, own_state=fork_a),     # first divergence
            _TaggingAttack("b", log, own_state=fork_b),     # shadowed
        ])
        assert composite.select_state("u", 1, server) is fork_a

    def test_select_state_defaults_to_main(self):
        server = self._server_stub()
        log = []
        composite = CompositeAttack([_TaggingAttack("m", log),
                                     _TaggingAttack("n", log)])
        assert composite.select_state("u", 1, server) is server.states["main"]

    def test_first_deviation_round_is_min_over_components(self):
        log = []
        late = _TaggingAttack("l", log, deviate_at=9)
        early = _TaggingAttack("e", log, deviate_at=4)
        composite = CompositeAttack([late, early])
        server = self._server_stub()
        assert composite.first_deviation_round is None
        for round_no in range(1, 12):
            composite.mutate_response("u", None, self._response(),
                                      server.states["main"], round_no)
        assert late.first_deviation_round == 9
        assert early.first_deviation_round == 4
        assert composite.first_deviation_round == 4

    def test_own_deviation_round_merges_with_components(self):
        log = []
        component = _TaggingAttack("c", log, deviate_at=7)
        composite = CompositeAttack([component])
        composite._mark_deviation(3)  # the composite's own deviation
        server = self._server_stub()
        for round_no in range(1, 9):
            composite.mutate_response("u", None, self._response(),
                                      server.states["main"], round_no)
        assert composite.first_deviation_round == 3
        # the setter routes to the composite's own slot, not a component
        assert component.first_deviation_round == 7

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CompositeAttack([])

    def test_composite_detected_end_to_end(self):
        """A fork + tamper composite is still caught by Protocol II, and
        the reported deviation onset is the earliest component's."""
        report = run("protocol2", lambda r: CompositeAttack([
            ForkAttack(victims=["user1"], fork_round=r),
            TamperValueAttack(victim="user0", tamper_round=r + 5),
        ]))
        assert report.detected
        assert not report.false_alarm


class TestNaiveBaselineMissesEverything:
    @pytest.mark.parametrize("attack_factory", [
        lambda: ForkAttack(victims=["user1"], fork_round=20),
        lambda: StaleRootReplayAttack(victim="user2", freeze_round=20),
        lambda: TamperValueAttack(victim="user0", tamper_round=20),
        lambda: DropCommitAttack(victim="user1", drop_round=20),
    ])
    def test_undetected(self, attack_factory):
        workload = steady_workload(3, 16, spacing=3, keyspace=4, write_ratio=0.6, seed=9)
        report = run_scenario("naive", workload, attack=attack_factory(), seed=9)
        assert not report.detected


class TestDetectionBounds:
    def test_protocol2_k_bound_holds_across_seeds(self):
        for seed in range(5):
            workload = steady_workload(3, 16, spacing=4, keyspace=6,
                                       write_ratio=0.6, seed=seed)
            attack = ForkAttack(victims=["user1"], fork_round=30)
            report = run_scenario("protocol2", workload, attack=attack, k=4, seed=seed)
            if report.first_deviation_round is None:
                continue
            assert report.detected, seed
            assert report.max_ops_after_deviation() <= 4, seed

    def test_protocol3_two_epoch_bound_across_seeds(self):
        for seed in range(3):
            workload = epoch_workload(n_users=3, epoch_length=EPOCH, epochs=9,
                                      keyspace=6, seed=seed)
            attack = ForkAttack(victims=["user1"], fork_round=int(EPOCH * 2.4))
            report = run_scenario("protocol3", workload, attack=attack,
                                  epoch_length=EPOCH, seed=seed)
            if report.first_deviation_round is None:
                continue
            assert report.detected, seed
            delay = report.detection_round - report.first_deviation_round
            assert delay <= 2 * EPOCH + EPOCH // 2, (seed, delay)
