"""Structural tests and model-based property tests for the B+-tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mtree.bplus import BPlusTree


def fill(tree, count, prefix=b"k"):
    for i in range(count):
        tree.insert(prefix + f"{i:04d}".encode(), f"v{i}".encode())


class TestBasics:
    def test_empty(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.get(b"x") is None
        assert b"x" not in tree
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_order_minimum(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_get(self):
        tree = BPlusTree(order=4)
        assert tree.insert(b"a", b"1") is True
        assert tree.get(b"a") == b"1"
        assert b"a" in tree

    def test_overwrite_returns_false(self):
        tree = BPlusTree(order=4)
        assert tree.insert(b"a", b"1") is True
        assert tree.insert(b"a", b"2") is False
        assert tree.get(b"a") == b"2"
        assert len(tree) == 1

    def test_type_checks(self):
        tree = BPlusTree(order=4)
        with pytest.raises(TypeError):
            tree.insert("str", b"v")
        with pytest.raises(TypeError):
            tree.insert(b"k", "str")
        with pytest.raises(TypeError):
            tree.delete("str")

    def test_delete_missing(self):
        tree = BPlusTree(order=4)
        assert tree.delete(b"nope") is False

    def test_delete_present(self):
        tree = BPlusTree(order=4)
        tree.insert(b"a", b"1")
        assert tree.delete(b"a") is True
        assert tree.get(b"a") is None
        assert len(tree) == 0

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in [b"m", b"a", b"z", b"c", b"q"]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [b"a", b"c", b"m", b"q", b"z"]

    def test_height_grows(self):
        tree = BPlusTree(order=4)
        assert tree.height() == 1
        fill(tree, 64)
        assert tree.height() >= 3
        tree.check_invariants()

    def test_root_collapse_on_deletion(self):
        tree = BPlusTree(order=4)
        fill(tree, 40)
        for i in range(39):
            assert tree.delete(b"k" + f"{i:04d}".encode())
            tree.check_invariants()
        assert tree.height() == 1
        assert len(tree) == 1


class TestRange:
    def test_range_inclusive(self):
        tree = BPlusTree(order=4)
        fill(tree, 20)
        result = list(tree.range(b"k0005", b"k0010"))
        assert [k for k, _ in result] == [b"k" + f"{i:04d}".encode() for i in range(5, 11)]

    def test_range_empty_when_inverted(self):
        tree = BPlusTree(order=4)
        fill(tree, 5)
        assert list(tree.range(b"k0004", b"k0001")) == []

    def test_range_outside_keyspace(self):
        tree = BPlusTree(order=4)
        fill(tree, 5)
        assert list(tree.range(b"z", b"zz")) == []

    def test_range_whole_tree(self):
        tree = BPlusTree(order=3)
        fill(tree, 30)
        assert len(list(tree.range(b"", b"\xff"))) == 30


@st.composite
def operation_sequences(draw):
    keys = st.integers(min_value=0, max_value=60).map(lambda i: f"key{i:03d}".encode())
    ops = st.one_of(
        st.tuples(st.just("insert"), keys, st.binary(min_size=0, max_size=6)),
        st.tuples(st.just("delete"), keys, st.just(b"")),
    )
    return draw(st.lists(ops, max_size=120))


class TestModelBased:
    @settings(max_examples=60, deadline=None)
    @given(order=st.integers(min_value=3, max_value=9), ops=operation_sequences())
    def test_matches_dict_model(self, order, ops):
        tree = BPlusTree(order=order)
        model = {}
        for kind, key, value in ops:
            if kind == "insert":
                tree.insert(key, value)
                model[key] = value
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        tree.check_invariants()
        assert dict(tree.items()) == model
        assert len(tree) == len(model)
        for key, value in model.items():
            assert tree.get(key) == value

    @settings(max_examples=30, deadline=None)
    @given(ops=operation_sequences())
    def test_invariants_hold_after_every_op(self, ops):
        tree = BPlusTree(order=3)  # smallest order stresses rebalancing most
        for kind, key, value in ops:
            if kind == "insert":
                tree.insert(key, value)
            else:
                tree.delete(key)
            tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=80),
        low=st.integers(min_value=0, max_value=90),
        span=st.integers(min_value=0, max_value=40),
    )
    def test_range_matches_model(self, n, low, span):
        tree = BPlusTree(order=4)
        model = {}
        for i in range(n):
            key = f"key{(i * 7) % 97:03d}".encode()
            tree.insert(key, str(i).encode())
            model[key] = str(i).encode()
        lo = f"key{low:03d}".encode()
        hi = f"key{low + span:03d}".encode()
        expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
        assert list(tree.range(lo, hi)) == expected
