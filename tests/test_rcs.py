"""Tests for the RCS-style revision store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.rcs import RcsError, RevisionStore

documents = st.lists(st.sampled_from(["alpha", "beta", "gamma", "", "  indented"]), max_size=12)


def build(revisions):
    store = RevisionStore()
    for t, lines in enumerate(revisions):
        store.commit(list(lines), author=f"u{t % 3}", log_message=f"r{t}", timestamp=t)
    return store


class TestCommitCheckout:
    def test_empty_store(self):
        store = RevisionStore()
        assert len(store) == 0
        assert store.head_number is None
        with pytest.raises(RcsError):
            store.checkout()

    def test_head_checkout(self):
        store = build([["a"], ["a", "b"]])
        assert store.checkout() == ["a", "b"]
        assert store.head_number == "1.2"

    def test_every_revision_reachable(self):
        revisions = [["a"], ["a", "b"], ["b"], [], ["x", "y", "z"]]
        store = build(revisions)
        for index, expected in enumerate(revisions):
            assert store.checkout(f"1.{index + 1}") == expected

    def test_unknown_revision(self):
        store = build([["a"]])
        with pytest.raises(RcsError):
            store.checkout("1.9")

    def test_checkout_copy_is_private(self):
        store = build([["a"]])
        lines = store.checkout()
        lines.append("mutated")
        assert store.checkout() == ["a"]

    def test_newline_in_line_rejected(self):
        store = RevisionStore()
        with pytest.raises(ValueError):
            store.commit(["bad\nline"], "u", "", 0)

    def test_timestamps_must_not_decrease(self):
        store = build([["a"]])
        with pytest.raises(RcsError):
            store.commit(["b"], "u", "", -5)

    def test_log_metadata(self):
        store = build([["a"], ["b"]])
        log = store.log()
        assert [r.number for r in log] == ["1.1", "1.2"]
        assert log[0].author == "u0"
        assert log[1].log_message == "r1"
        assert store.revision("1.2").timestamp == 1

    def test_diff_between(self):
        store = build([["a", "b"], ["a", "c"]])
        delta = store.diff_between("1.1", "1.2")
        assert delta[0].deleted == ("b",)
        assert delta[0].inserted == ("c",)


class TestDeadFiles:
    def test_remove_and_resurrect(self):
        store = build([["content"]])
        store.remove("u", "gone", 5)
        assert store.is_dead
        assert store.checkout() == []
        store.resurrect(["back"], "u", "revived", 6)
        assert not store.is_dead
        assert store.checkout() == ["back"]
        # history is intact
        assert store.checkout("1.1") == ["content"]

    def test_double_remove_rejected(self):
        store = build([["x"]])
        store.remove("u", "", 1)
        with pytest.raises(RcsError):
            store.remove("u", "", 2)

    def test_resurrect_live_rejected(self):
        store = build([["x"]])
        with pytest.raises(RcsError):
            store.resurrect(["y"], "u", "", 1)


class TestSerialization:
    def test_roundtrip_simple(self):
        store = build([["a"], ["a", "b"], ["c"]])
        clone = RevisionStore.deserialize(store.serialize())
        assert clone.serialize() == store.serialize()
        for index in range(3):
            number = f"1.{index + 1}"
            assert clone.checkout(number) == store.checkout(number)

    def test_metadata_preserved(self):
        store = RevisionStore()
        store.commit(["x"], author="name with spaces", log_message="log\twith\ttabs", timestamp=9)
        clone = RevisionStore.deserialize(store.serialize())
        assert clone.log()[0].author == "name with spaces"
        assert clone.log()[0].log_message == "log\twith\ttabs"

    def test_deterministic(self):
        a = build([["x"], ["y"]])
        b = build([["x"], ["y"]])
        assert a.serialize() == b.serialize()

    def test_bad_magic(self):
        with pytest.raises(RcsError):
            RevisionStore.deserialize(b"not an rcs store\n")

    def test_truncated(self):
        blob = build([["a"], ["b"]]).serialize()
        with pytest.raises(RcsError):
            RevisionStore.deserialize(blob[: len(blob) // 2])

    def test_trailing_garbage(self):
        blob = build([["a"]]).serialize()
        with pytest.raises(RcsError):
            RevisionStore.deserialize(blob + b"extra\n")

    def test_bad_base64(self):
        blob = build([["a"]]).serialize().decode()
        # replace author field with invalid base64
        lines = blob.split("\n")
        for i, line in enumerate(lines):
            if line.startswith("rev "):
                parts = line.split(" ")
                parts[2] = "%%%"
                lines[i] = " ".join(parts)
                break
        with pytest.raises(RcsError):
            RevisionStore.deserialize("\n".join(lines).encode())

    @settings(max_examples=60, deadline=None)
    @given(st.lists(documents, min_size=1, max_size=8))
    def test_roundtrip_property(self, revisions):
        store = build(revisions)
        clone = RevisionStore.deserialize(store.serialize())
        assert clone.serialize() == store.serialize()
        for index, expected in enumerate(revisions):
            assert clone.checkout(f"1.{index + 1}") == list(expected)

    def test_storage_is_delta_compressed(self):
        """Reverse deltas: 50 revisions of a 200-line file with one-line
        changes must serialise far smaller than 50 full copies."""
        base = [f"line {i}" for i in range(200)]
        store = RevisionStore()
        full_size = 0
        for revision in range(50):
            doc = list(base)
            doc[revision % 200] = f"edited in r{revision}"
            store.commit(doc, "u", "", revision)
            full_size += sum(len(line) + 1 for line in doc)
        assert len(store.serialize()) < full_size / 10
