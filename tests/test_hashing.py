"""Unit and property tests for the hashing layer."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    Digest,
    hash_bytes,
    hash_epoch_snapshot,
    hash_internal_node,
    hash_leaf,
    hash_leaf_node,
    hash_node,
    hash_state,
    hash_tagged_state,
    xor_all,
)

digests = st.binary(min_size=DIGEST_SIZE, max_size=DIGEST_SIZE).map(Digest)


class TestDigest:
    def test_requires_bytes(self):
        with pytest.raises(TypeError):
            Digest("not bytes")

    def test_requires_exact_length(self):
        with pytest.raises(ValueError):
            Digest(b"\x00" * 31)

    def test_zero_is_falsy(self):
        assert not Digest.zero()

    def test_nonzero_is_truthy(self):
        assert hash_bytes(b"x")

    def test_hex_roundtrip(self):
        digest = hash_bytes(b"roundtrip")
        assert Digest.from_hex(digest.hex()) == digest

    def test_short_is_prefix_of_hex(self):
        digest = hash_bytes(b"prefix")
        assert digest.hex().startswith(digest.short())

    def test_repr_contains_short(self):
        digest = hash_bytes(b"shown")
        assert digest.short() in repr(digest)

    def test_equality_and_hash(self):
        a = hash_bytes(b"same")
        b = hash_bytes(b"same")
        assert a == b
        assert hash(a) == hash(b)
        assert a != hash_bytes(b"different")

    def test_eq_other_type_is_not_implemented(self):
        assert (hash_bytes(b"x") == 42) is False

    @given(digests, digests)
    def test_xor_commutative(self, a, b):
        assert a ^ b == b ^ a

    @given(digests, digests, digests)
    def test_xor_associative(self, a, b, c):
        assert (a ^ b) ^ c == a ^ (b ^ c)

    @given(digests)
    def test_xor_identity(self, a):
        assert a ^ Digest.zero() == a

    @given(digests)
    def test_xor_self_inverse(self, a):
        assert a ^ a == Digest.zero()

    @given(st.lists(digests, max_size=8))
    def test_xor_all_folds(self, items):
        total = Digest.zero()
        for item in items:
            total = total ^ item
        assert xor_all(items) == total

    def test_xor_all_empty_is_zero(self):
        assert xor_all([]) == Digest.zero()


class TestDomainSeparation:
    def test_leaf_vs_raw(self):
        # hash_leaf(k, v) must differ from any raw hash of a concatenation.
        assert hash_leaf(b"k", b"v") != hash_bytes(b"kv")

    def test_leaf_injective_on_boundaries(self):
        assert hash_leaf(b"ab", b"c") != hash_leaf(b"a", b"bc")

    def test_state_vs_tagged_state(self):
        root = hash_bytes(b"root")
        assert hash_state(root, 3) != hash_tagged_state(root, 3, "")

    def test_tagged_state_depends_on_user(self):
        root = hash_bytes(b"root")
        assert hash_tagged_state(root, 3, "alice") != hash_tagged_state(root, 3, "bob")

    def test_tagged_state_depends_on_counter(self):
        root = hash_bytes(b"root")
        assert hash_tagged_state(root, 3, "alice") != hash_tagged_state(root, 4, "alice")

    def test_state_rejects_negative_counter(self):
        with pytest.raises(ValueError):
            hash_state(hash_bytes(b"r"), -1)

    def test_tagged_state_rejects_negative_counter(self):
        with pytest.raises(ValueError):
            hash_tagged_state(hash_bytes(b"r"), -1, "u")

    def test_epoch_snapshot_depends_on_every_field(self):
        sigma, last = hash_bytes(b"s"), hash_bytes(b"l")
        base = hash_epoch_snapshot(sigma, last, 2, "u")
        assert base != hash_epoch_snapshot(last, sigma, 2, "u")
        assert base != hash_epoch_snapshot(sigma, last, 3, "u")
        assert base != hash_epoch_snapshot(sigma, last, 2, "v")

    def test_epoch_snapshot_rejects_negative_epoch(self):
        with pytest.raises(ValueError):
            hash_epoch_snapshot(hash_bytes(b"a"), hash_bytes(b"b"), -1, "u")


class TestNodeHashes:
    def test_hash_node_rejects_empty(self):
        with pytest.raises(ValueError):
            hash_node([])

    def test_leaf_node_empty_is_stable(self):
        assert hash_leaf_node([]) == hash_leaf_node([])

    def test_leaf_node_empty_differs_from_raw(self):
        assert hash_leaf_node([]) != hash_bytes(b"")

    def test_leaf_node_order_sensitive(self):
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        assert hash_leaf_node([a, b]) != hash_leaf_node([b, a])

    def test_internal_node_commits_keys(self):
        children = [hash_bytes(b"c1"), hash_bytes(b"c2")]
        assert hash_internal_node([b"k1"], children) != hash_internal_node([b"k2"], children)

    def test_internal_node_arity_check(self):
        with pytest.raises(ValueError):
            hash_internal_node([b"k1", b"k2"], [hash_bytes(b"c")])

    def test_internal_node_rejects_empty(self):
        with pytest.raises(ValueError):
            hash_internal_node([], [])

    def test_internal_vs_leaf_node_domains(self):
        child = hash_bytes(b"x")
        assert hash_internal_node([], [child]) != hash_leaf_node([child])

    @given(st.lists(st.binary(max_size=6), min_size=1, max_size=5, unique=True))
    def test_leaf_node_deterministic(self, values):
        entry_digests = [hash_leaf(v, v) for v in values]
        assert hash_leaf_node(entry_digests) == hash_leaf_node(list(entry_digests))
