"""The page-store layer: transactional commit, checksums, generations.

Both implementations (dict-backed reference and sqlite disk engine)
must satisfy the same contract, so everything here is parametrised over
the two.  The checksum tests are the important half: a page that rots
must raise :class:`CorruptPageError` -- never yield wrong bytes --
because the recovery layer above decides quarantine-or-trust on exactly
that signal.
"""

import os
import sqlite3

import pytest

from repro.storage.faults import FaultyIO
from repro.storage.pagestore import (
    CorruptPageError,
    MemoryPageStore,
    SqlitePageStore,
    StorageError,
    open_page_store,
    page_checksum,
)


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryPageStore()
    else:
        store = open_page_store(str(tmp_path), fsync=False)
        yield store
        store.close()


def _fill(store, shard=0, gen=0, pages=3):
    store.begin()
    for seq in range(pages):
        store.write_page("nodes", shard, gen, seq, b"page-%d" % seq)
    store.commit()


class TestContract:
    def test_commit_makes_pages_visible(self, store):
        _fill(store)
        assert list(store.read_pages("nodes", 0, 0)) == \
            [b"page-0", b"page-1", b"page-2"]
        assert store.page_count("nodes", 0, 0) == 3

    def test_rollback_discards_everything(self, store):
        store.begin()
        store.write_page("nodes", 0, 0, 0, b"doomed")
        store.put_meta("key", b"doomed")
        store.rollback()
        assert list(store.read_pages("nodes", 0, 0)) == []
        assert store.get_meta("key") is None

    def test_uncommitted_writes_invisible_after_close(self, tmp_path):
        store = open_page_store(str(tmp_path), fsync=False)
        _fill(store)
        store.begin()
        store.write_page("nodes", 0, 0, 9, b"volatile")
        store.close()  # crash stand-in: sqlite rolls the open txn back
        fresh = open_page_store(str(tmp_path), fsync=False)
        assert fresh.page_count("nodes", 0, 0) == 3
        fresh.close()

    def test_meta_roundtrip(self, store):
        store.begin()
        store.put_meta("checkpoint", b"\x00\x01binary")
        store.commit()
        assert store.get_meta("checkpoint") == b"\x00\x01binary"
        assert store.get_meta("absent") is None

    def test_generations_and_drop(self, store):
        _fill(store, gen=0)
        _fill(store, gen=2)
        assert store.generations(0) == [0, 2]
        store.begin()
        store.drop_generation(0, 0)
        store.commit()
        assert store.generations(0) == [2]
        assert list(store.read_pages("nodes", 0, 0)) == []

    def test_streams_are_independent(self, store):
        store.begin()
        store.write_page("nodes", 0, 0, 0, b"structure")
        store.write_page("entries", 0, 0, 0, b"data")
        store.write_page("nodes", 1, 0, 0, b"other-shard")
        store.commit()
        assert list(store.read_pages("nodes", 0, 0)) == [b"structure"]
        assert list(store.read_pages("entries", 0, 0)) == [b"data"]
        assert list(store.read_pages("nodes", 1, 0)) == [b"other-shard"]

    def test_write_outside_transaction_rejected(self, store):
        with pytest.raises(StorageError):
            store.write_page("nodes", 0, 0, 0, b"x")
        # MemoryPageStore reports it at commit-less stage time too
        with pytest.raises(StorageError):
            store.put_meta("k", b"v")


class TestChecksums:
    def test_checksum_binds_full_key(self):
        base = page_checksum("nodes", 0, 1, 2, b"payload")
        assert page_checksum("entries", 0, 1, 2, b"payload") != base
        assert page_checksum("nodes", 3, 1, 2, b"payload") != base
        assert page_checksum("nodes", 0, 9, 2, b"payload") != base
        assert page_checksum("nodes", 0, 1, 5, b"payload") != base
        assert page_checksum("nodes", 0, 1, 2, b"payloae") != base

    def test_bitrot_detected_on_read(self, tmp_path):
        io = FaultyIO(seed=3, bitrot_page=("nodes", 0))
        store = open_page_store(str(tmp_path), fsync=False, io=io)
        _fill(store)
        with pytest.raises(CorruptPageError) as excinfo:
            list(store.read_pages("nodes", 0, 0))
        assert excinfo.value.kind == "nodes"
        assert excinfo.value.shard == 0
        store.close()

    def test_page_rotted_on_disk_detected(self, tmp_path):
        """Rot the stored bytes directly (no shim): the checksum still
        catches it -- detection does not depend on the fault injector."""
        store = open_page_store(str(tmp_path), fsync=False)
        _fill(store)
        store.close()
        db = os.path.join(str(tmp_path), SqlitePageStore.FILE)
        conn = sqlite3.connect(db)
        conn.execute("UPDATE pages SET blob=? WHERE seq=1", (b"page-X",))
        conn.commit()
        conn.close()
        fresh = open_page_store(str(tmp_path), fsync=False)
        with pytest.raises(CorruptPageError):
            list(fresh.read_pages("nodes", 0, 0))
        fresh.close()

    def test_memory_store_bitrot_detected(self):
        io = FaultyIO(seed=5, bitrot_page=("any", -1))
        store = MemoryPageStore(io=io)
        _fill(store)
        with pytest.raises(CorruptPageError):
            list(store.read_pages("nodes", 0, 0))


class TestCommitFaults:
    def test_enospc_at_commit_raises_storage_error(self, tmp_path):
        io = FaultyIO(enospc_after_bytes=0)
        store = open_page_store(str(tmp_path), fsync=False, io=io)
        store.begin()
        with pytest.raises(StorageError, match="space"):
            store.write_page("nodes", 0, 0, 0, b"x")
        store.rollback()
        store.close()

    def test_failed_commit_rolls_back(self, tmp_path):
        # The gate is consulted at every page write and at the commit:
        # occurrence 2 is the COMMIT of a one-page transaction.
        io = FaultyIO(fail_commit=2)
        store = open_page_store(str(tmp_path), fsync=False, io=io)
        store.begin()
        store.write_page("nodes", 0, 0, 0, b"x")
        with pytest.raises(StorageError, match="commit failed"):
            store.commit()
        # The failed transaction left nothing behind and the store is
        # reusable: the server retries the checkpoint later.
        assert store.page_count("nodes", 0, 0) == 0
        _fill(store)
        assert store.page_count("nodes", 0, 0) == 3
        store.close()

    def test_readonly_store_reads_committed_state(self, tmp_path):
        store = open_page_store(str(tmp_path), fsync=False)
        _fill(store)
        store.begin()
        store.put_meta("m", b"v")
        store.commit()
        store.close()
        ro = open_page_store(str(tmp_path), readonly=True)
        assert ro.page_count("nodes", 0, 0) == 3
        assert ro.get_meta("m") == b"v"
        ro.close()
