"""Graceful shutdown: quiesce, flush, final snapshot -- on both cores.

``graceful_stop`` is the operator path: unlike the crash-equivalent
``stop(snapshot=False)`` it drains in-flight work, flushes any attached
replicator, fsyncs the WAL and writes a final snapshot, so the next
start replays zero records.  ``repro serve`` routes SIGTERM/SIGINT
through it (tested against a real subprocess).
"""

import os
import signal
import socket
import subprocess
import sys
import time

from repro.net import (
    RemoteClient,
    Replicator,
    WitnessProtocol,
    make_replica_keys,
    serve_async_in_thread,
    serve_in_thread,
)
from repro.net.replication import META_DEPOSITS, witness_name

ORDER = 4
KEYS = make_replica_keys(1, 77)

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


def _run_ops(server, n=5):
    host, port = server.address
    with RemoteClient(host, port, "alice", server.initial_root_digest(),
                      order=ORDER) as alice:
        for i in range(n):
            alice.put(b"k%d" % i, b"v%d" % i)


class TestGracefulStopThreaded:
    def test_final_snapshot_means_zero_replay(self, tmp_path):
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=ORDER, data_dir=data_dir,
                                 snapshot_every=10_000)
        _run_ops(server)
        with server.state_lock:
            root = server.state.database.root_digest()
        assert server.graceful_stop()

        restarted = serve_in_thread(order=ORDER, data_dir=data_dir,
                                    snapshot_every=10_000)
        try:
            assert restarted.replayed_records == 0  # snapshot caught up
            with restarted.state_lock:
                assert restarted.state.ctr == 5
                assert restarted.state.database.root_digest() == root
        finally:
            restarted.stop()

    def test_flushes_replicator_before_stopping(self, tmp_path):
        witness = serve_in_thread(
            order=ORDER, protocol=WitnessProtocol(
                witness_name(0), KEYS.witnesses[0], KEYS.verifier))
        replicator = Replicator(KEYS.primary, witnesses=[witness.address])
        server = serve_in_thread(order=ORDER, replicator=replicator)
        try:
            _run_ops(server)
            assert server.graceful_stop()
            with witness.state_lock:
                banked = witness.state.meta[META_DEPOSITS]
                assert sorted(banked) == [1, 2, 3, 4, 5]
        finally:
            witness.stop()


class TestGracefulStopAsync:
    def test_final_snapshot_means_zero_replay(self, tmp_path):
        data_dir = str(tmp_path / "aserver")
        handle = serve_async_in_thread(order=ORDER, data_dir=data_dir,
                                       snapshot_every=10_000)
        _run_ops(handle)
        root = handle.read_state(lambda state: state.database.root_digest())
        assert handle.graceful_stop()

        restarted = serve_async_in_thread(order=ORDER, data_dir=data_dir,
                                          snapshot_every=10_000)
        try:
            assert restarted.replayed_records == 0
            view = restarted.read_state(
                lambda state: (state.ctr, state.database.root_digest()))
            assert view == (5, root)
        finally:
            restarted.stop()


class TestServeCommandSignals:
    def _wait_for_port(self, port, deadline=15.0):
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            try:
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=1.0):
                    return
            except OSError:
                time.sleep(0.05)
        raise AssertionError(f"server never listened on {port}")

    def _free_port(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_sigterm_persists_and_exits_cleanly(self, tmp_path):
        """``repro serve`` under SIGTERM: graceful shutdown, final
        snapshot, and the committed data survives into db.snapshot."""
        repo = str(tmp_path / "repo")
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        assert subprocess.run(
            [sys.executable, "-m", "repro", "init", repo],
            env=env, capture_output=True).returncode == 0
        port = self._free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "-R", repo, "serve",
             "-p", str(port), "--durable"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            self._wait_for_port(port)
            commit = subprocess.run(
                [sys.executable, "-m", "repro", "-R", str(tmp_path / "ws"),
                 "--remote", f"127.0.0.1:{port}", "-a", "ana",
                 "commit", "hello.txt", "-m", "hi"],
                env=env, input="hello graceful world\n",
                capture_output=True, text=True)
            assert commit.returncode == 0, commit.stdout + commit.stderr
        finally:
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, output
        assert "persisted and stopped" in output

        # The commit survived the shutdown into the repo snapshot.
        log = subprocess.run(
            [sys.executable, "-m", "repro", "-R", repo, "-a", "reader",
             "log", "hello.txt"],
            env=env, capture_output=True, text=True)
        assert log.returncode == 0, log.stdout + log.stderr
        assert "hi" in log.stdout
