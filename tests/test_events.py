"""Tests for runs and Definition 2.1 deviation."""

from repro.mtree.database import RangeQuery, ReadQuery, WriteQuery
from repro.simulation.events import (
    Action,
    Run,
    describe_query,
    deviates_from_all,
    prefix_deviates,
)


def make_run(spec, rounds=None):
    """spec: list of (kind, user, txn) tuples."""
    run = Run()
    for index, (kind, user, txn) in enumerate(spec):
        run.record(Action(kind=kind, user_id=user, txn_id=txn, description="op"),
                   rounds[index] if rounds else index + 1)
    return run


BASE = [("query", "a", 1), ("response", "a", 1), ("query", "b", 2), ("response", "b", 2)]


class TestPrefixDeviates:
    def test_identical_runs_do_not_deviate(self):
        assert not prefix_deviates(make_run(BASE), make_run(BASE))

    def test_prefix_does_not_deviate(self):
        assert not prefix_deviates(make_run(BASE[:2]), make_run(BASE))

    def test_timing_only_difference_does_not_deviate(self):
        """Definition 2.1: only the set and order of actions matter; the
        rounds they occur at may differ."""
        fast = make_run(BASE, rounds=[1, 2, 3, 4])
        slow = make_run(BASE, rounds=[5, 9, 70, 200])
        assert not prefix_deviates(fast, slow)
        assert not prefix_deviates(slow, fast)

    def test_different_order_deviates(self):
        reordered = [BASE[0], BASE[2], BASE[1], BASE[3]]
        assert prefix_deviates(make_run(reordered), make_run(BASE))

    def test_missing_action_deviates(self):
        dropped = [BASE[0], BASE[1], BASE[3]]  # b's query vanished
        assert prefix_deviates(make_run(dropped), make_run(BASE))

    def test_longer_run_deviates(self):
        extended = BASE + [("query", "c", 3)]
        assert prefix_deviates(make_run(extended), make_run(BASE))

    def test_different_answer_content_deviates(self):
        """The same transaction answered differently is a different
        response action."""
        honest = Run()
        honest.record(Action(kind="response", user_id="a", txn_id=1,
                             description="op", answer_digest="X"), 1)
        lying = Run()
        lying.record(Action(kind="response", user_id="a", txn_id=1,
                            description="op", answer_digest="Y"), 1)
        assert prefix_deviates(lying, honest)


class TestDeviatesFromAll:
    def test_matches_one_trusted_run(self):
        trusted = [make_run(BASE), make_run(list(reversed(BASE)))]
        assert not deviates_from_all(make_run(BASE[:3]), trusted)

    def test_matches_none(self):
        trusted = [make_run(BASE)]
        rogue = make_run([("query", "z", 9)])
        assert deviates_from_all(rogue, trusted)

    def test_empty_run_never_deviates(self):
        assert not deviates_from_all(Run(), [make_run(BASE)])


class TestRun:
    def test_prefix(self):
        run = make_run(BASE)
        assert len(run.prefix(2)) == 2
        assert run.prefix(2).action_sequence() == run.action_sequence()[:2]

    def test_len(self):
        assert len(make_run(BASE)) == 4


class TestDescribeQuery:
    def test_read(self):
        assert "ReadQuery" in describe_query(ReadQuery(b"src/a.c"))
        assert "src/a.c" in describe_query(ReadQuery(b"src/a.c"))

    def test_write_includes_size(self):
        text = describe_query(WriteQuery(b"k", b"12345"))
        assert "5B" in text

    def test_range_includes_bounds(self):
        text = describe_query(RangeQuery(b"a", b"z"))
        assert "a" in text and "z" in text
