"""Byzantine mode over real sockets: the attack gallery on the wire.

The simulator's detection matrix (test_attacks.py) proves the
protocols' soundness in-process; these tests prove the same guarantees
survive the TCP deployment -- wire codec, framing, threading, blocking,
WAL -- with forensic evidence bundles capturing every detection."""

import io
import os

import pytest

from repro.cli import main as cli_main
from repro.mtree.database import VerifiedDatabase
from repro.net import (
    IntegrityError,
    RemoteClient,
    WireAttack,
    count_sync_check,
    serve_in_thread,
    sync_check,
)
from repro.net import evidence
from repro.net.client import RemoteClientP1
from repro.protocols.base import ServerState
from repro.protocols.protocol1 import Protocol1Server, bootstrap_server_state
from repro.server.attacks import (
    CompositeAttack,
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    HonestBehavior,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)


def p2_server(attack=None, **kwargs):
    return serve_in_thread(order=4, attack=attack, **kwargs)


def p1_server(keys, attack=None, elected="alice", **kwargs):
    state = ServerState(database=VerifiedDatabase(order=4))
    protocol = Protocol1Server()
    protocol.initialize(state)
    bootstrap_server_state(state, keys.signers[elected])
    return serve_in_thread(order=4, protocol=protocol, state=state,
                           block_timeout=5.0, attack=attack, **kwargs)


def inspect(path):
    """Run ``repro evidence-inspect``; returns (exit_code, output)."""
    out = io.StringIO()
    code = cli_main(["evidence-inspect", path], out=out)
    return code, out.getvalue()


class TestWireAttacksProtocol2:
    def test_honest_wire_run_never_alarms(self, tmp_path):
        wire = WireAttack(HonestBehavior())
        server = p2_server(attack=wire)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            clients = {
                user: RemoteClient(host, port, user, genesis, order=4,
                                   evidence_dir=str(tmp_path / "ev"))
                for user in ("alice", "bob")
            }
            for i in range(6):
                clients["alice"].put(f"a{i}".encode(), b"v")
                clients["bob"].put(f"b{i}".encode(), b"v")
            registers = {u: c.registers() for u, c in clients.items()}
            assert sync_check(genesis, registers)
            assert wire.injected == 0
            assert wire.first_deviation_op is None
            assert not os.path.isdir(str(tmp_path / "ev"))  # no bundles
            for client in clients.values():
                client.close()
        finally:
            server.stop()

    def test_unforged_tamper_detected_instantly_with_evidence(self, tmp_path):
        wire = WireAttack(TamperValueAttack(victim="alice", tamper_round=4))
        server = p2_server(attack=wire)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            with RemoteClient(host, port, "alice", genesis, order=4,
                              evidence_dir=str(tmp_path)) as alice:
                alice.put(b"k", b"v")
                with pytest.raises(IntegrityError, match="rejected") as exc:
                    for _ in range(6):
                        alice.get(b"k")
                path = exc.value.evidence_path
            assert wire.injected >= 1
            bundle = evidence.read_bundle(path)
            assert bundle["kind"] == "response"
            assert bundle["protocol"] == "II"
            genuine, why = evidence.reverify(bundle)
            assert genuine, why
            code, output = inspect(path)
            assert code == 0
            assert "GENUINE DEVIATION" in output
        finally:
            server.stop()

    def test_counter_replay_detected_with_evidence(self, tmp_path):
        wire = WireAttack(CounterReplayAttack(victim="alice", replay_round=4))
        server = p2_server(attack=wire)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            with RemoteClient(host, port, "alice", genesis, order=4,
                              evidence_dir=str(tmp_path)) as alice:
                with pytest.raises(IntegrityError, match="regressed") as exc:
                    for i in range(8):
                        alice.put(f"k{i}".encode(), b"v")
                path = exc.value.evidence_path
            genuine, why = evidence.reverify(evidence.read_bundle(path))
            assert genuine, why
            assert "regressed" in why
            assert inspect(path)[0] == 0
        finally:
            server.stop()

    @pytest.mark.parametrize("attack_factory", [
        lambda: ForkAttack(victims=["bob"], fork_round=5),
        lambda: StaleRootReplayAttack(victim="bob", freeze_round=5),
        lambda: DropCommitAttack(victim="bob", drop_round=5),
    ])
    def test_partition_attacks_fail_sync(self, tmp_path, attack_factory):
        """Fork-class attacks are invisible per-operation (each branch is
        internally consistent) but no serial history explains the union
        of registers: sync_check fails, and the register exchange itself
        is the evidence."""
        wire = WireAttack(attack_factory())
        server = p2_server(attack=wire)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            clients = {
                user: RemoteClient(host, port, user, genesis, order=4)
                for user in ("alice", "bob")
            }
            for i in range(5):
                clients["alice"].put(f"a{i}".encode(), b"v")
                clients["bob"].put(f"b{i}".encode(), b"v")
            registers = {u: c.registers() for u, c in clients.items()}
            assert not sync_check(genesis, registers)
            assert wire.first_deviation_op is not None
            path = evidence.write_bundle(
                str(tmp_path / "sync.evidence"),
                evidence.sync_bundle(genesis, registers))
            genuine, why = evidence.reverify(evidence.read_bundle(path))
            assert genuine, why
            assert inspect(path)[0] == 0
            for client in clients.values():
                client.close()
        finally:
            server.stop()

    def test_composite_attack_on_the_wire(self):
        wire = WireAttack(CompositeAttack([
            ForkAttack(victims=["bob"], fork_round=6),
            TamperValueAttack(victim="alice", tamper_round=8),
        ]))
        server = p2_server(attack=wire)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            alice = RemoteClient(host, port, "alice", genesis, order=4)
            bob = RemoteClient(host, port, "bob", genesis, order=4)
            alice.put(b"k", b"v")
            detected_per_op = False
            try:
                for i in range(6):
                    alice.get(b"k")
                    bob.put(f"b{i}".encode(), b"v")
            except IntegrityError:
                detected_per_op = True
            synced = sync_check(
                genesis, {"alice": alice.registers(), "bob": bob.registers()})
            assert detected_per_op or not synced
            assert wire.first_deviation_op is not None
            alice.close()
            bob.close()
        finally:
            server.stop()


class TestWireAttacksProtocol1:
    def test_signature_forge_detected_and_reverifiable_offline(
            self, shared_keys, tmp_path):
        wire = WireAttack(SignatureForgeAttack(forge_round=3))
        server = p1_server(shared_keys, attack=wire)
        try:
            host, port = server.address
            with RemoteClientP1(host, port, "alice",
                                shared_keys.signers["alice"],
                                shared_keys.verifier, order=4,
                                evidence_dir=str(tmp_path)) as alice:
                with pytest.raises(IntegrityError, match="signature") as exc:
                    for i in range(5):
                        alice.put(f"k{i}".encode(), b"v")
                path = exc.value.evidence_path
            bundle = evidence.read_bundle(path)
            assert bundle["protocol"] == "I"
            assert bundle["verifier_keys"]  # keys travel with the bundle
            genuine, why = evidence.reverify(bundle)
            assert genuine, why
            assert "verify under the signer's key" in why
            assert inspect(path)[0] == 0
        finally:
            server.stop()

    def test_fork_blocks_per_branch_and_fails_count_sync(self, shared_keys):
        """Each forked branch keeps Protocol I's blocking discipline
        (the victim's follow-ups land on the victim's branch), yet the
        branches' counters can no longer reconcile."""
        wire = WireAttack(ForkAttack(victims=["bob"], fork_round=4))
        server = p1_server(shared_keys, attack=wire)
        try:
            host, port = server.address
            alice = RemoteClientP1(host, port, "alice",
                                   shared_keys.signers["alice"],
                                   shared_keys.verifier, order=4)
            bob = RemoteClientP1(host, port, "bob",
                                 shared_keys.signers["bob"],
                                 shared_keys.verifier, order=4)
            for i in range(3):
                alice.put(f"a{i}".encode(), b"v")
                bob.put(f"b{i}".encode(), b"v")
            assert "fork" in server.states
            counts = {"alice": alice.counts(), "bob": bob.counts()}
            assert not count_sync_check(counts)
            genuine, why = evidence.reverify(evidence.count_sync_bundle(counts))
            assert genuine, why
            alice.close()
            bob.close()
        finally:
            server.stop()


class TestAsyncBatchedDetection:
    """The async server's signature amortization must not weaken
    detection: one signed root covers a whole signing run, so a
    tampered operation *inside* the run has no per-op signature of its
    own -- the hash-chain membership check has to catch it."""

    def _p1_async_server(self, keys, attack, elected="alice", **kwargs):
        from repro.net import serve_async_in_thread

        state = ServerState(database=VerifiedDatabase(order=4))
        protocol = Protocol1Server()
        protocol.initialize(state)
        bootstrap_server_state(state, keys.signers[elected])
        return serve_async_in_thread(order=4, protocol=protocol, state=state,
                                     block_timeout=5.0, attack=attack,
                                     **kwargs)

    def test_tampered_op_inside_signed_batch_detected_with_evidence(
            self, shared_keys, tmp_path):
        """Forge-proof value tamper on a read mid-window: the VO is
        internally consistent, but its implied root cannot join the
        hash chain anchored at the run's signed root.  IntegrityError
        plus an offline-reverifiable evidence bundle, exactly as the
        unbatched client would produce."""
        from repro.net import PipelinedRemoteClientP1
        from repro.mtree.database import ReadQuery, WriteQuery

        wire = WireAttack(TamperValueAttack(victim="alice", tamper_round=6,
                                            forge_proof=True))
        server = self._p1_async_server(shared_keys, attack=wire, batch_max=16)
        try:
            host, port = server.address
            alice = PipelinedRemoteClientP1(
                host, port, "alice", shared_keys.signers["alice"],
                shared_keys.verifier, order=4, window=8,
                evidence_dir=str(tmp_path))
            for i in range(4):
                alice.submit(WriteQuery(f"k{i}".encode(), f"v{i}".encode()))
            alice.drain()
            with pytest.raises(IntegrityError) as exc:
                for i in range(8):
                    alice.submit(ReadQuery(f"k{i % 4}".encode()))
                alice.drain()
            path = exc.value.evidence_path
            assert wire.injected >= 1
            assert wire.first_deviation_op is not None

            bundle = evidence.read_bundle(path)
            assert bundle["protocol"] == "I"
            genuine, why = evidence.reverify(bundle)
            assert genuine, why
            assert inspect(path)[0] == 0
            alice.close()
        finally:
            server.stop()

    def test_honest_batched_run_never_alarms(self, shared_keys, tmp_path):
        """Control: the same pipelined client over an honest async
        server produces zero bundles and passes count_sync_check."""
        from repro.net import PipelinedRemoteClientP1
        from repro.mtree.database import ReadQuery, WriteQuery

        wire = WireAttack(HonestBehavior())
        server = self._p1_async_server(shared_keys, attack=wire, batch_max=16)
        try:
            host, port = server.address
            alice = PipelinedRemoteClientP1(
                host, port, "alice", shared_keys.signers["alice"],
                shared_keys.verifier, order=4, window=8,
                evidence_dir=str(tmp_path / "ev"))
            for i in range(8):
                alice.submit(WriteQuery(f"k{i}".encode(), b"v"))
            for i in range(8):
                alice.submit(ReadQuery(f"k{i}".encode()))
            alice.drain()
            assert wire.injected == 0
            assert not os.path.isdir(str(tmp_path / "ev"))
            assert count_sync_check({"alice": alice.counts()})
            alice.close()
        finally:
            server.stop()


class TestForkSurvivesWalReplay:
    def test_forked_branches_reconstructed_after_crash(self, tmp_path):
        """A Byzantine durable server crash-restarts into the *same*
        forked world: WAL replay routes through the attack at identical
        tick indices, so every branch's root digest is reproduced and
        both users resume their (divergent) verified sessions."""
        data_dir = str(tmp_path / "server")

        def make_attack():
            return WireAttack(ForkAttack(victims=["bob"], fork_round=4))

        server = p2_server(attack=make_attack(), data_dir=data_dir,
                           snapshot_every=3)
        host, port = server.address
        genesis = server.initial_root_digest()
        alice = RemoteClient(host, port, "alice", genesis, order=4)
        bob = RemoteClient(host, port, "bob", genesis, order=4)
        for i in range(4):
            alice.put(f"a{i}".encode(), b"v")
            bob.put(f"b{i}".encode(), b"v")
        with server.state_lock:
            before = {name: state.database.root_digest()
                      for name, state in server.states.items()}
            ticks = server._round
        assert "fork" in before
        alice.close()
        bob.close()
        server.stop(snapshot=False)  # crash-equivalent

        restarted = p2_server(attack=make_attack(), data_dir=data_dir,
                              snapshot_every=3)
        try:
            assert restarted.replayed_records > 0  # snapshots were suppressed
            with restarted.state_lock:
                after = {name: state.database.root_digest()
                         for name, state in restarted.states.items()}
                assert restarted._round == ticks
            assert after == before
            # both users resume against their own branch
            host2, port2 = restarted.address
            alice2 = RemoteClient(host2, port2, "alice", genesis, order=4)
            bob2 = RemoteClient(host2, port2, "bob", genesis, order=4)
            for i in range(4):
                assert alice2.get(f"a{i}".encode()) == b"v"
            assert bob2.get(b"b0") == b"v"
            assert bob2.get(b"a3") is None  # alice's post-fork write hidden
            alice2.close()
            bob2.close()
        finally:
            restarted.stop()


class TestEvidenceBundleFormat:
    def test_fabricated_bundle_does_not_implicate_the_server(self, tmp_path):
        """A bundle built from an *honest* exchange re-verifies clean:
        evidence-inspect refuses to certify it (exit 1)."""
        from repro.wire import encode

        server = p2_server()
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            captured = {}

            class Snitch(RemoteClient):
                def _exchange(self, request):
                    response = super()._exchange(request)
                    captured["request"] = request
                    captured["frame"] = self._capture[-1]
                    captured["state"] = {
                        "sigma": self.sigma, "last": self.last,
                        "gctr": self.gctr, "seq": self._seq}
                    return response

            with Snitch(host, port, "alice", genesis, order=4) as alice:
                alice.put(b"k", b"v")
            bundle = evidence.response_bundle(
                protocol="II", user_id="alice",
                reason="fabricated accusation", op_index=0, order=4,
                request_frame=encode(captured["request"]),
                response_frame=captured["frame"],
                client_state=captured["state"],
                anchor=evidence.anchor_lineage(None, None))
            path = evidence.write_bundle(str(tmp_path / "fake.evidence"),
                                         bundle)
            genuine, why = evidence.reverify(evidence.read_bundle(path))
            assert not genuine
            code, output = inspect(path)
            assert code == 1
            assert "NOT evidence" in output
        finally:
            server.stop()

    def test_corrupt_bundle_file_is_a_clean_cli_error(self, tmp_path):
        path = str(tmp_path / "junk.evidence")
        with open(path, "wb") as handle:
            handle.write(b"not a bundle at all")
        code, output = inspect(path)
        assert code == 2
        assert "error:" in output

    def test_bundle_roundtrip_is_canonical(self, tmp_path):
        bundle = evidence.count_sync_bundle(
            {"alice": {"lctr": 3, "gctr": 5}, "bob": {"lctr": 1, "gctr": 4}})
        p1 = evidence.write_bundle(str(tmp_path / "a.evidence"), bundle)
        p2 = evidence.write_bundle(str(tmp_path / "b.evidence"),
                                   evidence.read_bundle(p1))
        with open(p1, "rb") as h1, open(p2, "rb") as h2:
            assert h1.read() == h2.read()


class TestObsCounters:
    def test_attack_detection_and_bundle_counters(self, tmp_path):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            wire = WireAttack(TamperValueAttack(victim="alice",
                                                tamper_round=3))
            server = p2_server(attack=wire)
            try:
                host, port = server.address
                genesis = server.initial_root_digest()
                with RemoteClient(host, port, "alice", genesis, order=4,
                                  evidence_dir=str(tmp_path)) as alice:
                    alice.put(b"k", b"v")
                    with pytest.raises(IntegrityError):
                        for _ in range(5):
                            alice.get(b"k")
            finally:
                server.stop()
            counters = obs.snapshot()["counters"]
            assert counters["net.attacks_injected"]["total"] >= 1
            assert counters["net.detections"]["total"] >= 1
            assert counters["net.evidence_bundles"]["total"] >= 1
        finally:
            obs.disable()
