"""Tests for the campaign runner and the strong-bound Protocol II
variant (total-k rather than per-user-k)."""

import pytest

from helpers import run_scenario
from repro.analysis.campaign import CAMPAIGN_HEADERS, Campaign, campaign_table
from repro.server.attacks import ForkAttack
from repro.simulation.workload import partitionable_workload, steady_workload


class TestCampaign:
    @pytest.fixture(scope="class")
    def results(self):
        campaign = Campaign(
            protocols=["naive", "protocol2"],
            seeds=[1, 2],
            workload_factory=lambda protocol, seed: steady_workload(
                3, 12, spacing=4, keyspace=6, write_ratio=0.6, seed=seed),
            attack_factories={
                "honest": lambda wl, seed: None,
                "fork": lambda wl, seed: ForkAttack(victims=["user1"],
                                                    fork_round=wl.horizon() // 2),
            },
            build_kwargs={"k": 4},
        )
        return campaign.run()

    def test_matrix_shape(self, results):
        assert len(results) == 4  # 2 protocols x 2 attacks
        assert {(c.protocol, c.attack_name) for c in results} == {
            ("naive", "honest"), ("naive", "fork"),
            ("protocol2", "honest"), ("protocol2", "fork"),
        }

    def test_honest_cells_clean(self, results):
        for cell in results:
            if cell.attack_name == "honest":
                assert cell.deviated == 0
                assert cell.false_alarms == 0
                assert cell.detection_rate == 1.0  # vacuous

    def test_fork_cells(self, results):
        by_key = {(c.protocol, c.attack_name): c for c in results}
        naive = by_key[("naive", "fork")]
        p2 = by_key[("protocol2", "fork")]
        if p2.deviated:
            assert p2.detection_rate == 1.0
            assert p2.mean_delay is not None
            assert p2.delay_percentile(0.9) >= p2.delay_percentile(0.0)
        if naive.deviated:
            assert naive.detection_rate == 0.0

    def test_table_rendering(self, results):
        rows = campaign_table(results)
        assert len(rows) == len(results)
        assert len(rows[0]) == len(CAMPAIGN_HEADERS)


class TestStrongBoundVariant:
    def test_honest_run_clean(self):
        report = run_scenario("protocol2strong", steady_workload(3, 10, seed=1),
                              k=5, seed=1)
        assert not report.detected
        assert sum(report.operations_completed.values()) == 30

    def test_syncs_more_often_than_per_user_variant(self):
        """Total-k triggers on the global counter, so with n users it
        syncs roughly n times as often as per-user-k."""
        workload = steady_workload(4, 10, spacing=4, seed=2)
        weak = run_scenario("protocol2", workload, k=6, seed=2)
        strong = run_scenario("protocol2strong", workload, k=6, seed=2)
        assert not weak.detected and not strong.detected
        assert strong.broadcasts_sent > weak.broadcasts_sent * 2

    def test_detects_fork_within_total_k(self):
        """The stronger promise: at most ~k operations *in total* are
        initiated after the deviation before some user knows."""
        for k in (3, 6):
            workload = partitionable_workload(k=k, seed=3)
            attack = ForkAttack(victims=workload.metadata["group_b"],
                                fork_round=workload.metadata["fork_round"])
            report = run_scenario("protocol2strong", workload, attack=attack,
                                  k=k, seed=3)
            assert report.detected, k
            assert not report.false_alarm
            # total post-deviation initiations across ALL users
            total_after = sum(
                1
                for user, issued in report.issue_rounds.items()
                for r in issued
                if r > report.first_deviation_round
                and (report.detection_round is None or r <= report.detection_round)
            )
            # k total plus the handful in flight when the sync fires
            assert total_after <= k + 3, (k, total_after)

    def test_strong_variant_in_campaign(self):
        campaign = Campaign(
            protocols=["protocol2strong"],
            seeds=[4],
            workload_factory=lambda protocol, seed: steady_workload(
                3, 12, spacing=4, keyspace=6, write_ratio=0.6, seed=seed),
            attack_factories={
                "fork": lambda wl, seed: ForkAttack(victims=["user1"],
                                                    fork_round=wl.horizon() // 2),
            },
            build_kwargs={"k": 4},
        )
        (cell,) = campaign.run()
        if cell.deviated:
            assert cell.detection_rate == 1.0
