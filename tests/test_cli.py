"""Tests for the command-line client (trust anchors on disk)."""

import io
import os

import pytest

from repro.cli import main


def run(argv, expect=0):
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == expect, out.getvalue()
    return out.getvalue()


@pytest.fixture
def repo(tmp_path):
    repo_dir = str(tmp_path / "repo")
    run(["init", repo_dir])
    return repo_dir


def commit(repo, path, content, message="", author="alice", tmp_dir="/tmp"):
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as handle:
        handle.write(content)
        name = handle.name
    try:
        return run(["-R", repo, "-a", author, "commit", path, "-m", message, "--file", name])
    finally:
        os.unlink(name)


class TestInit:
    def test_init_creates_repo(self, tmp_path):
        repo_dir = str(tmp_path / "new")
        text = run(["init", repo_dir])
        assert "initialised" in text
        assert os.path.isfile(os.path.join(repo_dir, "db.snapshot"))

    def test_double_init_fails(self, repo):
        text = run(["init", repo], expect=2)
        assert "already exists" in text

    def test_commands_need_a_repo(self, tmp_path):
        text = run(["-R", str(tmp_path / "nowhere"), "ls"], expect=2)
        assert "not a repository" in text


class TestCommitCheckout:
    def test_roundtrip(self, repo):
        text = commit(repo, "src/main.c", "int main() {}\n", "first")
        assert "committed src/main.c 1.1" in text
        out = run(["-R", repo, "checkout", "src/main.c"])
        assert out == "int main() {}\n"

    def test_revisions(self, repo):
        commit(repo, "f.txt", "v1\n")
        commit(repo, "f.txt", "v1\nv2\n")
        assert run(["-R", repo, "checkout", "f.txt", "-r", "1.1"]) == "v1\n"
        assert run(["-R", repo, "checkout", "f.txt"]) == "v1\nv2\n"

    def test_log(self, repo):
        commit(repo, "f.txt", "a\n", "first", author="alice")
        commit(repo, "f.txt", "b\n", "second", author="bob")
        text = run(["-R", repo, "log", "f.txt"])
        assert "1.1" in text and "first" in text and "alice" in text
        assert "1.2" in text and "second" in text and "bob" in text

    def test_diff(self, repo):
        commit(repo, "f.txt", "old line\n")
        commit(repo, "f.txt", "new line\n")
        text = run(["-R", repo, "diff", "f.txt", "-r", "1.1"])
        assert "-old line" in text
        assert "+new line" in text

    def test_ls_and_remove(self, repo):
        commit(repo, "src/a.c", "x\n")
        commit(repo, "src/b.c", "y\n")
        commit(repo, "docs/r.md", "z\n")
        assert run(["-R", repo, "ls"]).splitlines() == ["docs/r.md", "src/a.c", "src/b.c"]
        assert run(["-R", repo, "ls", "src/"]).splitlines() == ["src/a.c", "src/b.c"]
        run(["-R", repo, "remove", "src/a.c", "-m", "gone"])
        assert run(["-R", repo, "ls", "src/"]).splitlines() == ["src/b.c"]

    def test_checkout_missing(self, repo):
        text = run(["-R", repo, "checkout", "ghost.c"], expect=2)
        assert "error" in text


class TestTrustAnchor:
    def test_trust_reporting(self, repo):
        commit(repo, "f.txt", "x\n")
        text = run(["-R", repo, "trust"])
        assert "in sync     : yes" in text

    def test_anchor_survives_sessions(self, repo):
        commit(repo, "f.txt", "session 1\n")
        # a fresh process (new Workspace) keeps verifying
        out = run(["-R", repo, "checkout", "f.txt"])
        assert out == "session 1\n"
        anchor = os.path.join(repo, "trust", "alice.digest")
        assert os.path.isfile(anchor)

    def test_offline_tampering_detected(self, repo):
        """Rewrite the snapshot behind the client's back: the next
        command must refuse with an integrity violation."""
        commit(repo, "secret.txt", "the truth\n")
        run(["-R", repo, "checkout", "secret.txt"])  # anchor now set

        # the server operator swaps in a doctored repository
        from repro.core.facade import CvsClient, CvsServer
        from repro.mtree.persistence import dump_database

        doctored = CvsServer()
        evil_client = CvsClient(doctored, author="mallory")
        evil_client.commit("secret.txt", ["the lie"], "tampered")
        with open(os.path.join(repo, "db.snapshot"), "wb") as handle:
            handle.write(dump_database(doctored._database))

        text = run(["-R", repo, "checkout", "secret.txt"], expect=3)
        assert "INTEGRITY VIOLATION" in text

    def test_separate_authors_separate_anchors(self, repo):
        commit(repo, "f.txt", "x\n", author="alice")
        # bob joins later: trust-on-first-use at the current root
        out = run(["-R", repo, "-a", "bob", "checkout", "f.txt"])
        assert out == "x\n"
        assert os.path.isfile(os.path.join(repo, "trust", "bob.digest"))


class TestObsReport:
    def test_text_report_reconciles(self):
        text = run(["obs-report", "--users", "3", "--ops", "4"])
        assert "protocol.ops_verified" in text
        assert "reconciliation" in text
        assert "MISMATCH" not in text

    def test_json_report(self):
        import json

        text = run(["obs-report", "--users", "3", "--ops", "4", "--json"])
        snap = json.loads(text)
        assert snap["reconciliation_ok"] is True
        assert all(check["ok"] for check in snap["reconciliation"].values())
