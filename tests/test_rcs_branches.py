"""Tests for RCS branch support (CVS 1.N.2.x numbering)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.merge import merge3
from repro.storage.rcs import RcsError, RevisionStore


@pytest.fixture
def store():
    s = RevisionStore()
    s.commit(["v1 line"], "alice", "r1", 0)
    s.commit(["v1 line", "v2 line"], "alice", "r2", 1)
    s.commit(["v1 line", "v2 line", "v3 line"], "alice", "r3", 2)
    return s


class TestBranchNumbering:
    def test_first_branch_gets_even_number(self, store):
        assert store.create_branch("1.2") == "1.2.2"

    def test_second_branch_off_same_revision(self, store):
        store.create_branch("1.2")
        assert store.create_branch("1.2") == "1.2.4"

    def test_branches_off_different_revisions(self, store):
        assert store.create_branch("1.1") == "1.1.2"
        assert store.create_branch("1.3") == "1.3.2"
        assert store.branches() == ["1.1.2", "1.3.2"]

    def test_branch_off_unknown_revision(self, store):
        with pytest.raises(RcsError):
            store.create_branch("1.9")

    def test_branch_revision_numbers(self, store):
        branch = store.create_branch("1.2")
        r1 = store.commit_on_branch(branch, ["branched"], "bob", "b1", 5)
        r2 = store.commit_on_branch(branch, ["branched", "more"], "bob", "b2", 6)
        assert r1.number == "1.2.2.1"
        assert r2.number == "1.2.2.2"


class TestBranchCheckout:
    def test_branch_content_independent_of_trunk(self, store):
        branch = store.create_branch("1.2")
        store.commit_on_branch(branch, ["v1 line", "branch work"], "bob", "", 5)
        # trunk head unchanged
        assert store.checkout() == ["v1 line", "v2 line", "v3 line"]
        # branch revision as committed
        assert store.checkout("1.2.2.1") == ["v1 line", "branch work"]

    def test_branch_walks_forward_deltas(self, store):
        branch = store.create_branch("1.1")
        contents = [["a"], ["a", "b"], ["c", "a", "b"]]
        for t, lines in enumerate(contents):
            store.commit_on_branch(branch, lines, "bob", "", 10 + t)
        for step, expected in enumerate(contents, start=1):
            assert store.checkout(f"{branch}.{step}") == expected

    def test_trunk_keeps_evolving_after_branch(self, store):
        branch = store.create_branch("1.3")
        store.commit_on_branch(branch, ["stable fix"], "bob", "", 5)
        store.commit(["trunk", "goes", "on"], "alice", "r4", 6)
        assert store.checkout() == ["trunk", "goes", "on"]
        assert store.checkout("1.3.2.1") == ["stable fix"]
        assert store.checkout("1.3") == ["v1 line", "v2 line", "v3 line"]

    def test_unknown_branch_revision(self, store):
        branch = store.create_branch("1.2")
        store.commit_on_branch(branch, ["x"], "bob", "", 5)
        with pytest.raises(RcsError):
            store.checkout(f"{branch}.5")
        with pytest.raises(RcsError):
            store.checkout("1.2.4.1")

    def test_malformed_branch_number(self, store):
        store.create_branch("1.2")
        with pytest.raises(RcsError):
            store.checkout("1.2.2.xyz")

    def test_branch_head_and_log(self, store):
        branch = store.create_branch("1.2")
        assert store.branch_head(branch) is None
        store.commit_on_branch(branch, ["x"], "bob", "fix", 5)
        assert store.branch_head(branch) == "1.2.2.1"
        assert [r.log_message for r in store.branch_log(branch)] == ["fix"]

    def test_branch_timestamps_monotone(self, store):
        branch = store.create_branch("1.2")
        store.commit_on_branch(branch, ["x"], "bob", "", 10)
        with pytest.raises(RcsError):
            store.commit_on_branch(branch, ["y"], "bob", "", 3)


class TestBranchSerialization:
    def test_roundtrip_with_branches(self, store):
        branch = store.create_branch("1.2")
        store.commit_on_branch(branch, ["branch v1"], "bob", "b1", 5)
        store.commit_on_branch(branch, ["branch v2"], "bob", "b2", 6)
        clone = RevisionStore.deserialize(store.serialize())
        assert clone.serialize() == store.serialize()
        assert clone.branches() == [branch]
        assert clone.checkout("1.2.2.2") == ["branch v2"]
        assert clone.checkout("1.2") == store.checkout("1.2")

    def test_empty_branch_roundtrips(self, store):
        store.create_branch("1.1")
        clone = RevisionStore.deserialize(store.serialize())
        assert clone.branches() == ["1.1.2"]
        assert clone.branch_head("1.1.2") is None

    def test_v1_blobs_still_parse(self):
        """Backward compatibility with the pre-branch format."""
        legacy = RevisionStore()
        legacy.commit(["old"], "u", "", 0)
        blob = legacy.serialize().replace(b"rcs-store 2", b"rcs-store 1")
        # strip the (empty) branches section to produce a true v1 blob
        blob = blob.replace(b"branches 0\n", b"")
        clone = RevisionStore.deserialize(blob)
        assert clone.checkout() == ["old"]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.sampled_from(["a", "b", "c"]), max_size=5),
                    min_size=1, max_size=4))
    def test_roundtrip_property_with_branch(self, branch_contents):
        store = RevisionStore()
        store.commit(["base"], "u", "", 0)
        branch = store.create_branch("1.1")
        for t, lines in enumerate(branch_contents):
            store.commit_on_branch(branch, list(lines), "u", "", t + 1)
        clone = RevisionStore.deserialize(store.serialize())
        for step, expected in enumerate(branch_contents, start=1):
            assert clone.checkout(f"{branch}.{step}") == list(expected)


class TestBranchMergeWorkflow:
    def test_merge_branch_into_trunk(self, store):
        """The release-branch pattern: fix on the branch, develop on
        trunk, merge the fix back with merge3."""
        branch = store.create_branch("1.3")
        store.commit_on_branch(branch, ["v1 line", "v2 line", "v3 line", "hotfix"],
                               "bob", "fix", 5)
        store.commit(["v0 line", "v1 line", "v2 line", "v3 line"], "alice", "feature", 6)

        base = store.checkout("1.3")
        trunk = store.checkout()
        fix = store.checkout(f"{branch}.1")
        merged = merge3(base, trunk, fix)
        assert not merged.has_conflicts
        assert merged.lines() == ["v0 line", "v1 line", "v2 line", "v3 line", "hotfix"]
        store.commit(merged.lines(), "alice", "merge hotfix", 7)
        assert store.checkout()[-1] == "hotfix"
