"""Tests for Merkle-tree snapshots (shape-exact persistence)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mtree.bplus import BPlusTree
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery, DeleteQuery, ClientVerifier
from repro.mtree.persistence import (
    PersistenceError,
    dump_database,
    dump_tree,
    load_database,
    load_tree,
)


def build_random_tree(seed: int, ops: int = 200, order: int = 4) -> BPlusTree:
    rng = random.Random(seed)
    tree = BPlusTree(order=order)
    for step in range(ops):
        key = f"k{rng.randrange(60):03d}".encode()
        if rng.random() < 0.7:
            tree.insert(key, f"v{step}".encode())
        else:
            tree.delete(key)
    return tree


class TestTreeSnapshot:
    def test_roundtrip_preserves_entries(self):
        tree = build_random_tree(1)
        clone = load_tree(dump_tree(tree))
        assert dict(clone.items()) == dict(tree.items())
        assert len(clone) == len(tree)
        assert clone.order == tree.order

    def test_roundtrip_preserves_shape(self):
        """The crucial property: the reloaded tree hashes identically."""
        from repro.mtree.merkle import MerkleBPlusTree

        tree = build_random_tree(2)
        original = MerkleBPlusTree(order=tree.order)
        original._tree = tree
        clone = load_tree(dump_tree(tree))
        restored = MerkleBPlusTree(order=clone.order)
        restored._tree = clone
        assert restored.root_digest() == original.root_digest()

    def test_empty_tree(self):
        tree = BPlusTree(order=5)
        clone = load_tree(dump_tree(tree))
        assert len(clone) == 0
        assert clone.order == 5

    def test_leaf_chain_rebuilt(self):
        tree = build_random_tree(3)
        clone = load_tree(dump_tree(tree))
        assert [k for k, _ in clone.items()] == sorted(clone.keys())
        lo, hi = b"k010", b"k040"
        assert list(clone.range(lo, hi)) == list(tree.range(lo, hi))

    def test_binary_safe(self):
        tree = BPlusTree(order=4)
        tree.insert(b"\x00\xff\n key", b"\xde\xad\xbe\xef\nvalue")
        clone = load_tree(dump_tree(tree))
        assert clone.get(b"\x00\xff\n key") == b"\xde\xad\xbe\xef\nvalue"

    def test_bad_header(self):
        with pytest.raises(PersistenceError):
            load_tree(b"not a snapshot\n")

    def test_truncated(self):
        blob = dump_tree(build_random_tree(4))
        with pytest.raises(PersistenceError):
            load_tree(blob[: len(blob) // 2])

    def test_trailing_data(self):
        blob = dump_tree(build_random_tree(5))
        with pytest.raises(PersistenceError):
            load_tree(blob + b"leaf 0\n")

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), order=st.integers(3, 8))
    def test_roundtrip_property(self, seed, order):
        tree = build_random_tree(seed, ops=80, order=order)
        clone = load_tree(dump_tree(tree))
        clone.check_invariants()
        assert dict(clone.items()) == dict(tree.items())


#: every order any benchmark or deployment path instantiates (the
#: benchmarks and net layer default to 8; tests drive 3-5; the sweep
#: extends to wide nodes so fan-out edge cases stay covered).
BENCHMARK_ORDERS = [3, 4, 5, 8, 16, 32]


class TestRoundtripAtEveryOrder:
    @pytest.mark.parametrize("order", BENCHMARK_ORDERS)
    def test_shape_exact_roundtrip(self, order):
        """Digest-identical reload at every order used anywhere in the
        repo -- the chaos campaign's recovery path depends on this."""
        from repro.mtree.merkle import MerkleBPlusTree

        tree = build_random_tree(seed=order, ops=150, order=order)
        clone = load_tree(dump_tree(tree))
        clone.check_invariants()
        assert dict(clone.items()) == dict(tree.items())
        original = MerkleBPlusTree(order=order)
        original._tree = tree
        restored = MerkleBPlusTree(order=order)
        restored._tree = clone
        assert restored.root_digest() == original.root_digest()

    @pytest.mark.parametrize("order", BENCHMARK_ORDERS)
    def test_database_roundtrip(self, order):
        db = VerifiedDatabase(order=order)
        rng = random.Random(order)
        for step in range(120):
            db.execute(WriteQuery(f"k{rng.randrange(50):03d}".encode(),
                                  f"v{step}".encode()))
        restored = load_database(dump_database(db))
        assert restored.root_digest() == db.root_digest()
        assert restored.order == order


class TestCorruptedSnapshotRejected:
    """Every corruption must surface as PersistenceError -- never a
    silently different tree, never a raw ValueError/struct garbage."""

    def test_garbage_header(self):
        for blob in (b"", b"\n", b"garbage header 4 1\n",
                     b"bplus-snapshot 2 4 1\nleaf 0\n",
                     b"bplus-snapshot 1\nleaf 0\n",
                     b"bplus-snapshot 1 four 1\nleaf 0\n",
                     b"\xff\xfe not even ascii"):
            with pytest.raises(PersistenceError):
                load_tree(blob)

    def test_implausible_order_or_size(self):
        with pytest.raises(PersistenceError, match="implausible"):
            load_tree(b"bplus-snapshot 1 2 0\nleaf 0\n")
        with pytest.raises(PersistenceError, match="implausible"):
            load_tree(b"bplus-snapshot 1 4 -1\nleaf 0\n")

    def test_bad_base64_field(self):
        blob = dump_tree(build_random_tree(6, ops=20))
        lines = blob.split(b"\n")
        for index, line in enumerate(lines):
            if b" " in line and not line.startswith((b"leaf", b"internal",
                                                     b"bplus-snapshot")):
                lines[index] = b"!!!notbase64!!! " + line.split(b" ", 1)[1]
                break
        with pytest.raises(PersistenceError, match="base64"):
            load_tree(b"\n".join(lines))

    def test_wrong_node_count_vs_header(self):
        """The header's entry count is validated against what the nodes
        actually hold, so a doctored header cannot smuggle in a tree
        that disagrees with its own metadata."""
        tree = build_random_tree(7, ops=40)
        blob = dump_tree(tree)
        header, rest = blob.split(b"\n", 1)
        parts = header.split(b" ")
        parts[3] = str(int(parts[3]) + 1).encode()
        with pytest.raises(PersistenceError, match="entries"):
            load_tree(b" ".join(parts) + b"\n" + rest)

    def test_internal_key_count_mismatch(self):
        tree = build_random_tree(8, ops=120, order=3)  # guarantees internals
        blob = dump_tree(tree)
        lines = blob.split(b"\n")
        for index, line in enumerate(lines):
            if line.startswith(b"internal "):
                count = int(line.split(b" ")[1])
                lines[index] = b"internal %d" % (count + 1)
                break
        with pytest.raises(PersistenceError):
            load_tree(b"\n".join(lines))


class TestDatabaseSnapshot:
    def test_client_trust_survives_restart(self):
        """The point of shape-exact persistence: a client's tracked root
        digest still verifies against the reloaded server."""
        db = VerifiedDatabase(order=4)
        client = ClientVerifier(db.root_digest(), order=4)
        rng = random.Random(7)
        for step in range(150):
            key = f"k{rng.randrange(40):03d}".encode()
            query = WriteQuery(key, f"v{step}".encode())
            client.apply(query, db.execute(query))

        blob = dump_database(db)
        restarted = load_database(blob)
        assert restarted.root_digest() == db.root_digest()

        # the client keeps operating against the restarted server
        query = ReadQuery(b"k001")
        answer = client.apply(query, restarted.execute(query))
        assert answer == db.get(b"k001")
        update = WriteQuery(b"k001", b"after restart")
        client.apply(update, restarted.execute(update))
        assert client.root_digest == restarted.root_digest()

    def test_deletes_then_snapshot(self):
        db = VerifiedDatabase(order=3)
        for i in range(30):
            db.execute(WriteQuery(f"k{i:02d}".encode(), b"x"))
        for i in range(0, 30, 2):
            db.execute(DeleteQuery(f"k{i:02d}".encode()))
        restored = load_database(dump_database(db))
        assert restored.root_digest() == db.root_digest()
        assert len(restored) == 15


def build_random_forest(seed: int, shards: int = 4, ops: int = 200,
                        order: int = 4):
    from repro.mtree.forest import MerkleForest

    rng = random.Random(seed)
    forest = MerkleForest(order=order, shards=shards, top_order=4)
    for step in range(ops):
        key = f"k{rng.randrange(60):03d}".encode()
        if rng.random() < 0.7:
            forest.insert(key, f"v{step}".encode())
        else:
            forest.delete(key)
    return forest


class TestForestSnapshot:
    """Forest persistence: shard layout and top root bit-for-bit."""

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_roundtrip_preserves_top_root_and_layout(self, shards):
        from repro.mtree.persistence import dump_forest, load_forest

        forest = build_random_forest(shards, shards=shards)
        clone = load_forest(dump_forest(forest))
        assert clone.spec == forest.spec
        assert clone.refresh_root()[0] == forest.refresh_root()[0]
        assert list(clone.items()) == list(forest.items())
        # per-shard layout (not just the union) is preserved exactly
        for index in range(shards):
            assert clone.shard_tree(index).root_digest() == \
                forest.shard_tree(index).root_digest()

    def test_roundtrip_is_canonical(self):
        from repro.mtree.persistence import dump_forest, load_forest

        forest = build_random_forest(11, shards=3)
        blob = dump_forest(forest)
        assert dump_forest(load_forest(blob)) == blob

    def test_database_roundtrip_dispatches_on_header(self):
        forest_db = VerifiedDatabase(order=4, shards=4)
        single_db = VerifiedDatabase(order=4)
        for step in range(80):
            query = WriteQuery(f"k{step % 30:03d}".encode(), b"x%d" % step)
            forest_db.execute(query)
            single_db.execute(query)
        restored = load_database(dump_database(forest_db))
        assert restored.shards == 4
        assert restored.root_digest() == forest_db.root_digest()
        restored_single = load_database(dump_database(single_db))
        assert restored_single.shards == 1
        assert restored_single.root_digest() == single_db.root_digest()

    def test_client_trust_survives_forest_restart(self):
        db = VerifiedDatabase(order=4, shards=4)
        client = ClientVerifier(db.root_digest(), order=db.spec)
        rng = random.Random(13)
        for step in range(120):
            query = WriteQuery(f"k{rng.randrange(40):03d}".encode(),
                               f"v{step}".encode())
            client.apply(query, db.execute(query))
        restarted = load_database(dump_database(db))
        query = WriteQuery(b"k001", b"after restart")
        client.apply(query, restarted.execute(query))
        assert client.root_digest == restarted.root_digest()


class TestCorruptForestSnapshotRejected:
    def _blob(self, shards: int = 3) -> bytes:
        from repro.mtree.persistence import dump_forest

        return dump_forest(build_random_forest(21, shards=shards, ops=60))

    def test_garbage_headers(self):
        from repro.mtree.persistence import load_forest

        for blob in (b"", b"no newline at all",
                     b"forest-snapshot 2 4 4 3\n",
                     b"forest-snapshot 1 4 4\n",
                     b"forest-snapshot 1 4 4 zero\n",
                     b"bplus-snapshot 1 4 0\n"):
            with pytest.raises(PersistenceError):
                load_forest(blob)

    def test_implausible_header_values(self):
        from repro.mtree.persistence import load_forest

        with pytest.raises(PersistenceError, match="implausible"):
            load_forest(b"forest-snapshot 1 2 4 3\n")
        with pytest.raises(PersistenceError, match="implausible"):
            load_forest(b"forest-snapshot 1 4 4 0\n")

    def test_truncated_mid_shard_section(self):
        from repro.mtree.persistence import load_forest

        blob = self._blob()
        with pytest.raises(PersistenceError, match="truncated|cut short"):
            load_forest(blob[: len(blob) - len(blob) // 3])

    def test_shard_count_mismatch_too_few_sections(self):
        """Header claims more shards than the file holds: rejected with
        a message naming both counts."""
        from repro.mtree.persistence import load_forest

        blob = self._blob(shards=3)
        header, rest = blob.split(b"\n", 1)
        doctored = header.rsplit(b" ", 1)[0] + b" 5\n" + rest
        with pytest.raises(PersistenceError,
                           match="expected 5 shard sections"):
            load_forest(doctored)

    def test_shard_count_mismatch_reroutes_keys(self):
        """Header claims *fewer* shards: the sections still parse, but
        the loaded keys no longer route to the shards holding them --
        the invariant check refuses the snapshot instead of silently
        serving wrong-shard proofs."""
        from repro.mtree.persistence import load_forest

        blob = self._blob(shards=3)
        header, rest = blob.split(b"\n", 1)
        doctored = header.rsplit(b" ", 1)[0] + b" 2\n" + rest
        with pytest.raises(PersistenceError,
                           match="invariants|trailing data"):
            load_forest(doctored)

    def test_shard_sections_out_of_order(self):
        from repro.mtree.persistence import load_forest

        blob = self._blob()
        with pytest.raises(PersistenceError, match="out of order"):
            load_forest(blob.replace(b"shard 1 ", b"shard 2 ", 1))

    def test_shard_order_disagrees_with_header(self):
        from repro.mtree.persistence import dump_forest, load_forest
        from repro.mtree.forest import MerkleForest

        forest = MerkleForest(order=5, shards=2, top_order=4)
        forest.insert(b"k", b"v")
        blob = dump_forest(forest)
        doctored = blob.replace(b"forest-snapshot 1 5 4 2",
                                b"forest-snapshot 1 4 4 2")
        with pytest.raises(PersistenceError, match="disagrees"):
            load_forest(doctored)

    def test_trailing_data(self):
        from repro.mtree.persistence import load_forest

        with pytest.raises(PersistenceError, match="trailing data"):
            load_forest(self._blob() + b"extra")
