"""Tests for Merkle-tree snapshots (shape-exact persistence)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mtree.bplus import BPlusTree
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery, DeleteQuery, ClientVerifier
from repro.mtree.persistence import (
    PersistenceError,
    dump_database,
    dump_tree,
    load_database,
    load_tree,
)


def build_random_tree(seed: int, ops: int = 200, order: int = 4) -> BPlusTree:
    rng = random.Random(seed)
    tree = BPlusTree(order=order)
    for step in range(ops):
        key = f"k{rng.randrange(60):03d}".encode()
        if rng.random() < 0.7:
            tree.insert(key, f"v{step}".encode())
        else:
            tree.delete(key)
    return tree


class TestTreeSnapshot:
    def test_roundtrip_preserves_entries(self):
        tree = build_random_tree(1)
        clone = load_tree(dump_tree(tree))
        assert dict(clone.items()) == dict(tree.items())
        assert len(clone) == len(tree)
        assert clone.order == tree.order

    def test_roundtrip_preserves_shape(self):
        """The crucial property: the reloaded tree hashes identically."""
        from repro.mtree.merkle import MerkleBPlusTree

        tree = build_random_tree(2)
        original = MerkleBPlusTree(order=tree.order)
        original._tree = tree
        clone = load_tree(dump_tree(tree))
        restored = MerkleBPlusTree(order=clone.order)
        restored._tree = clone
        assert restored.root_digest() == original.root_digest()

    def test_empty_tree(self):
        tree = BPlusTree(order=5)
        clone = load_tree(dump_tree(tree))
        assert len(clone) == 0
        assert clone.order == 5

    def test_leaf_chain_rebuilt(self):
        tree = build_random_tree(3)
        clone = load_tree(dump_tree(tree))
        assert [k for k, _ in clone.items()] == sorted(clone.keys())
        lo, hi = b"k010", b"k040"
        assert list(clone.range(lo, hi)) == list(tree.range(lo, hi))

    def test_binary_safe(self):
        tree = BPlusTree(order=4)
        tree.insert(b"\x00\xff\n key", b"\xde\xad\xbe\xef\nvalue")
        clone = load_tree(dump_tree(tree))
        assert clone.get(b"\x00\xff\n key") == b"\xde\xad\xbe\xef\nvalue"

    def test_bad_header(self):
        with pytest.raises(PersistenceError):
            load_tree(b"not a snapshot\n")

    def test_truncated(self):
        blob = dump_tree(build_random_tree(4))
        with pytest.raises(PersistenceError):
            load_tree(blob[: len(blob) // 2])

    def test_trailing_data(self):
        blob = dump_tree(build_random_tree(5))
        with pytest.raises(PersistenceError):
            load_tree(blob + b"leaf 0\n")

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), order=st.integers(3, 8))
    def test_roundtrip_property(self, seed, order):
        tree = build_random_tree(seed, ops=80, order=order)
        clone = load_tree(dump_tree(tree))
        clone.check_invariants()
        assert dict(clone.items()) == dict(tree.items())


class TestDatabaseSnapshot:
    def test_client_trust_survives_restart(self):
        """The point of shape-exact persistence: a client's tracked root
        digest still verifies against the reloaded server."""
        db = VerifiedDatabase(order=4)
        client = ClientVerifier(db.root_digest(), order=4)
        rng = random.Random(7)
        for step in range(150):
            key = f"k{rng.randrange(40):03d}".encode()
            query = WriteQuery(key, f"v{step}".encode())
            client.apply(query, db.execute(query))

        blob = dump_database(db)
        restarted = load_database(blob)
        assert restarted.root_digest() == db.root_digest()

        # the client keeps operating against the restarted server
        query = ReadQuery(b"k001")
        answer = client.apply(query, restarted.execute(query))
        assert answer == db.get(b"k001")
        update = WriteQuery(b"k001", b"after restart")
        client.apply(update, restarted.execute(update))
        assert client.root_digest == restarted.root_digest()

    def test_deletes_then_snapshot(self):
        db = VerifiedDatabase(order=3)
        for i in range(30):
            db.execute(WriteQuery(f"k{i:02d}".encode(), b"x"))
        for i in range(0, 30, 2):
            db.execute(DeleteQuery(f"k{i:02d}".encode()))
        restored = load_database(dump_database(db))
        assert restored.root_digest() == db.root_digest()
        assert len(restored) == 15
