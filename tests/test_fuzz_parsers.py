"""Corruption fuzzing of every parser: malformed input must raise the
module's error type -- never crash, hang, or silently succeed with
garbage semantics."""

import random

from repro.mtree.database import VerifiedDatabase, WriteQuery, ReadQuery
from repro.mtree.persistence import PersistenceError, dump_database, load_database
from repro.storage.rcs import RcsError, RevisionStore
from repro.wire import WireError, decode, encode

N_MUTATIONS = 150


def mutations(blob: bytes, seed: int, count: int = N_MUTATIONS):
    """Seeded single-byte mutations plus truncations of a valid blob."""
    rng = random.Random(seed)
    for _ in range(count):
        kind = rng.random()
        data = bytearray(blob)
        if kind < 0.5 and data:
            index = rng.randrange(len(data))
            data[index] ^= 1 << rng.randrange(8)
        elif kind < 0.8:
            data = data[: rng.randrange(len(data) + 1)]
        else:
            index = rng.randrange(len(data) + 1)
            data[index:index] = bytes([rng.randrange(256)])
        yield bytes(data)


class TestRcsFuzz:
    def test_corrupted_stores_never_crash(self):
        store = RevisionStore()
        store.commit(["alpha", "beta"], "alice", "r1", 0)
        store.commit(["alpha", "gamma"], "bob", "r2", 1)
        branch = store.create_branch("1.1")
        store.commit_on_branch(branch, ["branched"], "carol", "b", 2)
        blob = store.serialize()
        survived = 0
        for mutated in mutations(blob, seed=1):
            try:
                clone = RevisionStore.deserialize(mutated)
            except (RcsError, UnicodeDecodeError, ValueError):
                continue
            # a mutation may land in free text (a line's content) and
            # still parse; checkout must then either succeed or reject
            # the corrupted delta chain with RcsError
            try:
                clone.checkout()
                for meta in clone.log():
                    clone.checkout(meta.number)
            except RcsError:
                continue
            survived += 1
        # most corruptions must be rejected outright
        assert survived < N_MUTATIONS / 2


class TestSnapshotFuzz:
    def test_corrupted_snapshots_never_crash(self):
        db = VerifiedDatabase(order=4)
        for i in range(25):
            db.execute(WriteQuery(f"k{i:02d}".encode(), f"v{i}".encode()))
        blob = dump_database(db)
        for mutated in mutations(blob, seed=2):
            try:
                restored = load_database(mutated)
            except (PersistenceError, UnicodeDecodeError, ValueError, AssertionError):
                continue
            # survivors must be structurally valid trees
            restored.mtree.check_invariants()
            restored.root_digest()


class TestWireFuzz:
    def test_corrupted_frames_never_crash(self):
        db = VerifiedDatabase(order=4)
        for i in range(15):
            db.execute(WriteQuery(f"k{i:02d}".encode(), f"v{i}".encode()))
        blob = encode(db.execute(ReadQuery(b"k07")))
        for mutated in mutations(blob, seed=3):
            try:
                decode(mutated)
            except (WireError, UnicodeDecodeError, ValueError, OverflowError):
                continue
            # surviving mutations decoded to *something*; decoding is
            # total over its output domain, nothing further to check
            # (verification happens at the proof layer).

    def test_verification_rejects_surviving_mutants(self):
        """The layered defence: a mutated frame that still decodes must
        then fail proof verification (or be byte-identical)."""
        from repro.mtree.proofs import ProofError, verify_read
        from repro.mtree.database import QueryResult

        db = VerifiedDatabase(order=4)
        for i in range(15):
            db.execute(WriteQuery(f"k{i:02d}".encode(), f"v{i}".encode()))
        root = db.root_digest()
        original = db.execute(ReadQuery(b"k07"))
        blob = encode(original)
        for mutated in mutations(blob, seed=4):
            try:
                decoded = decode(mutated)
            except (WireError, UnicodeDecodeError, ValueError, OverflowError):
                continue
            if not isinstance(decoded, QueryResult) or mutated == blob:
                continue
            try:
                value = verify_read(root, decoded.proof, b"k07")
            except (ProofError, AttributeError, TypeError):
                continue
            # verified mutants must agree with the truth
            assert value == original.answer
