"""Tests for fault localisation (paper future-work item 1)."""

import pytest

from repro.core.scenarios import build_simulation
from repro.crypto.hashing import Digest, hash_bytes
from repro.protocols.localization import (
    Checkpoint,
    CheckpointRing,
    localize_fault,
    prefix_consistent,
)
from repro.protocols.protocol2 import initial_state_tag
from repro.server.attacks import ForkAttack
from repro.simulation.workload import steady_workload


def tag(label: str) -> Digest:
    return hash_bytes(label.encode())


def serial_logs(initial: Digest, ops: list[str], checkpoint_every: int = 1):
    """Simulate honest per-user checkpoint logs for a serial history.

    ``ops`` is the sequence of operating users; state i is a fresh tag.
    """
    states = [initial] + [tag(f"s{i + 1}") for i in range(len(ops))]
    sigma = {user: Digest.zero() for user in set(ops)}
    last = {user: Digest.zero() for user in set(ops)}
    logs = {user: [] for user in set(ops)}
    done = {user: 0 for user in set(ops)}
    for index, user in enumerate(ops):
        sigma[user] = sigma[user] ^ states[index] ^ states[index + 1]
        last[user] = states[index + 1]
        done[user] += 1
        if done[user] % checkpoint_every == 0:
            logs[user].append(Checkpoint(gctr=index + 1, sigma=sigma[user], last=last[user]))
    return logs


class TestCheckpointRing:
    def test_bounded(self):
        ring = CheckpointRing(capacity=3)
        for i in range(10):
            ring.record(i, Digest.zero(), Digest.zero())
        assert len(ring) == 3
        assert [c.gctr for c in ring.items()] == [7, 8, 9]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CheckpointRing(capacity=1)


class TestPrefixConsistency:
    def test_honest_history_consistent_at_every_cutoff(self):
        initial = tag("s0")
        logs = serial_logs(initial, ["a", "b", "a", "c", "b", "b"])
        for cutoff in range(1, 7):
            assert prefix_consistent(initial, logs, cutoff), cutoff

    def test_empty_history(self):
        initial = tag("s0")
        assert prefix_consistent(initial, {"a": [], "b": []}, 5)

    def test_corrupted_suffix_detected(self):
        initial = tag("s0")
        logs = serial_logs(initial, ["a", "b", "a", "b"])
        # corrupt b's final checkpoint: a transition nobody produced
        final = logs["b"][-1]
        logs["b"][-1] = Checkpoint(
            gctr=final.gctr,
            sigma=final.sigma ^ tag("phantom"),
            last=final.last,
        )
        assert prefix_consistent(initial, logs, 3)
        assert not prefix_consistent(initial, logs, 4)


class TestLocalizeFault:
    def test_honest_logs_find_no_fault(self):
        initial = tag("s0")
        logs = serial_logs(initial, ["a", "b", "a", "c"])
        result = localize_fault(initial, logs)
        assert not result.fault_found
        assert result.consistent_upto == 4
        assert result.bracket() is None

    def test_fault_bracketed_exactly(self):
        """Fork after global op 3: user b continues on a phantom branch."""
        initial = tag("s0")
        logs = serial_logs(initial, ["a", "b", "a"])
        # b's 2nd op consumed a forked state the others never saw
        fork_old, fork_new = tag("fork-old"), tag("fork-new")
        b_prev = logs["b"][-1]
        logs["b"].append(Checkpoint(
            gctr=4,
            sigma=b_prev.sigma ^ fork_old ^ fork_new,
            last=fork_new,
        ))
        result = localize_fault(initial, logs)
        assert result.fault_found
        assert result.bracket() == (3, 4)

    def test_window_limits_localization(self):
        """The bounded ring only retains recent checkpoints: a fault
        older than the window cannot be bracketed (but also causes no
        spurious bracket)."""
        initial = tag("s0")
        ops = ["a", "b"] * 12
        logs = serial_logs(initial, ops)
        # corrupt an EARLY checkpoint of b, then simulate the ring
        # evicting everything before global op 12
        target = logs["b"][0]
        logs["b"][0] = Checkpoint(gctr=target.gctr,
                                  sigma=target.sigma ^ tag("phantom"),
                                  last=target.last)
        # fault is visible while the early checkpoints are retained
        assert localize_fault(initial, logs).fault_found
        windowed = {u: [c for c in log if c.gctr > 12] for u, log in logs.items()}
        result = localize_fault(initial, windowed)
        # the corrupted sigma persists in later checkpoints of b, so the
        # inconsistency is still detected -- but the bracket can only
        # point at the window edge, not the true op
        assert result.fault_found
        assert result.bracket()[1] >= 13


class TestEndToEndLocalization:
    def test_fork_localized_in_simulation(self):
        """Run the partition attack with checkpointing clients, pool the
        logs after the alarm, and check the bracket contains the true
        fault ordinal the oracle recorded."""
        workload = steady_workload(3, 16, spacing=4, keyspace=6,
                                   write_ratio=0.6, seed=5)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        simulation = build_simulation("protocol2", workload, attack=attack,
                                      k=4, seed=5, keep_checkpoints=True)
        report = simulation.execute()
        assert report.detected
        true_fault_ctr = simulation.server.observed_deviation_ctr
        assert true_fault_ctr is not None

        logs = {
            user.user_id: user.client.checkpoints.items()
            for user in simulation.users
        }
        # The initial state tag is common knowledge: recompute it from a
        # pristine database built the same way the scenario builder did.
        from repro.core.scenarios import populate_database
        from repro.mtree.database import VerifiedDatabase

        pristine = VerifiedDatabase(order=8)
        populate_database(pristine, workload)
        initial = initial_state_tag(pristine.root_digest())

        result = localize_fault(initial, logs)
        assert result.fault_found
        lower, upper = result.bracket()
        # The bracket lives in register-counter space while the oracle
        # counts arrival-order ordinals; on a fork the victim's branch
        # counter lags the global ordinal by the main-branch operations
        # that raced it, so allow a few operations of slack.
        assert lower <= true_fault_ctr + 1
        assert upper >= true_fault_ctr - 3

    def test_honest_simulation_localizes_nothing(self):
        workload = steady_workload(3, 10, seed=6)
        simulation = build_simulation("protocol2", workload, k=100, seed=6,
                                      keep_checkpoints=True)
        report = simulation.execute()
        assert not report.detected
        from repro.mtree.database import VerifiedDatabase
        from repro.core.scenarios import populate_database
        from repro.protocols.protocol2 import initial_state_tag

        pristine = VerifiedDatabase(order=8)
        populate_database(pristine, workload)
        logs = {u.user_id: u.client.checkpoints.items() for u in simulation.users}
        result = localize_fault(initial_state_tag(pristine.root_digest()), logs)
        assert not result.fault_found
