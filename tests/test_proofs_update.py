"""Tests for update verification objects: client-side replay of
inserts/deletes (including splits, borrows, merges, root changes)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import hash_bytes
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    ProofError,
    SiblingPair,
    UpdateProof,
    build_update_proof,
    derive_update_roots,
    verify_update,
)


def make_tree(n, order=4):
    mtree = MerkleBPlusTree(order=order)
    for i in range(n):
        mtree.insert(f"k{i:03d}".encode(), f"v{i}".encode())
    return mtree


def replayed_insert(mtree, key, value):
    """Build proof, verify client-side, apply server-side; return both roots."""
    old_root = mtree.root_digest()
    proof = build_update_proof(mtree, "insert", key)
    derived_new = verify_update(old_root, proof, mtree.order, key, value)
    mtree.insert(key, value)
    return derived_new, mtree.root_digest()


def replayed_delete(mtree, key):
    old_root = mtree.root_digest()
    proof = build_update_proof(mtree, "delete", key)
    derived_new = verify_update(old_root, proof, mtree.order, key)
    mtree.delete(key)
    return derived_new, mtree.root_digest()


class TestInsertReplay:
    def test_fresh_insert(self):
        mtree = make_tree(10)
        derived, actual = replayed_insert(mtree, b"k500", b"new")
        assert derived == actual

    def test_overwrite(self):
        mtree = make_tree(10)
        derived, actual = replayed_insert(mtree, b"k005", b"overwritten")
        assert derived == actual

    def test_insert_into_empty_tree(self):
        mtree = MerkleBPlusTree(order=4)
        derived, actual = replayed_insert(mtree, b"first", b"!")
        assert derived == actual

    def test_leaf_split(self):
        mtree = MerkleBPlusTree(order=3)
        for i in range(3):
            mtree.insert(f"a{i}".encode(), b"x")
        derived, actual = replayed_insert(mtree, b"a9", b"split-trigger")
        assert derived == actual

    def test_root_split_grows_height(self):
        mtree = MerkleBPlusTree(order=3)
        keys = [f"k{i:02d}".encode() for i in range(2)]
        for key in keys:
            mtree.insert(key, b"x")
        height_before = mtree.height()
        derived, actual = replayed_insert(mtree, b"k99", b"x")
        assert derived == actual
        assert mtree.height() >= height_before

    def test_cascading_splits(self):
        mtree = MerkleBPlusTree(order=3)
        for i in range(40):
            derived, actual = replayed_insert(mtree, f"k{i:03d}".encode(), b"x")
            assert derived == actual
            mtree.check_invariants()


class TestDeleteReplay:
    def test_simple_delete(self):
        mtree = make_tree(10)
        derived, actual = replayed_delete(mtree, b"k004")
        assert derived == actual

    def test_delete_to_empty(self):
        mtree = MerkleBPlusTree(order=4)
        mtree.insert(b"only", b"x")
        derived, actual = replayed_delete(mtree, b"only")
        assert derived == actual
        assert len(mtree) == 0

    def test_delete_with_borrow_and_merge(self):
        mtree = make_tree(30, order=3)
        rng = random.Random(5)
        keys = [f"k{i:03d}".encode() for i in range(30)]
        rng.shuffle(keys)
        for key in keys:
            derived, actual = replayed_delete(mtree, key)
            assert derived == actual, key
            mtree.check_invariants()

    def test_root_collapse(self):
        mtree = make_tree(5, order=4)
        for i in range(5):
            derived, actual = replayed_delete(mtree, f"k{i:03d}".encode())
            assert derived == actual

    def test_delete_absent_key_rejected_in_replay(self):
        mtree = make_tree(10)
        proof = build_update_proof(mtree, "delete", b"k999")
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), proof, mtree.order, b"k999")


class TestRejections:
    def test_wrong_old_root(self):
        mtree = make_tree(10)
        proof = build_update_proof(mtree, "insert", b"k500")
        with pytest.raises(ProofError):
            verify_update(hash_bytes(b"bogus"), proof, mtree.order, b"k500", b"v")

    def test_insert_requires_value(self):
        mtree = make_tree(10)
        proof = build_update_proof(mtree, "insert", b"k500")
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), proof, mtree.order, b"k500")

    def test_delete_must_not_carry_value(self):
        mtree = make_tree(10)
        proof = build_update_proof(mtree, "delete", b"k004")
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), proof, mtree.order, b"k004", b"v")

    def test_key_mismatch(self):
        mtree = make_tree(10)
        proof = build_update_proof(mtree, "insert", b"k500")
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), proof, mtree.order, b"k501", b"v")

    def test_unknown_operation_rejected_at_build(self):
        mtree = make_tree(10)
        with pytest.raises(ValueError):
            build_update_proof(mtree, "upsert", b"k000")

    def test_missing_sibling_detected(self):
        """Strip the siblings from a delete proof that needs rebalancing;
        the replay must refuse rather than guess."""
        mtree = make_tree(9, order=3)
        key = b"k004"
        proof = build_update_proof(mtree, "delete", key)
        stripped = UpdateProof(
            operation=proof.operation,
            key=proof.key,
            internals=proof.internals,
            leaf=proof.leaf,
            siblings=tuple(SiblingPair(left=None, right=None) for _ in proof.siblings),
        )
        # Either the replay needs a sibling (ProofError) or, if this
        # particular delete required no rebalance, roots must agree.
        try:
            derived = verify_update(mtree.root_digest(), stripped, mtree.order, key)
        except ProofError:
            return
        mtree.delete(key)
        assert derived == mtree.root_digest()

    def test_tampered_sibling_rejected(self):
        mtree = make_tree(9, order=3)
        proof = build_update_proof(mtree, "delete", b"k004")
        has_leaf_sibling = proof.siblings and (
            proof.siblings[-1].left is not None or proof.siblings[-1].right is not None
        )
        if not has_leaf_sibling:
            pytest.skip("no sibling at leaf level for this shape")
        last = proof.siblings[-1]
        side = last.left or last.right
        tampered_sibling = type(side)(
            keys=side.keys,
            entry_digests=tuple(reversed(side.entry_digests)),
        )
        if side.keys == tuple(reversed(side.keys)):
            pytest.skip("palindromic sibling")
        pairs = list(proof.siblings)
        if last.left is not None:
            pairs[-1] = SiblingPair(left=tampered_sibling, right=last.right)
        else:
            pairs[-1] = SiblingPair(left=last.left, right=tampered_sibling)
        forged = UpdateProof(
            operation=proof.operation, key=proof.key, internals=proof.internals,
            leaf=proof.leaf, siblings=tuple(pairs),
        )
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), forged, mtree.order, b"k004")

    def test_sibling_length_mismatch(self):
        mtree = make_tree(20, order=3)
        proof = build_update_proof(mtree, "delete", b"k004")
        forged = UpdateProof(
            operation=proof.operation, key=proof.key, internals=proof.internals,
            leaf=proof.leaf, siblings=proof.siblings[:-1],
        )
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), forged, mtree.order, b"k004")

    def test_derive_update_roots(self):
        mtree = make_tree(10)
        proof = build_update_proof(mtree, "insert", b"k003")
        old_root, new_root = derive_update_roots(proof, mtree.order, b"k003", b"changed")
        assert old_root == mtree.root_digest()
        mtree.insert(b"k003", b"changed")
        assert new_root == mtree.root_digest()


@st.composite
def update_sequences(draw):
    keys = st.integers(min_value=0, max_value=40).map(lambda i: f"key{i:02d}".encode())
    ops = st.one_of(
        st.tuples(st.just("insert"), keys, st.binary(min_size=0, max_size=4)),
        st.tuples(st.just("delete"), keys, st.just(b"")),
    )
    return draw(st.lists(ops, max_size=60))


class TestReplayEquivalenceProperty:
    """The central soundness property: for ANY sequence of operations the
    client-side replay derives exactly the root the honest server gets."""

    @settings(max_examples=50, deadline=None)
    @given(order=st.integers(min_value=3, max_value=7), ops=update_sequences())
    def test_replay_always_matches(self, order, ops):
        mtree = MerkleBPlusTree(order=order)
        present = set()
        for kind, key, value in ops:
            if kind == "delete" and key not in present:
                continue
            old_root = mtree.root_digest()
            proof = build_update_proof(mtree, kind, key)
            if kind == "insert":
                derived = verify_update(old_root, proof, order, key, value)
                mtree.insert(key, value)
                present.add(key)
            else:
                derived = verify_update(old_root, proof, order, key)
                mtree.delete(key)
                present.discard(key)
            assert derived == mtree.root_digest()
            mtree.check_invariants()
