"""Tests for range verification objects, especially completeness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import Digest, hash_bytes
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    FringeNode,
    ProofError,
    RangeProof,
    build_range_proof,
    implied_root_for_range,
    verify_range,
)


def make_tree(n=60, order=4):
    mtree = MerkleBPlusTree(order=order)
    for i in range(n):
        mtree.insert(f"k{i:03d}".encode(), f"v{i}".encode())
    return mtree


class TestCorrectness:
    def test_simple_range(self):
        mtree = make_tree()
        proof = build_range_proof(mtree, b"k010", b"k020")
        entries = verify_range(mtree.root_digest(), proof)
        assert [k for k, _ in entries] == [f"k{i:03d}".encode() for i in range(10, 21)]

    def test_empty_range(self):
        mtree = make_tree()
        proof = build_range_proof(mtree, b"a", b"b")
        assert verify_range(mtree.root_digest(), proof) == ()

    def test_full_range(self):
        mtree = make_tree(30)
        proof = build_range_proof(mtree, b"", b"\xff")
        assert len(verify_range(mtree.root_digest(), proof)) == 30

    def test_single_key_range(self):
        mtree = make_tree()
        proof = build_range_proof(mtree, b"k007", b"k007")
        entries = verify_range(mtree.root_digest(), proof)
        assert entries == ((b"k007", b"v7"),)

    def test_empty_tree(self):
        mtree = MerkleBPlusTree()
        proof = build_range_proof(mtree, b"a", b"z")
        assert verify_range(mtree.root_digest(), proof) == ()

    def test_inverted_range_rejected_at_build(self):
        mtree = make_tree()
        with pytest.raises(ValueError):
            build_range_proof(mtree, b"z", b"a")

    def test_implied_root(self):
        mtree = make_tree()
        proof = build_range_proof(mtree, b"k000", b"k030")
        assert implied_root_for_range(proof) == mtree.root_digest()

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=80),
        lo=st.integers(min_value=0, max_value=90),
        span=st.integers(min_value=0, max_value=50),
        order=st.integers(min_value=3, max_value=8),
    )
    def test_random_ranges_roundtrip(self, n, lo, span, order):
        mtree = make_tree(n, order)
        low, high = f"k{lo:03d}".encode(), f"k{lo + span:03d}".encode()
        proof = build_range_proof(mtree, low, high)
        entries = verify_range(mtree.root_digest(), proof)
        expected = tuple(mtree.range(low, high))
        assert entries == expected


class TestCompleteness:
    """A malicious server must not be able to silently drop rows."""

    def _drop_one_leaf(self, node):
        """Replace the first revealed leaf inside the fringe with its bare
        digest (hiding its rows) -- what a row-dropping server would try."""
        if isinstance(node, FringeNode):
            new_children = []
            dropped = False
            for child in node.children:
                if not dropped and not isinstance(child, Digest):
                    if isinstance(child, FringeNode):
                        replaced, dropped = self._drop_one_leaf(child)
                        new_children.append(replaced)
                    else:
                        # compute the honest digest of the hidden leaf
                        new_children.append(child.digest())
                        dropped = True
                else:
                    new_children.append(child)
            return FringeNode(keys=node.keys, children=tuple(new_children)), dropped
        return node, False

    def test_hidden_subtree_rejected(self):
        mtree = make_tree(60)
        proof = build_range_proof(mtree, b"k010", b"k040")
        forged_root, dropped = self._drop_one_leaf(proof.root)
        assert dropped
        forged = RangeProof(low=proof.low, high=proof.high, root=forged_root, entries=proof.entries)
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)

    def test_dropped_entries_rejected(self):
        mtree = make_tree(60)
        proof = build_range_proof(mtree, b"k010", b"k040")
        forged = RangeProof(low=proof.low, high=proof.high, root=proof.root,
                            entries=proof.entries[:-3])
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)

    def test_tampered_entry_value_rejected(self):
        mtree = make_tree(60)
        proof = build_range_proof(mtree, b"k010", b"k040")
        entries = list(proof.entries)
        entries[2] = (entries[2][0], b"EVIL")
        forged = RangeProof(low=proof.low, high=proof.high, root=proof.root,
                            entries=tuple(entries))
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)

    def test_extra_entry_rejected(self):
        mtree = make_tree(60)
        proof = build_range_proof(mtree, b"k010", b"k012")
        forged = RangeProof(low=proof.low, high=proof.high, root=proof.root,
                            entries=proof.entries + ((b"k011a", b"ghost"),))
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)

    def test_wrong_root_rejected(self):
        mtree = make_tree(60)
        proof = build_range_proof(mtree, b"k010", b"k040")
        with pytest.raises(ProofError):
            verify_range(hash_bytes(b"not the root"), proof)

    def test_malformed_low_high_rejected(self):
        mtree = make_tree(10)
        proof = build_range_proof(mtree, b"k001", b"k005")
        forged = RangeProof(low=b"z", high=b"a", root=proof.root, entries=proof.entries)
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)
