"""Framing robustness: a peer dying mid-frame must surface as exactly
one clean :class:`FramingError`, never a ``struct.error`` or short-read
garbage, at *both* truncation points (mid-length-prefix and
mid-payload)."""

import socket
import struct

import pytest

from repro.net.framing import FramingError, MAX_FRAME, recv_message, send_message
from repro.protocols.base import Request
from repro.mtree.database import ReadQuery
from repro.wire import encode


def _pair():
    return socket.socketpair()


class TestTruncation:
    def test_clean_eof_at_frame_boundary_is_none(self):
        left, right = _pair()
        left.close()
        assert recv_message(right) is None
        right.close()

    def test_truncated_mid_length_prefix(self):
        """Peer dies after sending 2 of the 4 header bytes."""
        left, right = _pair()
        left.sendall(b"\x00\x00")
        left.close()
        with pytest.raises(FramingError, match="length prefix"):
            recv_message(right)
        right.close()

    def test_truncated_mid_payload(self):
        """Peer announces a frame, delivers only part of it, dies."""
        left, right = _pair()
        payload = encode(Request(query=ReadQuery(b"k"), extras={"user": "a"}))
        left.sendall(struct.pack(">I", len(payload)) + payload[: len(payload) // 2])
        left.close()
        with pytest.raises(FramingError, match="payload"):
            recv_message(right)
        right.close()

    def test_single_byte_then_eof(self):
        left, right = _pair()
        left.sendall(b"\x7f")
        left.close()
        with pytest.raises(FramingError):
            recv_message(right)
        right.close()

    def test_no_struct_error_ever_leaks(self):
        """Whatever prefix of a valid stream the peer manages to send,
        the reader raises FramingError (or returns the message/None) --
        struct.error never escapes."""
        full = struct.pack(">I", 5) + encode(b"abc")[:5]
        for cut in range(len(full)):
            left, right = _pair()
            left.sendall(full[:cut])
            left.close()
            try:
                result = recv_message(right)
                assert cut == 0 and result is None
            except FramingError:
                pass
            finally:
                right.close()


class TestBounds:
    def test_oversized_announcement_rejected(self):
        left, right = _pair()
        left.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(FramingError, match="byte frame"):
            recv_message(right)
        left.close()
        right.close()

    def test_oversized_send_rejected(self):
        left, right = _pair()
        with pytest.raises(FramingError, match="exceeds"):
            send_message(left, b"x" * (MAX_FRAME + 1))
        left.close()
        right.close()


class TestRoundtrip:
    def test_message_roundtrip_over_socketpair(self):
        left, right = _pair()
        message = Request(query=ReadQuery(b"key"), extras={"user": "alice", "rid": "alice:0"})
        send_message(left, message)
        assert recv_message(right) == message
        left.close()
        right.close()
