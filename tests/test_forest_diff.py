"""Differential harness: the Merkle forest is observationally identical
to the single tree.

The forest changes the *shape* of the committed state (per-shard trees
plus a top tree) and the *format* of every verification object, but it
must not change anything a user can observe: answers, verification
verdicts, or -- critically -- Byzantine detection.  These tests drive
identical operation sequences through single-tree and forest-backed
stores (S in {1, 2, 8}) at three levels:

* the database layer (``VerifiedDatabase`` + ``ClientVerifier``):
  thousands of randomised ops, every VO verified, answers compared
  op-for-op against the single-tree reference;
* the TCP layer (``serve_in_thread`` + ``RemoteClient``): the wire
  codec, framing, and sync machinery over real sockets;
* the adversarial layer: every attack in ``bench_byzantine``'s gallery
  replayed against single-tree and forest servers, asserting detection
  in both with the *same first-deviation operation* (the ``WireAttack``
  ground truth) and the same detection operation -- no attack may
  become easier or harder to catch because the store is sharded.
"""

import random

import pytest

from repro.core.scenarios import make_keys
from repro.mtree.database import (
    ClientVerifier,
    DeleteQuery,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.mtree.forest import StoreSpec
from repro.net import (
    IntegrityError,
    RemoteClient,
    WireAttack,
    count_sync_check,
    serve_in_thread,
    sync_check,
)
from repro.net.client import RemoteClientP1
from repro.protocols.base import ServerState
from repro.protocols.protocol1 import Protocol1Server, bootstrap_server_state
from repro.server.attacks import (
    CompositeAttack,
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)

ORDER = 4
SHARD_COUNTS = (1, 2, 8)


# -- database-level differential -------------------------------------------

def _op_sequence(seed: int, count: int):
    """A deterministic mixed workload (reads, writes, deletes, scans)."""
    rng = random.Random(seed)
    ops = []
    live = set()
    for _ in range(count):
        roll = rng.random()
        key = b"key-%04d" % rng.randrange(120)
        if roll < 0.45 or not live:
            ops.append(WriteQuery(key=key, value=b"val-%06d" % rng.getrandbits(20)))
            live.add(key)
        elif roll < 0.75:
            ops.append(ReadQuery(key=rng.choice(sorted(live))
                                 if rng.random() < 0.8 else key))
        elif roll < 0.9:
            low = b"key-%04d" % rng.randrange(100)
            high = low + b"\xff"
            if rng.random() < 0.5:
                high = b"key-%04d" % (rng.randrange(100) + 20)
            ops.append(RangeQuery(low=min(low, high), high=max(low, high)))
        else:
            victim = rng.choice(sorted(live))
            ops.append(DeleteQuery(key=victim))
            live.discard(victim)
    return ops


def _run_verified(ops, shards: int):
    """Apply ``ops`` through a fully verifying client; every VO checks
    or ``ClientVerifier.apply`` raises.  Returns the answer trace."""
    database = VerifiedDatabase(order=ORDER, shards=shards)
    verifier = ClientVerifier(database.root_digest(), order=database.spec)
    answers = []
    for query in ops:
        if isinstance(query, DeleteQuery) and database.get(query.key) is None:
            answers.append("skip-missing-delete")
            continue
        result = database.execute(query)
        answers.append(verifier.apply(query, result))
    assert verifier.root_digest == database.root_digest()
    return answers


class TestDatabaseDifferential:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [11, 37])
    def test_forest_answers_identical_to_single_tree(self, shards, seed):
        ops = _op_sequence(seed, 400)
        reference = _run_verified(ops, shards=1)
        forest = _run_verified(ops, shards=shards)
        assert forest == reference

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_contents_identical_after_workload(self, shards):
        ops = _op_sequence(5, 300)
        single = VerifiedDatabase(order=ORDER, shards=1)
        forest = VerifiedDatabase(order=ORDER, shards=shards)
        for query in ops:
            if isinstance(query, DeleteQuery) and single.get(query.key) is None:
                continue
            single.execute(query)
            forest.execute(query)
        assert list(forest.mtree.items()) == list(single.mtree.items())


# -- TCP-level differential ------------------------------------------------

def _client_order(shards: int):
    """What a client is told about the store: a bare order for the
    single tree (the pre-forest wire contract), the full spec otherwise."""
    return StoreSpec(order=ORDER, shards=shards) if shards > 1 else ORDER


def _p2_wire_run(shards: int, attack_factory=None, *, n_users=3, k=4,
                 steps=14):
    """The ``bench_byzantine.run_p2`` loop, chaos-free and deterministic:
    round-robin fleet, periodic register syncs, final closing sync.
    Returns the observable trace and the detection record."""
    users = [f"u{i}" for i in range(n_users)]
    wire = WireAttack(attack_factory()) if attack_factory else None
    server = serve_in_thread(order=ORDER, shards=shards, attack=wire)
    replies = []
    detection = None
    global_op = 0
    try:
        host, port = server.address
        genesis = server.initial_root_digest()
        clients = {
            user: RemoteClient(host, port, user, genesis,
                               order=_client_order(shards))
            for user in users
        }
        try:
            for step in range(steps):
                for user in users:
                    if detection:
                        break
                    global_op += 1
                    client = clients[user]
                    try:
                        if step % 3 == 2:
                            replies.append(
                                client.get(f"{user}-{(step - 1) % 5}".encode()))
                        else:
                            client.put(f"{user}-{step % 5}".encode(),
                                       f"{user}:{step}".encode())
                            replies.append("ack")
                    except IntegrityError:
                        detection = ("response", global_op)
                    if not detection and global_op % (k * n_users) == 0:
                        registers = {u: c.registers()
                                     for u, c in clients.items()}
                        if not sync_check(genesis, registers):
                            detection = ("sync", global_op)
                if detection:
                    break
            if not detection:
                registers = {u: c.registers() for u, c in clients.items()}
                if not sync_check(genesis, registers):
                    detection = ("sync", global_op)
        finally:
            for client in clients.values():
                client.close()
    finally:
        server.stop()
    return {
        "replies": replies,
        "detection": detection,
        "deviation_op": wire.first_deviation_op if wire else None,
    }


def _p1_wire_run(shards: int, attack_factory=None, *, k=4, steps=12):
    """Protocol I differential run (alice elected, then round-robin)."""
    users = ["alice", "bob"]
    keys = make_keys(users, seed=4096)
    wire = WireAttack(attack_factory()) if attack_factory else None
    state = ServerState(database=VerifiedDatabase(order=ORDER, shards=shards))
    protocol = Protocol1Server()
    protocol.initialize(state)
    bootstrap_server_state(state, keys.signers["alice"])
    server = serve_in_thread(order=ORDER, protocol=protocol, state=state,
                             block_timeout=5.0, attack=wire)
    replies = []
    detection = None
    global_op = 0
    try:
        host, port = server.address
        clients = {
            user: RemoteClientP1(host, port, user, keys.signers[user],
                                 keys.verifier, order=_client_order(shards))
            for user in users
        }
        try:
            for step in range(steps):
                for user in users:
                    if detection:
                        break
                    global_op += 1
                    client = clients[user]
                    try:
                        if step % 3 == 2:
                            replies.append(
                                client.get(f"{user}-{(step - 1) % 5}".encode()))
                        else:
                            client.put(f"{user}-{step % 5}".encode(),
                                       f"{user}:{step}".encode())
                            replies.append("ack")
                    except IntegrityError:
                        detection = ("response", global_op)
                    if not detection and global_op % (k * len(users)) == 0:
                        counts = {u: c.counts() for u, c in clients.items()}
                        if not count_sync_check(counts):
                            detection = ("count-sync", global_op)
                if detection:
                    break
            if not detection:
                counts = {u: c.counts() for u, c in clients.items()}
                if not count_sync_check(counts):
                    detection = ("count-sync", global_op)
        finally:
            for client in clients.values():
                client.close()
    finally:
        server.stop()
    return {
        "replies": replies,
        "detection": detection,
        "deviation_op": wire.first_deviation_op if wire else None,
    }


class TestTcpDifferential:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_honest_p2_replies_identical_and_synced(self, shards):
        reference = _p2_wire_run(1)
        run = _p2_wire_run(shards)
        assert run["detection"] is None, "false positive in forest mode"
        assert run["replies"] == reference["replies"]

    @pytest.mark.parametrize("shards", (2, 8))
    def test_honest_p1_replies_identical_and_synced(self, shards):
        reference = _p1_wire_run(1)
        run = _p1_wire_run(shards)
        assert run["detection"] is None, "false positive in forest mode"
        assert run["replies"] == reference["replies"]


# -- attack-gallery parity -------------------------------------------------
#
# The galleries below mirror benchmarks/bench_byzantine.py exactly
# (names, victims, trigger rounds) so the CI campaign and this harness
# stay in lock-step.

P2_ATTACKS = [
    ("p2-fork", lambda: ForkAttack(victims=["u1"], fork_round=10)),
    ("p2-drop-commit", lambda: DropCommitAttack(victim="u1", drop_round=10)),
    ("p2-stale-root", lambda: StaleRootReplayAttack(victim="u1",
                                                    freeze_round=10)),
    ("p2-tamper", lambda: TamperValueAttack(victim="u0", tamper_round=6)),
    ("p2-tamper-forged", lambda: TamperValueAttack(victim="u0",
                                                   tamper_round=6,
                                                   forge_proof=True)),
    ("p2-counter-replay", lambda: CounterReplayAttack(victim="u0",
                                                      replay_round=10)),
    ("p2-composite", lambda: CompositeAttack([
        ForkAttack(victims=["u2"], fork_round=12),
        TamperValueAttack(victim="u0", tamper_round=18),
    ])),
]

P1_ATTACKS = [
    ("p1-fork", lambda: ForkAttack(victims=["bob"], fork_round=8)),
    ("p1-stale-root", lambda: StaleRootReplayAttack(victim="bob",
                                                    freeze_round=8)),
    ("p1-sig-forge", lambda: SignatureForgeAttack(forge_round=8)),
    ("p1-tamper", lambda: TamperValueAttack(victim="alice", tamper_round=8)),
    ("p1-counter-replay", lambda: CounterReplayAttack(victim="alice",
                                                      replay_round=8)),
]


class TestAttackGalleryParity:
    @pytest.mark.parametrize("name,factory", P2_ATTACKS,
                             ids=[n for n, _ in P2_ATTACKS])
    def test_p2_attack_detected_identically(self, name, factory):
        reference = _p2_wire_run(1, factory)
        forest = _p2_wire_run(8, factory)
        assert reference["detection"] is not None, f"{name} missed (single)"
        assert forest["detection"] is not None, f"{name} missed (forest)"
        assert forest["deviation_op"] == reference["deviation_op"], name
        assert forest["detection"] == reference["detection"], name

    @pytest.mark.parametrize("name,factory", P1_ATTACKS,
                             ids=[n for n, _ in P1_ATTACKS])
    def test_p1_attack_detected_identically(self, name, factory):
        reference = _p1_wire_run(1, factory)
        forest = _p1_wire_run(8, factory)
        assert reference["detection"] is not None, f"{name} missed (single)"
        assert forest["detection"] is not None, f"{name} missed (forest)"
        assert forest["deviation_op"] == reference["deviation_op"], name
        assert forest["detection"] == reference["detection"], name

    @pytest.mark.parametrize("shards", (2, 8))
    def test_forged_forest_tamper_detected_at_two_shard_counts(self, shards):
        """The strongest forgery -- a fully re-chained two-level VO --
        is internally consistent, so Protocol II can only catch it where
        forged roots meet honest ones: the register sync.  It must be
        caught there for every shard count."""
        factory = lambda: TamperValueAttack(victim="u0", tamper_round=4,
                                            forge_proof=True)
        run = _p2_wire_run(shards, factory, steps=10)
        assert run["deviation_op"] is not None
        assert run["detection"] is not None
