"""Property tests pinning the hot-path fast code to slow references.

The perf pass (int-based digest XOR, per-entry leaf digest caching,
CRT signing) must be *invisible* semantically: each fast path is
checked here against the straightforward implementation it replaced.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import rsa
from repro.crypto.hashing import (
    DIGEST_SIZE,
    Digest,
    hash_leaf,
    hash_leaf_node,
    hash_state,
    hash_tagged_state,
    xor_all,
)
from repro.mtree.merkle import MerkleBPlusTree

digests = st.binary(min_size=DIGEST_SIZE, max_size=DIGEST_SIZE).map(Digest)


def xor_bytewise(a: Digest, b: Digest) -> Digest:
    """The byte-wise reference the int fast path replaced."""
    return Digest(bytes(x ^ y for x, y in zip(a.value, b.value)))


class TestDigestIntXor:
    @given(digests, digests)
    def test_matches_bytewise_reference(self, a, b):
        assert a ^ b == xor_bytewise(a, b)
        assert (a ^ b).value == xor_bytewise(a, b).value

    @given(digests)
    def test_identity(self, a):
        assert a ^ Digest.zero() == a
        assert Digest.zero() ^ a == a

    @given(digests)
    def test_involution(self, a):
        assert a ^ a == Digest.zero()
        assert not (a ^ a)

    @given(digests, digests, digests)
    def test_associativity_and_commutativity(self, a, b, c):
        assert (a ^ b) ^ c == a ^ (b ^ c)
        assert a ^ b == b ^ a

    @given(st.lists(digests, max_size=16))
    def test_xor_all_matches_pairwise_fold(self, items):
        total = Digest.zero()
        for item in items:
            total = xor_bytewise(total, item)
        assert xor_all(items) == total

    @given(digests)
    def test_int_bytes_round_trip(self, a):
        assert Digest(a.value) == a
        assert a.as_int() == int.from_bytes(a.value, "big")
        assert Digest.from_hex(a.hex()) == a


class TestStateHashMemoisation:
    @given(digests, st.integers(min_value=0, max_value=2**32), st.text(max_size=8))
    def test_tagged_state_is_stable(self, root, ctr, user):
        assert hash_tagged_state(root, ctr, user) == hash_tagged_state(root, ctr, user)

    @given(digests, st.integers(min_value=0, max_value=2**32))
    def test_state_is_stable(self, root, ctr):
        assert hash_state(root, ctr) == hash_state(root, ctr)

    def test_negative_counter_still_rejected(self):
        root = Digest.zero()
        for fn in (lambda: hash_state(root, -1),
                   lambda: hash_tagged_state(root, -1, "u")):
            try:
                fn()
            except ValueError:
                continue
            raise AssertionError("negative counter accepted")


def full_leaf_recompute(tree: MerkleBPlusTree) -> Digest:
    """Root digest recomputed from scratch, ignoring every cache."""

    def recompute(node):
        from repro.crypto.hashing import hash_internal_node

        if node.is_leaf:
            return hash_leaf_node(
                [hash_leaf(k, v) for k, v in zip(node.keys, node.values)])
        return hash_internal_node(
            list(node.keys), [recompute(child) for child in node.children])

    return recompute(tree.tree.root)


class TestIncrementalLeafDigests:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=20, max_value=120))
    def test_cache_equals_full_recompute_after_random_ops(self, seed, operations):
        rng = random.Random(seed)
        tree = MerkleBPlusTree(order=4)
        live = set()
        for _ in range(operations):
            key = b"k%03d" % rng.randrange(48)
            if live and rng.random() < 0.35:
                victim = rng.choice(sorted(live))
                tree.delete(victim)
                live.discard(victim)
            else:
                tree.insert(key, rng.randbytes(8))
                live.add(key)
            assert tree.root_digest() == full_leaf_recompute(tree)
        tree.check_invariants()

    def test_update_rehashes_only_touched_path(self):
        tree = MerkleBPlusTree(order=4)
        for index in range(64):
            tree.insert(b"k%03d" % index, b"v")
        tree.root_digest()
        before = tree.digest_recomputations
        tree.insert(b"k000", b"v2")  # overwrite: one leaf entry changes
        tree.root_digest()
        recomputed = tree.digest_recomputations - before
        assert recomputed <= tree.height()  # only the dirty path

    def test_clone_is_independent(self):
        tree = MerkleBPlusTree(order=4)
        for index in range(32):
            tree.insert(b"k%03d" % index, b"v")
        root = tree.root_digest()
        twin = tree.clone()
        assert twin.root_digest() == root
        twin.insert(b"k000", b"changed")
        assert twin.root_digest() != root
        assert tree.root_digest() == root
        tree.check_invariants()
        twin.tree.check_invariants()


class TestCrtSigning:
    def test_crt_matches_schoolbook_pow(self):
        key = rsa.generate_keypair(bits=512, seed=7)
        assert key.has_crt
        plain = rsa.PrivateKey(public=key.public, exponent=key.exponent)
        assert not plain.has_crt
        for index in range(8):
            digest = hash_leaf(b"crt", b"%d" % index)
            fast = rsa.sign_digest(key, digest)
            slow = rsa.sign_digest(plain, digest)
            assert fast == slow
            assert rsa.verify_digest(key.public, digest, fast)

    def test_crt_parameters_consistent(self):
        key = rsa.generate_keypair(bits=512, seed=8)
        assert key.p * key.q == key.public.modulus
        assert key.dp == key.exponent % (key.p - 1)
        assert key.dq == key.exponent % (key.q - 1)
        assert (key.qinv * key.q) % key.p == 1

    def test_seeded_keypair_cache_returns_same_object(self):
        a = rsa.generate_keypair(bits=512, seed=99)
        b = rsa.generate_keypair(bits=512, seed=99)
        assert a is b
        c = rsa.generate_keypair(bits=512, seed=100)
        assert c is not a

    def test_verify_cache_rejects_tampered_signature(self):
        key = rsa.generate_keypair(bits=512, seed=101)
        digest = hash_leaf(b"k", b"v")
        signature = rsa.sign_digest(key, digest)
        assert rsa.verify_digest(key.public, digest, signature)
        tampered = bytes([signature[0] ^ 1]) + signature[1:]
        assert not rsa.verify_digest(key.public, digest, tampered)
        other = hash_leaf(b"k", b"other")
        assert not rsa.verify_digest(key.public, other, signature)
