"""Tests for failure injection (future-work item 3): lossy links under
ARQ and crash-recovery users."""

import random

import pytest

from repro.core.scenarios import build_simulation
from repro.server.attacks import ForkAttack
from repro.simulation.channels import Network
from repro.simulation.faults import LossyNetwork, crash_schedule
from repro.simulation.workload import steady_workload


class TestLossyNetwork:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LossyNetwork(user_ids=["a"], loss_rate=1.0)
        with pytest.raises(ValueError):
            LossyNetwork(user_ids=["a"], loss_rate=0.1, retransmit_timeout=0)

    def test_zero_loss_behaves_like_reliable(self):
        lossy = LossyNetwork(user_ids=["a"], loss_rate=0.0)
        lossy.send("a", "server", "x", 1)
        assert len(list(lossy.deliveries(1 + lossy.delay))) == 1
        assert lossy.losses_injected == 0

    def test_losses_delay_but_deliver(self):
        lossy = LossyNetwork(user_ids=["a"], loss_rate=0.6, seed=3,
                             retransmit_timeout=4, max_attempts=5)
        for i in range(200):
            lossy.send("a", "server", i, round_no=0)
        delivered = []
        for round_no in range(1, lossy.worst_case_delay() + 1):
            delivered.extend(lossy.deliveries(round_no))
        assert len(delivered) == 200          # nothing is ever lost for good
        assert lossy.losses_injected > 0      # but losses did occur
        late = [e for e in delivered if e.deliver_round > 1]
        assert late                            # and they cost extra rounds

    def test_delay_is_bounded(self):
        lossy = LossyNetwork(user_ids=["a"], loss_rate=0.9, seed=1,
                             retransmit_timeout=3, max_attempts=4)
        for i in range(100):
            lossy.send("a", "server", i, round_no=0)
        assert lossy.in_flight() == 100
        horizon = lossy.worst_case_delay()
        total = sum(len(list(lossy.deliveries(r))) for r in range(1, horizon + 1))
        assert total == 100

    def test_broadcast_also_lossy(self):
        lossy = LossyNetwork(user_ids=["a", "b", "c"], loss_rate=0.5, seed=2)
        lossy.broadcast("a", {"x": 1}, 0)
        assert lossy.in_flight() == 2


class TestCrashSchedule:
    def test_expansion(self):
        offline = crash_schedule([(5, 7), (10, 10)])
        assert offline == {5, 6, 7, 10}

    def test_validation(self):
        with pytest.raises(ValueError):
            crash_schedule([(7, 5)])


class TestProtocolsUnderFailures:
    def test_protocol2_honest_under_loss(self):
        """Message loss (under ARQ) must cause no false alarms."""
        workload = steady_workload(3, 8, spacing=12, seed=5)
        lossy = LossyNetwork(user_ids=workload.user_ids, loss_rate=0.3,
                             seed=5, retransmit_timeout=3, max_attempts=6)
        simulation = build_simulation("protocol2", workload, k=4, seed=5,
                                      network=lossy,
                                      transaction_timeout=3 * lossy.worst_case_delay())
        report = simulation.execute(max_rounds=4000)
        assert not report.detected, report.alarms
        assert sum(report.operations_completed.values()) == 24
        assert lossy.losses_injected > 0

    def test_protocol2_detects_fork_under_loss(self):
        workload = steady_workload(3, 14, spacing=8, keyspace=6,
                                   write_ratio=0.6, seed=6)
        lossy = LossyNetwork(user_ids=workload.user_ids, loss_rate=0.2,
                             seed=6, retransmit_timeout=3, max_attempts=6)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        simulation = build_simulation("protocol2", workload, attack=attack, k=4,
                                      seed=6, network=lossy,
                                      transaction_timeout=3 * lossy.worst_case_delay())
        report = simulation.execute(max_rounds=4000)
        if report.first_deviation_round is not None:
            assert report.detected

    def test_crashed_user_recovers_and_completes(self):
        workload = steady_workload(3, 8, spacing=6, seed=7)
        offline = {"user1": crash_schedule([(20, 60)])}
        simulation = build_simulation("protocol2", workload, k=100, seed=7,
                                      offline=offline)
        report = simulation.execute(max_rounds=4000)
        assert not report.detected, report.alarms
        assert report.operations_completed["user1"] == 8
        # the crash visibly delayed user1's completions
        assert max(report.completion_rounds["user1"]) > 60

    def test_sync_stalls_through_crash_then_completes(self):
        """A user crashed across a sync-up: the sync waits (new
        transactions freeze) and completes after recovery, with no
        false alarm -- the flat protocols' known liveness cost."""
        workload = steady_workload(3, 10, spacing=4, seed=8)
        offline = {"user2": crash_schedule([(15, 40)])}
        simulation = build_simulation("protocol2", workload, k=3, seed=8,
                                      offline=offline,
                                      transaction_timeout=100)
        report = simulation.execute(max_rounds=4000)
        assert not report.detected, report.alarms
        assert sum(report.operations_completed.values()) == 30

    def test_naive_network_equivalence(self):
        """Sanity: with zero loss, LossyNetwork reproduces Network runs."""
        workload = steady_workload(3, 6, seed=9)
        plain = build_simulation("protocol2", workload, k=4, seed=9,
                                 network=Network(user_ids=workload.user_ids)).execute()
        lossless = build_simulation("protocol2", workload, k=4, seed=9,
                                    network=LossyNetwork(user_ids=workload.user_ids,
                                                         loss_rate=0.0)).execute()
        assert plain.operations_completed == lossless.operations_completed
        assert plain.rounds_executed == lossless.rounds_executed


class TestLossDeterminism:
    """All loss randomness flows through one explicit generator: two
    same-seed lossy runs must replay byte-identical transcripts."""

    @staticmethod
    def _lossy_run(network):
        workload = steady_workload(3, 8, spacing=8, keyspace=8,
                                   write_ratio=0.6, seed=11)
        simulation = build_simulation(
            "protocol2", workload, k=4, seed=11, network=network,
            transaction_timeout=3 * network.worst_case_delay())
        report = simulation.execute(max_rounds=4000)
        transcripts = {user.user_id: list(user.view_transcript)
                       for user in simulation.users}
        return report, transcripts

    @staticmethod
    def _network(**overrides):
        params = dict(user_ids=["user0", "user1", "user2"], loss_rate=0.3,
                      seed=11, retransmit_timeout=3, max_attempts=6)
        params.update(overrides)
        return LossyNetwork(**params)

    def test_same_seed_runs_replay_identical_transcripts(self):
        report_a, transcripts_a = self._lossy_run(self._network())
        report_b, transcripts_b = self._lossy_run(self._network())
        assert transcripts_a == transcripts_b
        assert report_a.rounds_executed == report_b.rounds_executed
        assert report_a.messages_sent == report_b.messages_sent
        assert report_a.completion_rounds == report_b.completion_rounds

    def test_explicit_rng_matches_equal_seed(self):
        """``rng=random.Random(s)`` and ``seed=s`` are the same stream."""
        _, via_seed = self._lossy_run(self._network(seed=11))
        _, via_rng = self._lossy_run(self._network(seed=0,
                                                   rng=random.Random(11)))
        assert via_seed == via_rng

    def test_different_seeds_diverge(self):
        """Guards against the rng being silently unused."""
        network_a = self._network(seed=11)
        network_b = self._network(seed=12)
        for i in range(300):
            network_a.send("user0", "server", i, round_no=0)
            network_b.send("user0", "server", i, round_no=0)
        schedule_a = sorted(e.deliver_round for batch in
                            network_a._pending.values() for e in batch)
        schedule_b = sorted(e.deliver_round for batch in
                            network_b._pending.values() for e in batch)
        assert schedule_a != schedule_b
