"""Tests for the from-scratch RSA implementation."""

import random

import pytest

from repro.crypto.hashing import hash_bytes
from repro.crypto import rsa


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(bits=512, seed=1234)


class TestMillerRabin:
    def test_small_primes(self):
        rng = random.Random(0)
        for p in (2, 3, 5, 7, 97, 101, 7919):
            assert rsa.is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = random.Random(0)
        for n in (0, 1, 4, 9, 100, 561, 1105, 7917):  # includes Carmichael 561, 1105
            assert not rsa.is_probable_prime(n, rng)

    def test_carmichael_numbers_rejected(self):
        rng = random.Random(7)
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not rsa.is_probable_prime(carmichael, rng)

    def test_generated_prime_has_requested_bits(self):
        rng = random.Random(5)
        for bits in (16, 32, 64):
            p = rsa.generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert rsa.is_probable_prime(p, rng)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            rsa.generate_prime(4, random.Random(0))


class TestKeyGeneration:
    def test_deterministic_with_seed(self):
        a = rsa.generate_keypair(bits=512, seed=42)
        b = rsa.generate_keypair(bits=512, seed=42)
        assert a.public.modulus == b.public.modulus
        assert a.exponent == b.exponent

    def test_different_seeds_differ(self):
        a = rsa.generate_keypair(bits=512, seed=1)
        b = rsa.generate_keypair(bits=512, seed=2)
        assert a.public.modulus != b.public.modulus

    def test_rejects_small_modulus(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(bits=256)

    def test_modulus_size(self, keypair):
        assert 511 <= keypair.public.modulus.bit_length() <= 512

    def test_public_exponent(self, keypair):
        assert keypair.public.exponent == 65537

    def test_fingerprint_stable(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 8


class TestSignVerify:
    def test_roundtrip(self, keypair):
        digest = hash_bytes(b"message")
        signature = rsa.sign_digest(keypair, digest)
        assert rsa.verify_digest(keypair.public, digest, signature)

    def test_signature_length(self, keypair):
        signature = rsa.sign_digest(keypair, hash_bytes(b"m"))
        assert len(signature) == keypair.public.byte_length

    def test_wrong_digest_fails(self, keypair):
        signature = rsa.sign_digest(keypair, hash_bytes(b"m1"))
        assert not rsa.verify_digest(keypair.public, hash_bytes(b"m2"), signature)

    def test_bitflip_fails(self, keypair):
        digest = hash_bytes(b"m")
        signature = bytearray(rsa.sign_digest(keypair, digest))
        signature[3] ^= 0x40
        assert not rsa.verify_digest(keypair.public, digest, bytes(signature))

    def test_wrong_key_fails(self, keypair):
        other = rsa.generate_keypair(bits=512, seed=99)
        signature = rsa.sign_digest(keypair, hash_bytes(b"m"))
        assert not rsa.verify_digest(other.public, hash_bytes(b"m"), signature)

    def test_wrong_length_rejected(self, keypair):
        assert not rsa.verify_digest(keypair.public, hash_bytes(b"m"), b"short")

    def test_all_zero_forgery_rejected(self, keypair):
        forged = bytes(keypair.public.byte_length)
        assert not rsa.verify_digest(keypair.public, hash_bytes(b"m"), forged)

    def test_value_above_modulus_rejected(self, keypair):
        too_big = (keypair.public.modulus + 1).to_bytes(keypair.public.byte_length, "big")
        assert not rsa.verify_digest(keypair.public, hash_bytes(b"m"), too_big)

    def test_deterministic_signatures(self, keypair):
        digest = hash_bytes(b"same message")
        assert rsa.sign_digest(keypair, digest) == rsa.sign_digest(keypair, digest)
