"""Tests for the simulation engine itself: agents, timing bounds,
report metrics, oracle accounting."""

from repro.core.scenarios import build_simulation
from repro.protocols.base import ProtocolClient, Response
from repro.server.attacks import Attack, ForkAttack
from repro.simulation.agents import Alarm, UserAgent
from repro.simulation.channels import Network
from repro.simulation.events import Run
from repro.simulation.runner import SimulationReport
from repro.simulation.workload import Intent, steady_workload
from repro.mtree.database import ReadQuery


class TestBoundedTransactionTime:
    def test_honest_transactions_complete_within_b_star(self):
        """Query round m, served m+1, response handled m+2: b* = 3 on an
        unloaded honest server."""
        workload = steady_workload(2, 6, spacing=10, seed=1)
        simulation = build_simulation("protocol2", workload, k=100, seed=1)
        report = simulation.execute()
        for user in simulation.users:
            for issued, completed in zip(user.issue_rounds, user.completion_rounds):
                assert completed - issued <= 3

    def test_withheld_response_raises_timeout_alarm(self):
        class StallAttack(Attack):
            name = "stall"

            def mutate_response(self, user_id, request, response, state, round_no):
                self._mark_deviation(round_no)
                return None  # swallowed below

        class SwallowServer:
            pass

        workload = steady_workload(1, 2, seed=2)
        simulation = build_simulation("protocol2", workload, k=100, seed=2)

        # Make the server silently drop every response.
        original_send = simulation.network.send

        def dropping_send(sender, recipient, payload, round_no):
            if sender == "server":
                return  # withheld
            original_send(sender, recipient, payload, round_no)

        simulation.network.send = dropping_send
        report = simulation.execute(max_rounds=200)
        assert report.detected
        assert "withheld" in next(iter(report.alarms.values())).reason


class TestServiceRate:
    def test_limited_service_rate_queues_requests(self):
        workload = steady_workload(4, 6, spacing=1, seed=3)
        fast = build_simulation("protocol2", workload, k=100, seed=3).execute()
        slow = build_simulation("protocol2", workload, k=100, seed=3, service_rate=1).execute()
        assert slow.rounds_executed >= fast.rounds_executed
        assert not slow.detected


class TestReportMetrics:
    def make_report(self, **overrides):
        base = dict(
            rounds_executed=100,
            run=Run(),
            alarms={},
            first_deviation_round=None,
            operations_completed={"u": 3},
            completion_rounds={"u": [10, 20, 30]},
            issue_rounds={"u": [8, 18, 28]},
            messages_sent=6,
            broadcasts_sent=0,
            server_operations=3,
        )
        base.update(overrides)
        return SimulationReport(**base)

    def test_clean_report(self):
        report = self.make_report()
        assert not report.detected
        assert not report.false_alarm
        assert not report.missed_detection
        assert report.detection_round is None
        assert report.detection_delay_rounds() is None
        assert report.max_ops_after_deviation() is None

    def test_detection_round_is_earliest(self):
        report = self.make_report(alarms={"a": Alarm(50, "x"), "b": Alarm(40, "y")},
                                  first_deviation_round=30)
        assert report.detection_round == 40
        assert report.detection_delay_rounds() == 10

    def test_false_alarm_flag(self):
        report = self.make_report(alarms={"a": Alarm(50, "x")})
        assert report.false_alarm

    def test_missed_detection_flag(self):
        report = self.make_report(first_deviation_round=10)
        assert report.missed_detection

    def test_ops_after_deviation_counts_initiated_after(self):
        report = self.make_report(first_deviation_round=15,
                                  alarms={"a": Alarm(29, "x")})
        # issues at 18 and 28 happened after deviation; both completed
        # (rounds 20, 30) -- but 30 is past detection at 29.
        assert report.max_ops_after_deviation() == 1

    def test_ops_after_deviation_without_detection(self):
        report = self.make_report(first_deviation_round=15)
        assert report.max_ops_after_deviation() == 2


class TestUserAgent:
    def test_unsolicited_response_alarms(self):
        agent = UserAgent("u", ProtocolClient("u"), intents=[])
        network = Network(user_ids=["u"])
        network.send("server", "u", Response(result=None), 0)
        agent.inbox.extend(network.deliveries(1))
        agent.step(1, network, Run(), [0])
        assert agent.alarm is not None
        assert "unsolicited" in agent.alarm.reason

    def test_done_semantics(self):
        agent = UserAgent("u", ProtocolClient("u"),
                          intents=[Intent(round=5, query=ReadQuery(b"k"))])
        assert not agent.done()
        agent.intent_index = 1
        assert agent.done()

    def test_alarmed_agent_stops_issuing(self):
        client = ProtocolClient("u")
        agent = UserAgent("u", client, intents=[Intent(round=1, query=ReadQuery(b"k"))])
        agent.alarm = Alarm(round=1, reason="test")
        network = Network(user_ids=["u"])
        agent.step(2, network, Run(), [0])
        assert network.messages_sent == 0


class TestOracleAccounting:
    def test_fork_flagged_even_when_data_matches(self):
        """Post-fork ops on a not-yet-diverged branch still carry a
        branch-local ctr that disagrees with arrival order -- the
        oracle must flag it for state-committing protocols."""
        workload = steady_workload(3, 10, spacing=4, keyspace=16,
                                   write_ratio=0.3, seed=4)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        simulation = build_simulation("protocol2", workload, attack=attack, k=500, seed=4)
        report = simulation.execute()
        if "fork" in simulation.server.states:
            served_from_fork = any(
                r > attack.fork_round for r in report.completion_rounds["user1"]
            )
            if served_from_fork:
                assert report.first_deviation_round is not None
