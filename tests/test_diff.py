"""Tests for the Myers diff engine and delta algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.diff import (
    Hunk,
    PatchError,
    apply_delta,
    delta_size,
    diff,
    invert_delta,
    unified_diff,
)

lines = st.lists(st.sampled_from([f"line-{i}" for i in range(12)]), max_size=30)


class TestDiff:
    def test_identical(self):
        assert diff(["a", "b"], ["a", "b"]) == ()

    def test_pure_insert(self):
        delta = diff([], ["a", "b"])
        assert len(delta) == 1
        assert delta[0].inserted == ("a", "b")
        assert delta[0].deleted == ()

    def test_pure_delete(self):
        delta = diff(["a", "b"], [])
        assert len(delta) == 1
        assert delta[0].deleted == ("a", "b")

    def test_replace(self):
        delta = diff(["a", "x", "c"], ["a", "y", "c"])
        assert apply_delta(["a", "x", "c"], delta) == ["a", "y", "c"]
        assert delta_size(delta) == 2

    def test_shortest_script(self):
        # One changed line in 100 should yield exactly one small hunk.
        a = [f"l{i}" for i in range(100)]
        b = list(a)
        b[50] = "changed"
        delta = diff(a, b)
        assert len(delta) == 1
        assert delta_size(delta) == 2

    @settings(max_examples=200, deadline=None)
    @given(lines, lines)
    def test_roundtrip(self, a, b):
        assert apply_delta(a, diff(a, b)) == b

    @settings(max_examples=200, deadline=None)
    @given(lines, lines)
    def test_invert_roundtrip(self, a, b):
        delta = diff(a, b)
        assert apply_delta(b, invert_delta(delta)) == a

    @settings(max_examples=100, deadline=None)
    @given(lines, lines)
    def test_hunks_sorted_nonoverlapping(self, a, b):
        delta = diff(a, b)
        position = 0
        for hunk in delta:
            assert hunk.start >= position
            position = hunk.start + len(hunk.deleted)
            assert position <= len(a)

    @settings(max_examples=100, deadline=None)
    @given(lines, lines, lines)
    def test_composition(self, a, b, c):
        ab, bc = diff(a, b), diff(b, c)
        assert apply_delta(apply_delta(a, ab), bc) == c


class TestHunk:
    def test_empty_hunk_rejected(self):
        with pytest.raises(ValueError):
            Hunk(start=0, deleted=(), inserted=())

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Hunk(start=-1, deleted=("x",), inserted=())


class TestApplyErrors:
    def test_context_mismatch(self):
        delta = diff(["a", "b"], ["a", "c"])
        with pytest.raises(PatchError):
            apply_delta(["x", "y"], delta)

    def test_out_of_bounds(self):
        delta = (Hunk(start=5, deleted=("x",), inserted=()),)
        with pytest.raises(PatchError):
            apply_delta(["a"], delta)

    def test_overlap_rejected(self):
        delta = (
            Hunk(start=0, deleted=("a", "b"), inserted=()),
            Hunk(start=1, deleted=("b",), inserted=()),
        )
        with pytest.raises(PatchError):
            apply_delta(["a", "b", "c"], delta)


class TestUnifiedDiff:
    def test_empty_for_identical(self):
        assert unified_diff(["a"], ["a"]) == ""

    def test_headers(self):
        text = unified_diff(["a"], ["b"], "old.txt", "new.txt")
        assert text.startswith("--- old.txt\n+++ new.txt\n")

    def test_markers(self):
        text = unified_diff(["keep", "old"], ["keep", "new"])
        assert " keep" in text
        assert "-old" in text
        assert "+new" in text

    def test_context_limits_output(self):
        a = [f"l{i}" for i in range(100)]
        b = list(a)
        b[50] = "changed"
        text = unified_diff(a, b, context=2)
        # 2 lines of context either side + the +/- pair + hunk header + file headers
        assert len(text.strip().split("\n")) == 2 + 2 + 2 + 2 + 1

    def test_distant_changes_get_separate_hunks(self):
        a = [f"l{i}" for i in range(60)]
        b = list(a)
        b[5] = "x"
        b[50] = "y"
        text = unified_diff(a, b, context=3)
        assert text.count("@@") == 4  # two hunk headers, each with two @@

    @settings(max_examples=50, deadline=None)
    @given(lines, lines)
    def test_never_crashes(self, a, b):
        unified_diff(a, b)
