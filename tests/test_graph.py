"""Tests for the seen-state graph and Lemma 4.1, including the
Figure 3 replay scenario that motivates state tagging."""

from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import hash_bytes, hash_state, hash_tagged_state, xor_all
from repro.protocols.graph import StateGraph, lemma41_path_theorem


def node(label):
    return hash_bytes(label.encode())


def path_graph(length):
    graph = StateGraph()
    for i in range(length):
        graph.add(node(f"s{i}"), node(f"s{i + 1}"))
    return graph


class TestProperties:
    def test_path_satisfies_all(self):
        graph = path_graph(5)
        assert all(graph.lemma41_properties().values())
        assert graph.is_directed_path()

    def test_fork_violates_p4(self):
        graph = path_graph(3)
        graph.add(node("s1"), node("evil"))  # out-degree 2 at s1
        assert not graph.p4_two_odd_vertices_one_source()
        assert not graph.is_directed_path()

    def test_join_violates_p2(self):
        graph = path_graph(3)
        graph.add(node("other"), node("s2"))  # in-degree 2 at s2
        assert not graph.p2_indegree_at_most_one()
        assert not graph.is_directed_path()

    def test_cycle_violates_p3(self):
        graph = path_graph(3)
        graph.add(node("s3"), node("s0"))
        assert not graph.p3_acyclic()
        assert not graph.is_directed_path()

    def test_self_loop_is_cycle(self):
        graph = StateGraph()
        graph.add(node("x"), node("x"))
        assert not graph.p3_acyclic()

    def test_two_components_fail(self):
        graph = path_graph(2)
        graph.add(node("t0"), node("t1"))
        assert not graph.is_directed_path()
        # 4 odd-degree vertices
        assert not graph.p4_two_odd_vertices_one_source()

    def test_empty_graph_is_not_a_path(self):
        assert not StateGraph().is_directed_path()

    def test_single_edge_is_a_path(self):
        graph = path_graph(1)
        assert graph.is_directed_path()


class TestLemma41:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=1, max_value=12))
    def test_paths_satisfy_hypotheses_and_conclusion(self, length):
        graph = path_graph(length)
        assert all(graph.lemma41_properties().values())
        assert graph.is_directed_path()

    @settings(max_examples=300, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=14))
    def test_lemma_implication_on_random_graphs(self, edges):
        """Whenever P1-P4 all hold, the graph must be a directed path --
        the lemma proper, checked over random multigraphs."""
        graph = StateGraph()
        for a, b in edges:
            graph.add(node(f"n{a}"), node(f"n{b}"))
        assert lemma41_path_theorem(graph)


class TestXorView:
    def test_telescoping_on_path(self):
        graph = path_graph(6)
        assert graph.xor_of_transitions() == node("s0") ^ node("s6")
        assert graph.xor_check_passes(node("s0"), node("s6"))

    def test_wrong_endpoints_fail(self):
        graph = path_graph(6)
        assert not graph.xor_check_passes(node("s0"), node("s5"))


class TestFigure3Scenario:
    """The paper's Figure 3: with *untagged* states the server replays
    state (D2, 2) to two users; every intermediate node has even degree
    so the XOR check telescopes and the attack is invisible.  With
    user-tagged states the same replay produces a node of in-degree 2,
    so the graph is not a path and the registers cannot telescope."""

    ROOTS = {name: hash_bytes(f"M({name})".encode())
             for name in ("D0", "D1", "D2", "D2p", "D2pp", "D3", "D4")}

    # (old_name, old_ctr, new_name, new_ctr, validating_user) -- the
    # edge labels of Figure 3.
    TRANSITIONS = [
        ("D0", 0, "D1", 1, "u1"),
        ("D1", 1, "D2", 2, "u2"),
        ("D2", 2, "D3", 3, "u1"),   # u1 consumes (D2, 2) ...
        ("D0", 0, "D2p", 2, "u2"),  # replayed branches re-converging on
        ("D2p", 2, "D3", 3, "u3"),  # the same (D3, 3) state
        ("D0", 0, "D2pp", 2, "u1"),
        ("D2pp", 2, "D3", 3, "u3"),
        ("D3", 3, "D4", 4, "u3"),
    ]

    def untagged(self, name, ctr):
        return hash_state(self.ROOTS[name], ctr)

    def test_untagged_xor_hides_the_replay(self):
        """All σ registers XOR to first ^ last even though the graph is
        nothing like a single path -- the vulnerability.

        Degrees: (D0,0) has degree 3 (odd, survives once), (D4,4) has
        degree 1, every other node has even degree and cancels.  The
        untagged check h(M(D0)||0) ^ last == XOR σ therefore *passes*
        with last = (D4,4), hiding a blatant fork."""
        sigma = xor_all(
            self.untagged(old, octr) ^ self.untagged(new, nctr)
            for old, octr, new, nctr, _user in self.TRANSITIONS
        )
        graph = StateGraph()
        for old, octr, new, nctr, _user in self.TRANSITIONS:
            graph.add(self.untagged(old, octr), self.untagged(new, nctr))
        assert not graph.is_directed_path()  # truly not a serial history
        assert sigma == self.untagged("D0", 0) ^ self.untagged("D4", 4)  # yet it telescopes

    def test_replay_cycle_cancels_untagged(self):
        """A replay loop: the server leads a user around D1 -> D2 -> D1.
        The cycle's nodes all have even degree, so the untagged XOR
        still telescopes to the path endpoints -- the loop is
        invisible to the register check."""
        transitions = [
            ("D0", 0, "D1", 1),
            ("D1", 1, "D2", 2),
            ("D2", 2, "D1", 1),   # replayed: back to an old state
            ("D1", 1, "D3", 3),
        ]
        sigma = xor_all(
            self.untagged(old, octr) ^ self.untagged(new, nctr)
            for old, octr, new, nctr in transitions
        )
        assert sigma == self.untagged("D0", 0) ^ self.untagged("D3", 3)
        graph = StateGraph()
        for old, octr, new, nctr in transitions:
            graph.add(self.untagged(old, octr), self.untagged(new, nctr))
        assert not graph.p3_acyclic()
        assert not graph.is_directed_path()  # yet XOR passed: attack hidden

    def tagged(self, name, ctr, user):
        return hash_tagged_state(self.ROOTS[name], ctr, user)

    def test_tagging_forces_detection(self):
        """Protocol II's two refinements together defeat Figure 3.

        The per-user counter check (step 4) forces the three transitions
        consuming counter value 2 to be validated by three *distinct*
        users; the user tag then makes the three resulting (D3, 3, .)
        states distinct nodes.  The re-convergence that cancelled out in
        the untagged algebra now leaves four odd-degree vertices, so no
        candidate `last` can make the register check telescope --
        whichever producer the server names for the final transition.
        """
        # (old, old_ctr, old_producer) -> (new, new_ctr, validating user);
        # consumers of ctr=2 are distinct (u1, u3, u2) per the counter check.
        edges = [
            (("D0", 0, ""), ("D1", 1, "u1")),
            (("D1", 1, "u1"), ("D2", 2, "u2")),
            (("D2", 2, "u2"), ("D3", 3, "u1")),
            (("D0", 0, ""), ("D2p", 2, "u2")),
            (("D2p", 2, "u2"), ("D3", 3, "u3")),
            (("D0", 0, ""), ("D2pp", 2, "u1")),
            (("D2pp", 2, "u1"), ("D3", 3, "u2")),
        ]
        start = self.tagged("D0", 0, "")
        for final_producer in ("u1", "u2", "u3"):
            graph = StateGraph()
            tagged_edges = []
            for (old, octr, oprod), (new, nctr, user) in edges:
                pair = (self.tagged(old, octr, oprod), self.tagged(new, nctr, user))
                graph.add(*pair)
                tagged_edges.append(pair)
            # The server picks which (D3, 3, j) it claims the final
            # transition consumed.
            final = (self.tagged("D3", 3, final_producer), self.tagged("D4", 4, "u3"))
            graph.add(*final)
            tagged_edges.append(final)
            assert not graph.is_directed_path()
            sigma = xor_all(a ^ b for a, b in tagged_edges)
            candidates = {edge[1] for edge in tagged_edges}
            assert all(sigma != (start ^ last) for last in candidates), final_producer
