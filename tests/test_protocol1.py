"""Protocol I: unit tests against scripted server messages plus full
simulations (Theorem 4.1's guarantees)."""

import pytest

from helpers import FakeContext, run_scenario
from repro.crypto.hashing import hash_state
from repro.crypto.signatures import Signature, Signer, Verifier
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery
from repro.protocols.base import DeviationDetected, Response, ServerState
from repro.protocols.protocol1 import (
    Protocol1Client,
    Protocol1Server,
    bootstrap_server_state,
)
from repro.server.attacks import ForkAttack, SignatureForgeAttack, StaleRootReplayAttack
from repro.simulation.workload import partitionable_workload, sleepy_workload, steady_workload

BITS = 512
USERS = ["alice", "bob"]


@pytest.fixture(scope="module")
def signers(shared_signers):
    # Session-shared deterministic keypairs (see tests/conftest.py).
    return shared_signers


@pytest.fixture(scope="module")
def verifier(signers):
    v = Verifier()
    for user, signer in signers.items():
        v.register(user, signer.public_key)
    return v


@pytest.fixture
def rig(signers, verifier):
    """A direct client/server rig without the simulator."""
    state = ServerState(database=VerifiedDatabase(order=4))
    state.database.execute(WriteQuery(b"file", b"v0"))
    bootstrap_server_state(state, signers["alice"])
    server = Protocol1Server()
    clients = {
        u: Protocol1Client(u, USERS, k=4, signer=signers[u], verifier=verifier, order=4)
        for u in USERS
    }
    return state, server, clients


def roundtrip(state, server, client, query, ctx):
    request = client.make_request(query)
    response = server.handle_request(client.user_id, request, state, round_no=ctx.round)
    answer = client.handle_response(query, response, ctx)
    # deliver the client's follow-up signature to the server
    followup = ctx.sent_to_server.pop()
    server.handle_followup(client.user_id, followup, state, ctx.round)
    return answer


class TestQueryVerification:
    def test_read_roundtrip(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        assert roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx) == b"v0"

    def test_write_then_other_user_reads(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"v1"), ctx)
        assert roundtrip(state, server, clients["bob"], ReadQuery(b"file"), ctx) == b"v1"

    def test_counters_advance(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        assert clients["alice"].lctr == 2
        assert clients["alice"].gctr == 2
        assert state.ctr == 2

    def test_server_blocks_until_signature(self, rig):
        state, server, clients = rig
        request = clients["alice"].make_request(ReadQuery(b"file"))
        assert not server.blocked(state)
        server.handle_request("alice", request, state, 1)
        assert server.blocked(state)

    def test_stale_signature_detected(self, rig):
        """Replaying an old signed root: the sig no longer covers the
        root the VO implies."""
        state, server, clients = rig
        ctx = FakeContext()
        stale_sig = state.meta["p1.sig"]
        stale_user = state.meta["p1.last_user"]
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"v1"), ctx)
        # Server now lies: presents the pre-write signature with fresh VO.
        request = clients["bob"].make_request(ReadQuery(b"file"))
        response = server.handle_request("bob", request, state, 5)
        forged = Response(result=response.result,
                          extras={**response.extras, "sig": stale_sig, "last_user": stale_user, "ctr": 0})
        with pytest.raises(DeviationDetected):
            clients["bob"].handle_response(ReadQuery(b"file"), forged, ctx)

    def test_counter_regression_detected(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 3)
        rewound = Response(result=response.result, extras={**response.extras, "ctr": 0})
        with pytest.raises(DeviationDetected, match="regressed"):
            clients["alice"].handle_response(ReadQuery(b"file"), rewound, ctx)

    def test_forged_signature_detected(self, rig, signers):
        state, server, clients = rig
        ctx = FakeContext()
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 1)
        genuine = response.extras["sig"]
        forged = Signature(signer_id=genuine.signer_id, digest=genuine.digest,
                           raw=bytes(len(genuine.raw)))
        bad = Response(result=response.result, extras={**response.extras, "sig": forged})
        with pytest.raises(DeviationDetected, match="signature"):
            clients["alice"].handle_response(ReadQuery(b"file"), bad, ctx)

    def test_signature_from_wrong_user_detected(self, rig, signers):
        state, server, clients = rig
        ctx = FakeContext()
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 1)
        # Bob signs the correct state, but the server claims it is Alice's.
        correct_digest = response.extras["sig"].digest
        impostor = Signature(signer_id="alice", digest=correct_digest,
                             raw=signers["bob"].sign(correct_digest).raw)
        bad = Response(result=response.result, extras={**response.extras, "sig": impostor})
        with pytest.raises(DeviationDetected):
            clients["alice"].handle_response(ReadQuery(b"file"), bad, ctx)

    def test_malformed_response_detected(self, rig):
        state, server, clients = rig
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 1)
        with pytest.raises(DeviationDetected, match="malformed"):
            clients["alice"].handle_response(ReadQuery(b"file"),
                                             Response(result=response.result, extras={}),
                                             FakeContext())

    def test_followup_signature_covers_new_state(self, rig, verifier):
        state, server, clients = rig
        ctx = FakeContext()
        query = WriteQuery(b"file", b"v9")
        request = clients["alice"].make_request(query)
        response = server.handle_request("alice", request, state, 1)
        clients["alice"].handle_response(query, response, ctx)
        followup = ctx.sent_to_server[-1]
        signature = followup.extras["sig"]
        expected = hash_state(state.database.root_digest(), 1)
        assert verifier.verify(signature, expected)


class TestSyncPredicate:
    def test_honest_counts_pass(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        for _ in range(3):
            roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        roundtrip(state, server, clients["bob"], ReadQuery(b"file"), ctx)
        # bob performed the last op: his gctr equals the total count
        data = {"alice": {"lctr": clients["alice"].lctr}, "bob": {"lctr": clients["bob"].lctr}}
        assert clients["bob"]._evaluate_sync(data)
        assert not clients["alice"]._evaluate_sync(data)

    def test_dropped_operation_fails_everyone(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        # Server "forgets" bob's op: bob did one op on a discarded branch.
        branch = state.clone()
        request = clients["bob"].make_request(ReadQuery(b"file"))
        response = server.handle_request("bob", request, branch, 3)
        clients["bob"].handle_response(ReadQuery(b"file"), response, ctx)
        # Immediately after the branch op the counting is still
        # consistent (bob's branch extends the true history), so bob's
        # predicate legitimately passes -- detection needs one more op
        # on the main branch:
        data = {"alice": {"lctr": clients["alice"].lctr}, "bob": {"lctr": clients["bob"].lctr}}
        assert clients["bob"]._evaluate_sync(data)
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        data = {"alice": {"lctr": clients["alice"].lctr}, "bob": {"lctr": clients["bob"].lctr}}
        assert not clients["alice"]._evaluate_sync(data)
        assert not clients["bob"]._evaluate_sync(data)

    def test_wants_sync_after_k(self, rig):
        state, server, clients = rig
        ctx = FakeContext()
        for _ in range(4):  # k = 4
            assert not clients["alice"].wants_sync()
            roundtrip(state, server, clients["alice"], ReadQuery(b"file"), ctx)
        assert clients["alice"].wants_sync()


class TestSimulations:
    def test_honest_run_clean(self):
        report = run_scenario("protocol1", steady_workload(3, 8, seed=1), k=4, seed=1)
        assert not report.detected
        assert report.first_deviation_round is None
        assert sum(report.operations_completed.values()) == 24

    def test_honest_sleepy_run_clean(self):
        report = run_scenario("protocol1", sleepy_workload(4, seed=2), k=6, seed=2)
        assert not report.detected

    def test_partition_attack_detected_within_k(self):
        # Protocol I's blocking handshake halves server throughput, so a
        # sparse schedule keeps the server unsaturated and t1 lands
        # after the fork engages (the Figure 1 timeline).
        for k in (2, 6):
            workload = partitionable_workload(k=k, seed=3, spacing=16, fork_round=60)
            attack = ForkAttack(victims=workload.metadata["group_b"],
                                fork_round=workload.metadata["fork_round"])
            report = run_scenario("protocol1", workload, attack=attack, k=k, seed=3)
            assert report.detected, k
            assert not report.false_alarm
            assert report.max_ops_after_deviation() <= k

    def test_stale_root_replay_detected(self):
        workload = steady_workload(3, 12, seed=4, write_ratio=0.7)
        attack = StaleRootReplayAttack(victim="user1", freeze_round=25)
        report = run_scenario("protocol1", workload, attack=attack, k=5, seed=4)
        assert report.detected
        assert not report.false_alarm

    def test_signature_forge_detected_immediately(self):
        workload = steady_workload(3, 10, seed=5)
        attack = SignatureForgeAttack(forge_round=20)
        report = run_scenario("protocol1", workload, attack=attack, k=50, seed=5)
        assert report.detected
        # detection on the very operation that carried the forgery
        assert report.detection_delay_rounds() <= 3

    def test_constant_local_state(self):
        workload = steady_workload(2, 6, seed=6)
        simulation = run_scenario("protocol1", workload, k=3, seed=6)
        # state_size is an item count and must not grow with history
        from repro.core.scenarios import make_keys
        keys = make_keys(["u0", "u1"], seed=0)
        client = Protocol1Client("u0", ["u0", "u1"], 3, keys.signers["u0"], keys.verifier)
        assert client.state_size() < 10
