"""Hypothesis stateful machine over the Merkle forest.

Random shard counts, interleaved inserts/updates/deletes whose keys
hash across shard boundaries, and ``refresh_root`` calls injected at
arbitrary points -- asserting after every step that:

* the top root is *deterministic*: a mirror forest receiving the same
  operations under a completely different ``refresh_root`` schedule
  (never refreshed until comparison) reaches bit-for-bit the same
  root, so dirty-tracking and refresh interleaving can never leak
  into the committed state;
* every proof kind (read, update, range) built from the live forest
  verifies against the current root;
* structural invariants hold (per-shard trees sound, top tree commits
  exactly one fresh entry per shard, routing consistent).
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.mtree.forest import (
    MerkleForest,
    build_forest_range_proof,
    build_forest_read_proof,
    build_forest_update_proof,
    verify_forest_range,
    verify_forest_read,
    verify_forest_update,
)

KEYS = st.integers(min_value=0, max_value=30).map(lambda i: f"fkey{i:02d}".encode())
VALUES = st.binary(min_size=0, max_size=8)
SHARD_COUNTS = st.sampled_from([1, 2, 3, 5, 8])


class MerkleForestMachine(RuleBasedStateMachine):
    """The forest against a dict model, with two-level proof checks."""

    def __init__(self):
        super().__init__()
        self.shards = None
        self.forest = None
        self.mirror = None  # same ops, refresh schedule maximally skewed
        self.model = {}

    @precondition(lambda self: self.forest is None)
    @rule(shards=SHARD_COUNTS)
    def create(self, shards):
        self.shards = shards
        self.forest = MerkleForest(order=4, shards=shards, top_order=4)
        self.mirror = MerkleForest(order=4, shards=shards, top_order=4)

    @precondition(lambda self: self.forest is not None)
    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        operation = "insert"
        proof = build_forest_update_proof(self.forest, operation, key)
        old_root = self.forest.root_digest()
        self.forest.insert(key, value)
        new_root = self.forest.refresh_root()[0]
        derived = verify_forest_update(old_root, proof, self.forest.spec,
                                       key, value=value)
        assert derived == new_root
        self.mirror.insert(key, value)
        self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        proof = build_forest_update_proof(self.forest, "delete", key)
        old_root = self.forest.root_digest()
        self.forest.delete(key)
        new_root = self.forest.refresh_root()[0]
        derived = verify_forest_update(old_root, proof, self.forest.spec, key)
        assert derived == new_root
        self.mirror.delete(key)
        del self.model[key]

    @precondition(lambda self: self.forest is not None)
    @rule(key=KEYS)
    def read_with_proof(self, key):
        proof = build_forest_read_proof(self.forest, key)
        assert proof.value == self.model.get(key)
        verify_forest_read(self.forest.root_digest(), proof, key,
                           self.forest.spec)

    @precondition(lambda self: self.forest is not None)
    @rule(low=KEYS, high=KEYS)
    def range_with_proof(self, low, high):
        if low > high:
            low, high = high, low
        proof = build_forest_range_proof(self.forest, low, high)
        expected = tuple(sorted((k, v) for k, v in self.model.items()
                                if low <= k <= high))
        assert proof.entries == expected
        assert (proof.low, proof.high) == (low, high)
        verify_forest_range(self.forest.root_digest(), proof,
                            self.forest.spec)

    @precondition(lambda self: self.forest is not None)
    @rule()
    def refresh(self):
        """Interleaved refresh passes: the second of two back-to-back
        refreshes must find nothing dirty."""
        self.forest.refresh_root()
        _root, recomputed = self.forest.refresh_root()
        assert recomputed == 0
        assert self.forest.dirty_shard_count == 0

    @invariant()
    def contents_match_model(self):
        if self.forest is None:
            return
        assert len(self.forest) == len(self.model)
        assert list(self.forest.items()) == sorted(self.model.items())

    @invariant()
    def root_is_deterministic(self):
        """The mirror forest saw the same operations but was never
        refreshed mid-stream; one refresh now must land on the same
        root, proving the root is a pure function of the contents."""
        if self.forest is None:
            return
        assert self.mirror.refresh_root()[0] == self.forest.refresh_root()[0]

    @invariant()
    def structure_sound(self):
        if self.forest is not None:
            self.forest.check_invariants()


TestMerkleForestMachine = MerkleForestMachine.TestCase
TestMerkleForestMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
