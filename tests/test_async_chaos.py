"""Chaos faults on the *async* server leg.

``test_chaos.py`` proves the self-healing client against the threaded
server; the asyncio core has its own connection handling (StreamReader
framing, batched drain), so RST resets and truncated frames get their
own pass here.  The invariants are identical: the client retries
verbatim, the dedup table keeps acknowledged writes exactly-once, and
registers still pass the sync predicate.
"""

import pytest

from repro.net import (
    ChaosConfig,
    ChaosProxy,
    RemoteClient,
    RetryPolicy,
    serve_async_in_thread,
    sync_check,
)


@pytest.fixture
def server():
    handle = serve_async_in_thread(order=4)
    yield handle
    handle.stop()


class TestAsyncServerUnderChaos:
    def test_client_survives_connection_resets(self, server):
        """ECONNRESET mid-exchange against the asyncio core: the client
        reconnects and resends; application stays exactly-once."""
        host, port = server.address
        genesis = server.initial_root_digest()
        config = ChaosConfig(reset_rate=0.2, immune_chunks=0)
        with ChaosProxy(host, port, seed=37, config=config) as proxy:
            phost, pport = proxy.address
            with RemoteClient(phost, pport, "alice", genesis, order=4,
                              retry=RetryPolicy(attempts=30, base=0.005,
                                                cap=0.05, seed=9)) as alice:
                for i in range(20):
                    alice.put(f"k{i % 3}".encode(), f"v{i}".encode())
                assert alice.gctr == 20
                assert sync_check(genesis, {"alice": alice.registers()})
            assert proxy.faults["resets"] >= 1
        assert server.consistent_view()[1] == 20

    def test_client_survives_truncated_frames(self, server):
        """A truncated frame starves the async reader mid-message; the
        severed connection must not wedge the drainer or duplicate the
        retried op."""
        host, port = server.address
        genesis = server.initial_root_digest()
        config = ChaosConfig(truncate_rate=0.2, immune_chunks=0)
        with ChaosProxy(host, port, seed=41, config=config) as proxy:
            phost, pport = proxy.address
            with RemoteClient(phost, pport, "alice", genesis, order=4,
                              retry=RetryPolicy(attempts=30, base=0.005,
                                                cap=0.05, seed=4)) as alice:
                for i in range(20):
                    alice.put(f"k{i % 3}".encode(), f"v{i}".encode())
                assert alice.gctr == 20
                assert sync_check(genesis, {"alice": alice.registers()})
            assert proxy.faults["truncations"] >= 1
        assert server.consistent_view()[1] == 20

    def test_combined_resets_and_truncations(self, server):
        """Both fault classes at once, plus two interleaved users."""
        host, port = server.address
        genesis = server.initial_root_digest()
        config = ChaosConfig(reset_rate=0.1, truncate_rate=0.1,
                             immune_chunks=0)
        with ChaosProxy(host, port, seed=53, config=config) as proxy:
            phost, pport = proxy.address
            with RemoteClient(phost, pport, "alice", genesis, order=4,
                              retry=RetryPolicy(attempts=40, base=0.005,
                                                cap=0.05, seed=2)) as alice, \
                 RemoteClient(phost, pport, "bob", genesis, order=4,
                              retry=RetryPolicy(attempts=40, base=0.005,
                                                cap=0.05, seed=3)) as bob:
                for i in range(10):
                    alice.put(f"a{i % 3}".encode(), f"v{i}".encode())
                    bob.put(f"b{i % 3}".encode(), f"v{i}".encode())
                registers = {"alice": alice.registers(),
                             "bob": bob.registers()}
                assert sync_check(genesis, registers)
            assert (proxy.faults["resets"] + proxy.faults["truncations"]) >= 1
        assert server.consistent_view()[1] == 20
