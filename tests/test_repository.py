"""Tests for the multi-file repository."""

import pytest

from repro.storage.repository import Repository, RepositoryError
from repro.storage.rcs import RevisionStore


@pytest.fixture
def repo():
    repository = Repository()
    repository.commit(
        "alice",
        {"src/main.c": ["int main() {}"], "src/common.h": ["#define VERSION 1"]},
        "initial import",
        timestamp=0,
    )
    return repository


class TestCommitCheckout:
    def test_paths(self, repo):
        assert repo.paths() == ["src/common.h", "src/main.c"]

    def test_contains(self, repo):
        assert "src/main.c" in repo
        assert "unknown.c" not in repo

    def test_checkout_head(self, repo):
        assert repo.checkout("src/common.h") == ["#define VERSION 1"]

    def test_checkout_old_revision(self, repo):
        repo.commit("bob", {"src/common.h": ["#define VERSION 2"]}, "bump", 1)
        assert repo.checkout("src/common.h") == ["#define VERSION 2"]
        assert repo.checkout("src/common.h", "1.1") == ["#define VERSION 1"]

    def test_unknown_path(self, repo):
        with pytest.raises(RepositoryError):
            repo.checkout("nope.c")

    def test_empty_commit_rejected(self, repo):
        with pytest.raises(RepositoryError):
            repo.commit("alice", {}, "empty")

    def test_checkout_all(self, repo):
        copy = repo.checkout_all()
        assert set(copy) == {"src/common.h", "src/main.c"}

    def test_multi_file_commit_records_revisions(self, repo):
        record = repo.commit(
            "bob",
            {"src/main.c": ["changed"], "README": ["docs"]},
            "two files",
            timestamp=3,
        )
        assert set(record.revisions) == {"src/main.c", "README"}
        assert record.revisions["src/main.c"].number == "1.2"
        assert record.revisions["README"].number == "1.1"

    def test_history(self, repo):
        repo.commit("bob", {"src/main.c": ["x"]}, "edit", 2)
        history = repo.history()
        assert len(history) == 2
        assert history[0].author == "alice"
        assert history[1].log_message == "edit"

    def test_head_revision(self, repo):
        assert repo.head_revision("src/main.c") == "1.1"


class TestRemove:
    def test_remove_hides_path(self, repo):
        repo.commit("alice", {"src/main.c": None}, "drop", 1)
        assert "src/main.c" not in repo
        assert repo.paths() == ["src/common.h"]
        assert repo.paths(include_dead=True) == ["src/common.h", "src/main.c"]

    def test_checkout_dead_head_rejected(self, repo):
        repo.commit("alice", {"src/main.c": None}, "drop", 1)
        with pytest.raises(RepositoryError):
            repo.checkout("src/main.c")

    def test_dead_history_reachable(self, repo):
        repo.commit("alice", {"src/main.c": None}, "drop", 1)
        assert repo.checkout("src/main.c", "1.1") == ["int main() {}"]

    def test_resurrect_via_commit(self, repo):
        repo.commit("alice", {"src/main.c": None}, "drop", 1)
        repo.commit("bob", {"src/main.c": ["reborn"]}, "revive", 2)
        assert repo.checkout("src/main.c") == ["reborn"]

    def test_remove_unknown_rejected(self, repo):
        with pytest.raises(RepositoryError):
            repo.commit("alice", {"ghost.c": None}, "drop")


class TestTags:
    def test_tag_and_checkout(self, repo):
        repo.tag("release-1.0")
        repo.commit("bob", {"src/common.h": ["#define VERSION 2"]}, "bump", 1)
        pinned = repo.checkout_tag("release-1.0")
        assert pinned["src/common.h"] == ["#define VERSION 1"]

    def test_duplicate_tag_rejected(self, repo):
        repo.tag("v1")
        with pytest.raises(RepositoryError):
            repo.tag("v1")

    def test_unknown_tag(self, repo):
        with pytest.raises(RepositoryError):
            repo.checkout_tag("ghost")

    def test_partial_tag(self, repo):
        repo.tag("headers", paths=["src/common.h"])
        assert set(repo.checkout_tag("headers")) == {"src/common.h"}


class TestStatus:
    def test_status_categories(self, repo):
        working = {
            "src/common.h": ["#define VERSION 1"],  # up-to-date
            "src/main.c": ["hacked locally"],  # modified
            "scratch.txt": ["untracked"],  # unknown
        }
        report = repo.status(working)
        assert report == {
            "src/common.h": "up-to-date",
            "src/main.c": "modified",
            "scratch.txt": "unknown",
        }

    def test_needs_checkout(self, repo):
        report = repo.status({"src/main.c": ["int main() {}"]})
        assert report["src/common.h"] == "needs-checkout"


class TestMerkleIntegration:
    def test_serialize_file_roundtrip(self, repo):
        blob = repo.serialize_file("src/main.c")
        store = Repository.deserialize_file(blob)
        assert isinstance(store, RevisionStore)
        assert store.checkout() == ["int main() {}"]

    def test_serialize_unknown(self, repo):
        with pytest.raises(RepositoryError):
            repo.serialize_file("ghost")
