"""Tests for DOT rendering of seen-state graphs."""

from repro.analysis.dot import state_graph_to_dot
from repro.crypto.hashing import hash_bytes
from repro.protocols.graph import StateGraph


def node(label):
    return hash_bytes(label.encode())


class TestDotRendering:
    def test_path_graph(self):
        graph = StateGraph()
        graph.add(node("a"), node("b"))
        graph.add(node("b"), node("c"))
        text = state_graph_to_dot(graph)
        assert text.startswith("digraph states {")
        assert text.rstrip().endswith("}")
        assert "directed path" in text
        assert text.count("->") == 2

    def test_labels_applied(self):
        graph = StateGraph()
        graph.add(node("a"), node("b"))
        text = state_graph_to_dot(graph, labels={node("a"): "D0", node("b"): "D1"})
        assert 'label="D0"' in text
        assert 'label="D1"' in text

    def test_violating_nodes_highlighted(self):
        graph = StateGraph()
        graph.add(node("a"), node("c"))
        graph.add(node("b"), node("c"))  # in-degree 2
        text = state_graph_to_dot(graph)
        assert "NOT a path" in text
        assert "fillcolor" in text
        assert "P2=FAIL" in text

    def test_property_captions(self):
        graph = StateGraph()
        graph.add(node("a"), node("b"))
        text = state_graph_to_dot(graph)
        for prop in ("P1", "P2", "P3", "P4"):
            assert prop in text
