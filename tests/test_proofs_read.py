"""Tests for point-read verification objects (membership / absence)."""

import math

import pytest

from repro.crypto.hashing import hash_bytes, hash_leaf
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    LeafSnapshot,
    ProofError,
    ReadProof,
    build_read_proof,
    check_read_answer,
    implied_root_for_read,
    verify_read,
)


@pytest.fixture
def mtree():
    tree = MerkleBPlusTree(order=4)
    for i in range(0, 100, 2):  # even keys only
        tree.insert(f"k{i:03d}".encode(), f"v{i}".encode())
    return tree


class TestMembership:
    def test_present_key_verifies(self, mtree):
        proof = build_read_proof(mtree, b"k042")
        assert verify_read(mtree.root_digest(), proof, b"k042") == b"v42"

    def test_absent_key_verifies_none(self, mtree):
        proof = build_read_proof(mtree, b"k043")
        assert verify_read(mtree.root_digest(), proof, b"k043") is None

    def test_all_keys_verify(self, mtree):
        root = mtree.root_digest()
        for i in range(0, 100, 2):
            key = f"k{i:03d}".encode()
            assert verify_read(root, build_read_proof(mtree, key), key) == f"v{i}".encode()

    def test_empty_tree_absence(self):
        mtree = MerkleBPlusTree()
        proof = build_read_proof(mtree, b"anything")
        assert verify_read(mtree.root_digest(), proof, b"anything") is None

    def test_implied_root_matches(self, mtree):
        proof = build_read_proof(mtree, b"k010")
        assert implied_root_for_read(proof, b"k010") == mtree.root_digest()


class TestRejections:
    def test_wrong_root_rejected(self, mtree):
        proof = build_read_proof(mtree, b"k042")
        with pytest.raises(ProofError):
            verify_read(hash_bytes(b"wrong root"), proof, b"k042")

    def test_key_mismatch_rejected(self, mtree):
        proof = build_read_proof(mtree, b"k042")
        with pytest.raises(ProofError):
            verify_read(mtree.root_digest(), proof, b"k044")

    def test_tampered_value_rejected(self, mtree):
        proof = build_read_proof(mtree, b"k042")
        tampered = ReadProof(key=proof.key, value=b"EVIL", internals=proof.internals, leaf=proof.leaf)
        with pytest.raises(ProofError):
            verify_read(mtree.root_digest(), tampered, b"k042")

    def test_tampered_leaf_rejected(self, mtree):
        proof = build_read_proof(mtree, b"k042")
        position = proof.leaf.keys.index(b"k042")
        entry_digests = list(proof.leaf.entry_digests)
        entry_digests[position] = hash_leaf(b"k042", b"EVIL")
        forged = ReadProof(
            key=proof.key,
            value=b"EVIL",
            internals=proof.internals,
            leaf=LeafSnapshot(keys=proof.leaf.keys, entry_digests=tuple(entry_digests)),
        )
        # Internally consistent, but no longer hashes to the real root.
        with pytest.raises(ProofError):
            verify_read(mtree.root_digest(), forged, b"k042")

    def test_false_absence_rejected(self, mtree):
        """Server claims the key is absent but proves the leaf that
        contains it -- the contradiction must be caught."""
        proof = build_read_proof(mtree, b"k042")
        lying = ReadProof(key=proof.key, value=None, internals=proof.internals, leaf=proof.leaf)
        with pytest.raises(ProofError):
            verify_read(mtree.root_digest(), lying, b"k042")

    def test_false_presence_rejected(self, mtree):
        proof = build_read_proof(mtree, b"k043")  # absent key
        lying = ReadProof(key=proof.key, value=b"ghost", internals=proof.internals, leaf=proof.leaf)
        with pytest.raises(ProofError):
            verify_read(mtree.root_digest(), lying, b"k043")

    def test_wrong_leaf_rejected(self, mtree):
        """Absence 'proved' with an unrelated leaf fails the routing check."""
        absent = build_read_proof(mtree, b"k001")
        other = build_read_proof(mtree, b"k090")
        spliced = ReadProof(key=b"k090", value=None, internals=other.internals, leaf=absent.leaf)
        with pytest.raises(ProofError):
            verify_read(mtree.root_digest(), spliced, b"k090")

    def test_answer_check_standalone(self, mtree):
        proof = build_read_proof(mtree, b"k042")
        assert check_read_answer(proof, b"k042") == b"v42"
        with pytest.raises(ProofError):
            check_read_answer(proof, b"k040")


class TestSize:
    def test_vo_size_logarithmic(self):
        """Figure 2's point: the VO carries O(log n) digests."""
        sizes = {}
        for exponent in (6, 10, 14):
            n = 2 ** exponent
            mtree = MerkleBPlusTree(order=8)
            for i in range(n):
                mtree.insert(f"{i:06d}".encode(), b"x")
            proof = build_read_proof(mtree, f"{n // 2:06d}".encode())
            sizes[n] = proof.size_digests()
        # Growing n by 256x should grow the VO by a small additive factor,
        # far below linear growth.
        assert sizes[2 ** 14] < sizes[2 ** 6] * int(math.log2(2 ** 14))
        assert sizes[2 ** 14] <= 8 * math.ceil(math.log(2 ** 14, 4))
