"""Tests for the two baselines: the token-passing strawman (Section
2.2.3) and the naive trust-everything client."""

import statistics

import pytest

from helpers import FakeContext, run_scenario
from repro.analysis import user_gaps
from repro.crypto.hashing import hash_state
from repro.crypto.signatures import Signature
from repro.core.scenarios import make_keys
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery
from repro.protocols.base import DeviationDetected, Request, Response, ServerState
from repro.protocols.tokenpass import (
    TokenPassClient,
    TokenPassServer,
    bootstrap_server_state,
)
from repro.server.attacks import ForkAttack, TamperValueAttack
from repro.simulation.workload import back_to_back_workload, steady_workload

USERS = ["u0", "u1", "u2"]


@pytest.fixture(scope="module")
def keys():
    return make_keys(USERS, seed=66)


@pytest.fixture
def rig(keys):
    state = ServerState(database=VerifiedDatabase(order=4))
    state.database.execute(WriteQuery(b"file", b"v0"))
    bootstrap_server_state(state, keys.signers["u0"])
    server = TokenPassServer()
    clients = {
        u: TokenPassClient(u, USERS, keys.signers[u], keys.verifier,
                           slot_length=4, order=4)
        for u in USERS
    }
    return state, server, clients


class TestTurnDiscipline:
    def test_slots_rotate(self, rig):
        _state, _server, clients = rig
        client = clients["u1"]
        assert not client.may_start_transaction(FakeContext(round_no=1))   # slot 0 -> u0
        assert client.may_start_transaction(FakeContext(round_no=5))       # slot 1 -> u1
        assert not client.may_start_transaction(FakeContext(round_no=9))   # slot 2 -> u2

    def test_one_op_per_slot(self, rig):
        _state, _server, clients = rig
        client = clients["u0"]
        ctx = FakeContext(round_no=1)
        assert client.may_start_transaction(ctx)
        client.on_issue(ctx)
        assert not client.may_start_transaction(ctx)

    def test_null_op_fired_late_in_idle_slot(self, rig):
        _state, _server, clients = rig
        client = clients["u0"]
        early = FakeContext(round_no=0)
        client.on_round(early)
        assert not early.internal_requests
        late = FakeContext(round_no=3)  # slot_length - 1
        client.on_round(late)
        assert len(late.internal_requests) == 1
        assert late.internal_requests[0].query is None

    def test_no_null_op_outside_own_slot(self, rig):
        _state, _server, clients = rig
        ctx = FakeContext(round_no=7)  # slot 1 belongs to u1
        clients["u2"].on_round(ctx)
        assert not ctx.internal_requests


class TestChainVerification:
    def run_op(self, state, server, client, query, round_no):
        ctx = FakeContext(round_no=round_no)
        request = client.make_request(query)
        response = server.handle_request(client.user_id, request, state, round_no)
        answer = client.handle_response(query, response, ctx)
        followup = ctx.sent_to_server.pop()
        server.handle_followup(client.user_id, followup, state, round_no)
        return answer

    def test_chain_of_custody(self, rig):
        state, server, clients = rig
        assert self.run_op(state, server, clients["u0"], ReadQuery(b"file"), 1) == b"v0"
        self.run_op(state, server, clients["u1"], WriteQuery(b"file", b"v1"), 5)
        assert self.run_op(state, server, clients["u2"], ReadQuery(b"file"), 9) == b"v1"
        assert state.meta["tp.turn"] == 3

    def test_null_op_resigns_state(self, rig, keys):
        state, server, clients = rig
        ctx = FakeContext(round_no=3)
        request = Request(query=None, extras={"null": True})
        response = server.handle_request("u0", request, state, 3)
        clients["u0"].handle_response(None, response, ctx)
        followup = ctx.sent_to_server.pop()
        signature = followup.extras["sig"]
        expected = hash_state(state.database.root_digest(), 1)
        assert keys.verifier.verify(signature, expected)

    def test_broken_chain_detected(self, rig):
        state, server, clients = rig
        self.run_op(state, server, clients["u0"], WriteQuery(b"file", b"v1"), 1)
        # server rolls back the database but keeps the newer signature
        state.database.execute(WriteQuery(b"file", b"rolled-back"))
        with pytest.raises(DeviationDetected, match="chain broken"):
            self.run_op(state, server, clients["u1"], ReadQuery(b"file"), 5)

    def test_forged_signature_detected(self, rig):
        state, server, clients = rig
        request = clients["u0"].make_request(ReadQuery(b"file"))
        response = server.handle_request("u0", request, state, 1)
        genuine = response.extras["sig"]
        forged = Response(result=response.result, extras={
            **response.extras,
            "sig": Signature(signer_id=genuine.signer_id, digest=genuine.digest,
                             raw=bytes(len(genuine.raw))),
        })
        with pytest.raises(DeviationDetected):
            clients["u0"].handle_response(ReadQuery(b"file"), forged, FakeContext(round_no=1))

    def test_server_blocks_between_op_and_signature(self, rig):
        state, server, clients = rig
        request = clients["u0"].make_request(ReadQuery(b"file"))
        assert not server.blocked(state)
        server.handle_request("u0", request, state, 1)
        assert server.blocked(state)


class TestWorkloadPreservation:
    def test_back_to_back_ops_wait_full_cycle(self):
        """Section 2.2.3's complaint: a user's second operation waits for
        everyone else's turn.  The gap between user0's consecutive ops
        must scale with the number of users."""
        gaps_by_n = {}
        for n_users in (2, 6):
            workload = back_to_back_workload(n_users, ops_per_user=3)
            report = run_scenario("tokenpass", workload, slot_length=6, seed=1)
            assert not report.detected
            gaps = user_gaps(report, "user0")
            gaps_by_n[n_users] = statistics.mean(gaps)
        assert gaps_by_n[6] > gaps_by_n[2] * 2

    def test_detects_fork(self):
        workload = steady_workload(3, 4, spacing=20, seed=2, write_ratio=0.8)
        attack = ForkAttack(victims=["user1"], fork_round=40)
        report = run_scenario("tokenpass", workload, attack=attack, slot_length=6, seed=2)
        assert report.detected
        assert not report.false_alarm


class TestNaive:
    def test_fork_undetected(self):
        # small keyspace + many ops so stale answers are actually served
        workload = steady_workload(3, 20, seed=3, write_ratio=0.6, keyspace=4)
        attack = ForkAttack(victims=["user1"], fork_round=20)
        report = run_scenario("naive", workload, attack=attack, seed=3)
        assert report.first_deviation_round is not None  # the attack bit
        assert not report.detected                        # nobody noticed
        assert report.missed_detection

    def test_tamper_undetected(self):
        workload = steady_workload(3, 10, seed=4, write_ratio=0.3)
        attack = TamperValueAttack(victim="user0", tamper_round=10)
        report = run_scenario("naive", workload, attack=attack, seed=4)
        assert report.first_deviation_round is not None
        assert not report.detected

    def test_honest_run_completes(self):
        workload = steady_workload(3, 10, seed=5)
        report = run_scenario("naive", workload, seed=5)
        assert not report.detected
        assert sum(report.operations_completed.values()) == 30
        ops = sum(report.operations_completed.values())
        assert report.messages_sent == 2 * ops
