"""Hypothesis stateful (rule-based) machines over the core structures.

These drive long, adversarially shrunk operation interleavings that
hand-written tests never quite reach:

* the verified database against a dict model, with the client verifier
  tracking the root the whole way;
* the revision store against a list-of-revisions model.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.mtree.database import (
    ClientVerifier,
    DeleteQuery,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.storage.rcs import RevisionStore

KEYS = st.integers(min_value=0, max_value=25).map(lambda i: f"key{i:02d}".encode())
VALUES = st.binary(min_size=0, max_size=8)


class VerifiedDatabaseMachine(RuleBasedStateMachine):
    """Every operation is verified by the client; the model must agree."""

    def __init__(self):
        super().__init__()
        self.db = VerifiedDatabase(order=4)
        self.client = ClientVerifier(self.db.root_digest(), order=4)
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def write(self, key, value):
        query = WriteQuery(key, value)
        assert self.client.apply(query, self.db.execute(query)) is None
        self.model[key] = value

    @rule(key=KEYS)
    def read(self, key):
        query = ReadQuery(key)
        answer = self.client.apply(query, self.db.execute(query))
        assert answer == self.model.get(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        query = DeleteQuery(key)
        self.client.apply(query, self.db.execute(query))
        del self.model[key]

    @rule(low=KEYS, high=KEYS)
    def scan(self, low, high):
        if low > high:
            low, high = high, low
        query = RangeQuery(low, high)
        entries = self.client.apply(query, self.db.execute(query))
        expected = tuple(sorted((k, v) for k, v in self.model.items()
                                if low <= k <= high))
        assert tuple(entries) == expected

    @invariant()
    def roots_agree(self):
        assert self.client.root_digest == self.db.root_digest()

    @invariant()
    def structure_sound(self):
        self.db.mtree.check_invariants()
        assert len(self.db) == len(self.model)


TestVerifiedDatabaseMachine = VerifiedDatabaseMachine.TestCase
TestVerifiedDatabaseMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)


class RevisionStoreMachine(RuleBasedStateMachine):
    """The revision store against an explicit list of all revisions."""

    def __init__(self):
        super().__init__()
        self.store = RevisionStore()
        self.history = []  # list of (number, lines)
        self.clock = 0

    @rule(lines=st.lists(st.sampled_from(["a", "bb", "ccc", ""]), max_size=6))
    def commit(self, lines):
        if self.store.is_dead:
            revision = self.store.resurrect(list(lines), "u", "", self.clock)
        else:
            revision = self.store.commit(list(lines), "u", "", self.clock)
        self.clock += 1
        self.history.append((revision.number, list(lines)))

    @precondition(lambda self: self.history and not self.store.is_dead)
    @rule()
    def remove(self):
        revision = self.store.remove("u", "", self.clock)
        self.clock += 1
        self.history.append((revision.number, []))

    @precondition(lambda self: self.history)
    @rule(data=st.data())
    def checkout_old(self, data):
        number, expected = data.draw(st.sampled_from(self.history))
        assert self.store.checkout(number) == expected

    @precondition(lambda self: self.history)
    @rule()
    def serialization_roundtrip(self):
        clone = RevisionStore.deserialize(self.store.serialize())
        assert clone.serialize() == self.store.serialize()
        number, expected = self.history[-1]
        assert clone.checkout(number) == expected

    @invariant()
    def head_is_latest(self):
        if self.history:
            number, expected = self.history[-1]
            assert self.store.head_number == number
            assert self.store.checkout() == expected


TestRevisionStoreMachine = RevisionStoreMachine.TestCase
TestRevisionStoreMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None)
