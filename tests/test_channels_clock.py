"""Tests for the network layer and the partially synchronous clock."""

import pytest

from repro.simulation.channels import Network
from repro.simulation.clock import LocalClock


class TestNetwork:
    def test_delivery_after_delay(self):
        net = Network(user_ids=["u1", "u2"], delay=1)
        net.send("u1", "server", "hello", round_no=5)
        assert list(net.deliveries(5)) == []
        batch = list(net.deliveries(6))
        assert len(batch) == 1
        assert batch[0].payload == "hello"
        assert batch[0].sender == "u1"

    def test_configurable_delay(self):
        net = Network(user_ids=["u1"], delay=3)
        net.send("u1", "server", "x", round_no=1)
        assert list(net.deliveries(2)) == []
        assert len(list(net.deliveries(4))) == 1

    def test_fifo_within_round(self):
        net = Network(user_ids=["u1"])
        net.send("u1", "server", "first", 1)
        net.send("u1", "server", "second", 1)
        payloads = [e.payload for e in net.deliveries(2)]
        assert payloads == ["first", "second"]

    def test_deliveries_pop(self):
        net = Network(user_ids=["u1"])
        net.send("u1", "server", "x", 1)
        list(net.deliveries(2))
        assert list(net.deliveries(2)) == []

    def test_broadcast_excludes_sender(self):
        net = Network(user_ids=["a", "b", "c"])
        net.broadcast("a", {"hi": 1}, 1)
        recipients = sorted(e.recipient for e in net.deliveries(2))
        assert recipients == ["b", "c"]

    def test_counters(self):
        net = Network(user_ids=["a", "b"])
        net.send("a", "server", "x", 1)
        net.broadcast("a", "y", 1)
        assert net.messages_sent == 1
        assert net.broadcasts_sent == 1

    def test_in_flight(self):
        net = Network(user_ids=["a"])
        assert net.in_flight() == 0
        net.send("a", "server", "x", 1)
        assert net.in_flight() == 1
        list(net.deliveries(2))
        assert net.in_flight() == 0


class TestLocalClock:
    def test_p1_is_exact(self):
        clock = LocalClock(p=1)
        for _ in range(50):
            clock.advance()
        assert clock.time == 50
        assert clock.global_time_bounds() == (50, 50)

    def test_ticks_at_least_every_p(self):
        clock = LocalClock(p=4, tick_probability=0.0, seed=1)
        for _ in range(40):
            clock.advance()
        assert clock.time == 10  # forced tick exactly every 4 rounds

    def test_bounds_contain_truth(self):
        for seed in range(5):
            clock = LocalClock(p=3, tick_probability=0.4, seed=seed)
            for global_round in range(1, 200):
                clock.advance()
                lo, hi = clock.global_time_bounds()
                assert lo <= global_round <= hi, (seed, global_round, lo, hi)

    def test_plausible_epochs(self):
        clock = LocalClock(p=1)
        for _ in range(100):
            clock.advance()
        lo, hi = clock.plausible_epochs(epoch_length=30)
        assert lo == hi == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalClock(p=0)
        with pytest.raises(ValueError):
            LocalClock(p=1, tick_probability=1.5)
