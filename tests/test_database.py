"""Integration tests for VerifiedDatabase + ClientVerifier (the
single-user scheme of Section 4.1)."""

import random

import pytest

from repro.mtree.database import (
    ClientVerifier,
    DeleteQuery,
    QueryResult,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.mtree.proofs import ProofError


@pytest.fixture
def pair():
    db = VerifiedDatabase(order=4)
    client = ClientVerifier(db.root_digest(), order=4)
    return db, client


class TestHappyPath:
    def test_write_then_read(self, pair):
        db, client = pair
        client.apply(WriteQuery(b"k", b"v"), db.execute(WriteQuery(b"k", b"v")))
        assert client.apply(ReadQuery(b"k"), db.execute(ReadQuery(b"k"))) == b"v"

    def test_read_absent(self, pair):
        db, client = pair
        assert client.apply(ReadQuery(b"nope"), db.execute(ReadQuery(b"nope"))) is None

    def test_delete(self, pair):
        db, client = pair
        client.apply(WriteQuery(b"k", b"v"), db.execute(WriteQuery(b"k", b"v")))
        client.apply(DeleteQuery(b"k"), db.execute(DeleteQuery(b"k")))
        assert client.apply(ReadQuery(b"k"), db.execute(ReadQuery(b"k"))) is None

    def test_delete_absent_raises_keyerror(self, pair):
        db, _client = pair
        with pytest.raises(KeyError):
            db.execute(DeleteQuery(b"missing"))

    def test_range(self, pair):
        db, client = pair
        for i in range(10):
            q = WriteQuery(f"k{i}".encode(), f"v{i}".encode())
            client.apply(q, db.execute(q))
        q = RangeQuery(b"k2", b"k5")
        entries = client.apply(q, db.execute(q))
        assert [k for k, _ in entries] == [b"k2", b"k3", b"k4", b"k5"]

    def test_root_tracks_server(self, pair):
        db, client = pair
        rng = random.Random(0)
        for step in range(300):
            key = f"k{rng.randrange(40)}".encode()
            if rng.random() < 0.6:
                q = WriteQuery(key, f"v{step}".encode())
            elif db.get(key) is not None:
                q = DeleteQuery(key)
            else:
                q = ReadQuery(key)
            client.apply(q, db.execute(q))
            assert client.root_digest == db.root_digest()

    def test_unknown_query_type(self, pair):
        db, client = pair
        with pytest.raises(TypeError):
            db.execute("not a query")
        with pytest.raises(TypeError):
            client.apply("not a query", QueryResult(answer=None, proof=None))


class TestDetection:
    def test_stale_read_after_external_write(self, pair):
        """A second writer moves the root; the client's next verification
        against its stale root must fail (this is exactly why multi-user
        needs the paper's protocols)."""
        db, client = pair
        q = WriteQuery(b"k", b"v1")
        client.apply(q, db.execute(q))
        db.execute(WriteQuery(b"k", b"v2"))  # unseen external write
        with pytest.raises(ProofError):
            client.apply(ReadQuery(b"k"), db.execute(ReadQuery(b"k")))

    def test_answer_proof_mismatch(self, pair):
        db, client = pair
        q = WriteQuery(b"k", b"v")
        client.apply(q, db.execute(q))
        result = db.execute(ReadQuery(b"k"))
        lying = QueryResult(answer=b"EVIL", proof=result.proof)
        with pytest.raises(ProofError):
            client.apply(ReadQuery(b"k"), lying)

    def test_wrong_proof_type_for_read(self, pair):
        db, client = pair
        q = WriteQuery(b"k", b"v")
        write_result = db.execute(q)
        client.apply(q, write_result)
        read_result = db.execute(ReadQuery(b"k"))
        with pytest.raises(ProofError):
            client.apply(ReadQuery(b"k"), QueryResult(answer=b"v", proof=write_result.proof))
        # and vice versa
        with pytest.raises(ProofError):
            client.apply(WriteQuery(b"k", b"v2"), QueryResult(answer=None, proof=read_result.proof))

    def test_range_bounds_mismatch(self, pair):
        db, client = pair
        q = WriteQuery(b"k1", b"v")
        client.apply(q, db.execute(q))
        result = db.execute(RangeQuery(b"k0", b"k9"))
        with pytest.raises(ProofError):
            client.apply(RangeQuery(b"k0", b"k5"), result)

    def test_expected_new_root_is_side_effect_free(self, pair):
        db, client = pair
        q = WriteQuery(b"k", b"v")
        result = db.execute(q)
        before = client.root_digest
        client.expected_new_root(q, result.proof)
        assert client.root_digest == before
        client.apply(q, result)
        assert client.root_digest != before
        assert client.root_digest == db.root_digest()
