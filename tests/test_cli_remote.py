"""Tests for the CLI's remote (TCP) mode and the serve machinery."""

import io
import os
import tempfile

import pytest

from repro.cli import RemoteServerAdapter, main
from repro.mtree.database import VerifiedDatabase, WriteQuery
from repro.mtree.persistence import dump_database, load_database
from repro.net.server import serve_in_thread


def run(argv, expect=0):
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == expect, out.getvalue()
    return out.getvalue()


@pytest.fixture
def remote_server():
    database = VerifiedDatabase(order=8)
    server = serve_in_thread(database=database)
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture
def client_dir(tmp_path):
    d = tmp_path / "clientdir"
    d.mkdir()
    return str(d)


def commit_remote(client_dir, remote, path, content, author="alice"):
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as handle:
        handle.write(content)
        name = handle.name
    try:
        return run(["-R", client_dir, "-a", author, "--remote", remote,
                    "commit", path, "-m", "msg", "--file", name])
    finally:
        os.unlink(name)


class TestRemoteMode:
    def test_commit_and_checkout_over_tcp(self, remote_server, client_dir):
        host, port = remote_server.address
        remote = f"{host}:{port}"
        text = commit_remote(client_dir, remote, "src/a.c", "hello tcp\n")
        assert "committed src/a.c 1.1" in text
        out = run(["-R", client_dir, "-a", "alice", "--remote", remote, "checkout", "src/a.c"])
        assert out == "hello tcp\n"

    def test_trust_anchor_per_remote(self, remote_server, client_dir):
        host, port = remote_server.address
        remote = f"{host}:{port}"
        commit_remote(client_dir, remote, "f.txt", "x\n", author="alice")
        anchor = os.path.join(client_dir, "trust",
                              f"alice@{host}_{port}.digest")
        assert os.path.isfile(anchor)

    def test_stale_anchor_detects_hidden_history(self, remote_server, client_dir):
        """Someone else advances the server while our anchor is stale:
        our next verified read must refuse (this is the single-user
        limitation the multi-user protocols solve)."""
        host, port = remote_server.address
        remote = f"{host}:{port}"
        commit_remote(client_dir, remote, "f.txt", "mine\n", author="alice")
        # another client (no shared anchor) writes directly
        with remote_server.state_lock:
            remote_server.state.database.execute(
                WriteQuery(b"\x01unseen", b"sneaky"))
        text = run(["-R", client_dir, "-a", "alice", "--remote", remote,
                    "checkout", "f.txt"], expect=3)
        assert "INTEGRITY VIOLATION" in text

    def test_bad_remote_spec(self, client_dir):
        text = run(["-R", client_dir, "--remote", "nonsense", "ls"], expect=2)
        assert "HOST:PORT" in text

    def test_unreachable_remote(self, client_dir):
        text = run(["-R", client_dir, "--remote", "127.0.0.1:1", "ls"], expect=2)
        assert "cannot reach" in text


class TestRemoteAdapter:
    def test_root_digest_probe_matches_server(self, remote_server):
        host, port = remote_server.address
        adapter = RemoteServerAdapter(host, port)
        try:
            assert adapter.root_digest() == remote_server.initial_root_digest()
        finally:
            adapter.close()


class TestServeRoundtrip:
    def test_served_repository_persists(self, tmp_path):
        """The serve machinery end to end: init a repo on disk, host its
        database, mutate over TCP, persist, reload -- the snapshot holds
        the remote commits and reloads to the same root."""
        repo = str(tmp_path / "repo")
        run(["init", repo])
        with open(os.path.join(repo, "db.snapshot"), "rb") as handle:
            database = load_database(handle.read())
        server = serve_in_thread(database=database)
        try:
            host, port = server.address
            client_dir = str(tmp_path / "client")
            os.makedirs(client_dir)
            commit_remote(client_dir, f"{host}:{port}", "f.txt", "persist me\n")
            with server.state_lock:
                snapshot = dump_database(server.state.database)
        finally:
            server.shutdown()
            server.server_close()
        with open(os.path.join(repo, "db.snapshot"), "wb") as handle:
            handle.write(snapshot)
        # local mode now sees the remote commit, fully verified
        out = run(["-R", repo, "checkout", "f.txt"])
        assert out == "persist me\n"
