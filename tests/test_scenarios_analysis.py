"""Tests for scenario builders and the analysis helpers."""

import pytest

from helpers import run_scenario
from repro.analysis import (
    detection_metrics,
    format_series,
    format_table,
    overhead_metrics,
    preservation_factor,
    user_gaps,
)
from repro.core.scenarios import PROTOCOLS, build_simulation, make_keys, populate_database
from repro.mtree.database import VerifiedDatabase
from repro.server.attacks import ForkAttack
from repro.simulation.workload import steady_workload, epoch_workload


class TestBuilders:
    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            build_simulation("protocol9", steady_workload(2, 2))

    def test_all_protocols_build(self):
        workload = steady_workload(2, 3, seed=1)
        epoch_wl = epoch_workload(2, 30, 2, seed=1)
        for protocol in PROTOCOLS:
            wl = epoch_wl if protocol == "protocol3" else workload
            simulation = build_simulation(protocol, wl, seed=1)
            assert simulation.server is not None
            assert len(simulation.users) == 2

    def test_populate_database_covers_workload_keys(self):
        workload = steady_workload(3, 10, keyspace=12, seed=2)
        database = VerifiedDatabase(order=4)
        populate_database(database, workload)
        for intents in workload.schedules.values():
            for intent in intents:
                if hasattr(intent.query, "key"):
                    assert database.get(intent.query.key) is not None

    def test_make_keys_deterministic(self):
        a = make_keys(["x", "y"], seed=3)
        b = make_keys(["x", "y"], seed=3)
        assert a.signers["x"].public_key == b.signers["x"].public_key
        assert a.ca.public_key == b.ca.public_key

    def test_make_keys_verifier_covers_all_users(self):
        keys = make_keys(["x", "y", "z"], seed=4)
        for user in ("x", "y", "z"):
            assert keys.verifier.knows(user)

    def test_empty_workload_rejected(self):
        from repro.simulation.workload import Workload

        with pytest.raises(ValueError):
            build_simulation("naive", Workload(name="empty", schedules={}))


class TestMetrics:
    @pytest.fixture(scope="class")
    def honest_report(self):
        return run_scenario("protocol2", steady_workload(3, 8, seed=5), k=4, seed=5)

    @pytest.fixture(scope="class")
    def attacked_report(self):
        workload = steady_workload(3, 12, keyspace=6, write_ratio=0.6, seed=6)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        return run_scenario("protocol2", workload, attack=attack, k=4, seed=6)

    def test_detection_metrics_honest(self, honest_report):
        metrics = detection_metrics(honest_report)
        assert not metrics.deviated
        assert not metrics.detected
        assert not metrics.false_alarm

    def test_detection_metrics_attacked(self, attacked_report):
        metrics = detection_metrics(attacked_report)
        assert metrics.deviated
        assert metrics.detected
        assert metrics.detection_delay_rounds is not None
        assert metrics.reasons

    def test_overhead_metrics(self, honest_report):
        metrics = overhead_metrics(honest_report)
        assert metrics.operations == 24
        assert metrics.messages_per_operation == pytest.approx(2.0)
        assert metrics.throughput_ops_per_round > 0

    def test_user_gaps(self, honest_report):
        gaps = user_gaps(honest_report, "user0")
        assert len(gaps) == 7
        assert all(g > 0 for g in gaps)

    def test_preservation_factor_self_is_one(self, honest_report):
        assert preservation_factor(honest_report, honest_report, "user0") == pytest.approx(1.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "alpha" in lines[3]
        assert len({len(line) for line in lines[2:]}) == 1  # aligned rows

    def test_format_table_value_rendering(self):
        text = format_table(["v"], [[True], [False], [None], [1.23456], ["s"]])
        assert "yes" in text and "no" in text and "-" in text and "1.235" in text

    def test_format_series(self):
        text = format_series("fig", [1, 2], [10.0, 20.0], "x", "y")
        assert text.startswith("fig")
        assert "10.000" in text


class TestReportCollector:
    def test_collects_saved_tables(self, tmp_path):
        import io
        from repro.analysis.report import collect_report, main

        results = tmp_path / "results"
        results.mkdir()
        (results / "E1_x.txt").write_text("table one\nrow\n")
        (results / "E2_y.txt").write_text("table two\n")
        (results / "ignored.json").write_text("{}")
        text = collect_report(str(results))
        assert "[E1_x]" in text and "table one" in text
        assert "[E2_y]" in text
        assert "ignored" not in text
        assert text.index("[E1_x]") < text.index("[E2_y]")

        out = io.StringIO()
        assert main([str(results)], out=out) == 0
        assert "table one" in out.getvalue()

    def test_missing_dir(self, tmp_path):
        import io
        from repro.analysis.report import main

        out = io.StringIO()
        assert main([str(tmp_path / "nope")], out=out) == 2
        assert "error" in out.getvalue()

    def test_empty_dir(self, tmp_path):
        from repro.analysis.report import collect_report
        import pytest as _pytest

        empty = tmp_path / "empty"
        empty.mkdir()
        with _pytest.raises(FileNotFoundError):
            collect_report(str(empty))


class TestCommitMany:
    def test_multi_file_commit(self):
        from repro.core.facade import CvsClient, CvsServer

        client = CvsClient(CvsServer(order=4), author="dev")
        revisions = client.commit_many(
            {"b.txt": ["bee"], "a.txt": ["ay"]}, "bulk import")
        assert set(revisions) == {"a.txt", "b.txt"}
        assert revisions["a.txt"].number == "1.1"
        assert client.checkout("b.txt") == ["bee"]

    def test_empty_commit_rejected(self):
        from repro.core.facade import CvsClient, CvsServer
        import pytest as _pytest

        client = CvsClient(CvsServer(order=4), author="dev")
        with _pytest.raises(ValueError):
            client.commit_many({})


class TestTimeline:
    def test_renders_events_in_order(self):
        from repro.analysis.timeline import render_timeline
        from repro.server.attacks import ForkAttack
        from repro.simulation.workload import steady_workload

        workload = steady_workload(3, 8, keyspace=6, write_ratio=0.6, seed=6)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        report = run_scenario("protocol2", workload, attack=attack, k=3, seed=6)
        text = render_timeline(report)
        assert "issues #1" in text
        assert "completes #1" in text
        assert "SERVER DEVIATES" in text
        assert "ALARMS" in text
        assert text.endswith("outcome: detected")
        # round-ordered
        rounds = [int(line.split()[0][1:]) for line in text.splitlines()
                  if line.strip().startswith("r")]
        assert rounds == sorted(rounds)

    def test_windowing_and_truncation(self):
        from repro.analysis.timeline import render_timeline
        from repro.server.attacks import ForkAttack
        from repro.simulation.workload import steady_workload

        workload = steady_workload(3, 10, keyspace=6, write_ratio=0.6, seed=7)
        attack = ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2)
        report = run_scenario("protocol2", workload, attack=attack, k=3, seed=7)
        windowed = render_timeline(report, around_deviation=4)
        assert "SERVER DEVIATES" in windowed
        assert len(windowed.splitlines()) < len(render_timeline(report).splitlines())
        tiny = render_timeline(report, max_events=3)
        assert "truncated" in tiny

    def test_clean_run(self):
        from repro.analysis.timeline import render_timeline
        from repro.simulation.workload import steady_workload

        report = run_scenario("protocol2", steady_workload(2, 4, seed=8), k=50, seed=8)
        text = render_timeline(report)
        assert "outcome: no alarm, no deviation" in text
