"""Tests for branch workflows through the facade and the CLI."""

import io
import os
import tempfile

import pytest

from repro.cli import main
from repro.core.facade import CvsClient, CvsServer


@pytest.fixture
def dev():
    server = CvsServer(order=4)
    return CvsClient(server, author="dev")


class TestFacadeBranches:
    def test_branch_at_head(self, dev):
        dev.commit("f.c", ["v1"], "r1")
        dev.commit("f.c", ["v2"], "r2")
        branch_id = dev.branch("f.c")
        assert branch_id == "1.2.2"
        assert dev.branches("f.c") == ["1.2.2"]

    def test_branch_at_old_revision(self, dev):
        dev.commit("f.c", ["v1"], "r1")
        dev.commit("f.c", ["v2"], "r2")
        assert dev.branch("f.c", "1.1") == "1.1.2"

    def test_branch_commit_and_checkout(self, dev):
        dev.commit("f.c", ["trunk v1"])
        branch = dev.branch("f.c")
        revision = dev.commit_on_branch("f.c", branch, ["branch v1"], "fix")
        assert revision.number == "1.1.2.1"
        assert dev.checkout("f.c", "1.1.2.1") == ["branch v1"]
        assert dev.checkout("f.c") == ["trunk v1"]  # trunk untouched

    def test_branch_state_survives_verified_roundtrip(self, dev):
        """Branches live inside the Merkle-committed store blob: the
        root digest covers them too."""
        dev.commit("f.c", ["x"])
        before = dev.root_digest
        dev.branch("f.c")
        assert dev.root_digest != before  # branch creation is committed

    def test_merge_branch_clean(self, dev):
        dev.commit("f.c", ["line1", "line2", "line3"], "base")
        branch = dev.branch("f.c")
        dev.commit_on_branch("f.c", branch, ["line1", "line2", "line3", "hotfix"], "fix")
        dev.commit("f.c", ["line0", "line1", "line2", "line3"], "feature")
        result = dev.merge_branch("f.c", branch)
        assert not result.has_conflicts
        assert dev.checkout("f.c") == ["line0", "line1", "line2", "line3", "hotfix"]
        assert dev.log("f.c")[-1].log_message.startswith("merge 1.1.2")

    def test_merge_branch_conflict_commits_nothing(self, dev):
        dev.commit("f.c", ["shared"], "base")
        branch = dev.branch("f.c")
        dev.commit_on_branch("f.c", branch, ["branch edit"])
        dev.commit("f.c", ["trunk edit"])
        head_before = dev.log("f.c")[-1].number
        result = dev.merge_branch("f.c", branch)
        assert result.has_conflicts
        assert dev.log("f.c")[-1].number == head_before

    def test_merge_empty_branch_rejected(self, dev):
        dev.commit("f.c", ["x"])
        branch = dev.branch("f.c")
        with pytest.raises(ValueError):
            dev.merge_branch("f.c", branch)

    def test_unknown_path_errors(self, dev):
        with pytest.raises(FileNotFoundError):
            dev.branch("ghost.c")
        with pytest.raises(FileNotFoundError):
            dev.branches("ghost.c")
        with pytest.raises(FileNotFoundError):
            dev.commit_on_branch("ghost.c", "1.1.2", ["x"])
        with pytest.raises(FileNotFoundError):
            dev.merge_branch("ghost.c", "1.1.2")


def run(argv, expect=0):
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == expect, out.getvalue()
    return out.getvalue()


def write_temp(content: str) -> str:
    handle = tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False)
    handle.write(content)
    handle.close()
    return handle.name


@pytest.fixture
def repo(tmp_path):
    repo_dir = str(tmp_path / "repo")
    run(["init", repo_dir])
    name = write_temp("line1\nline2\nline3\n")
    try:
        run(["-R", repo_dir, "commit", "f.c", "-m", "base", "--file", name])
    finally:
        os.unlink(name)
    return repo_dir


class TestCliBranches:
    def test_branch_create_and_list(self, repo):
        text = run(["-R", repo, "branch", "f.c"])
        assert "created branch 1.1.2" in text
        text = run(["-R", repo, "branch", "f.c", "--list"])
        assert text.strip() == "1.1.2"

    def test_branch_commit_and_merge(self, repo):
        run(["-R", repo, "branch", "f.c"])
        name = write_temp("line1\nline2\nline3\nhotfix\n")
        try:
            text = run(["-R", repo, "bcommit", "f.c", "-b", "1.1.2", "--file", name, "-m", "fix"])
        finally:
            os.unlink(name)
        assert "1.1.2.1" in text
        text = run(["-R", repo, "merge", "f.c", "-b", "1.1.2"])
        assert "merged 1.1.2" in text
        assert run(["-R", repo, "checkout", "f.c"]).splitlines()[-1] == "hotfix"

    def test_merge_conflict_reports_markers(self, repo):
        run(["-R", repo, "branch", "f.c"])
        name = write_temp("branch version\n")
        try:
            run(["-R", repo, "bcommit", "f.c", "-b", "1.1.2", "--file", name])
        finally:
            os.unlink(name)
        name = write_temp("trunk version\n")
        try:
            run(["-R", repo, "commit", "f.c", "--file", name])
        finally:
            os.unlink(name)
        text = run(["-R", repo, "merge", "f.c", "-b", "1.1.2"], expect=1)
        assert "CONFLICTS" in text
        assert "<<<<<<<" in text

    def test_update_command_clean(self, repo):
        # repository head advances
        name = write_temp("line1\nline2\nline3 EDITED\n")
        try:
            run(["-R", repo, "commit", "f.c", "--file", name])
        finally:
            os.unlink(name)
        # working copy based on 1.1 with a head-line edit
        working = write_temp("line1 LOCAL\nline2\nline3\n")
        try:
            text = run(["-R", repo, "update", "f.c", "-r", "1.1", "--file", working])
            assert "merged cleanly" in text
            with open(working) as handle:
                assert handle.read() == "line1 LOCAL\nline2\nline3 EDITED\n"
        finally:
            os.unlink(working)

    def test_update_command_conflict(self, repo):
        name = write_temp("repo edit\nline2\nline3\n")
        try:
            run(["-R", repo, "commit", "f.c", "--file", name])
        finally:
            os.unlink(name)
        working = write_temp("local edit\nline2\nline3\n")
        try:
            text = run(["-R", repo, "update", "f.c", "-r", "1.1", "--file", working], expect=1)
            assert "conflict" in text
            with open(working) as handle:
                content = handle.read()
            assert "<<<<<<<" in content and ">>>>>>>" in content
        finally:
            os.unlink(working)
