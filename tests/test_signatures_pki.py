"""Tests for the signing API and the minimal PKI."""

import pytest

from repro.crypto.hashing import hash_bytes
from repro.crypto.pki import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    build_verifier,
    verify_certificate,
)
from repro.crypto.signatures import Signature, Signer, Verifier

BITS = 512


@pytest.fixture(scope="module")
def alice():
    return Signer.generate("alice", bits=BITS, seed=10)


@pytest.fixture(scope="module")
def bob():
    return Signer.generate("bob", bits=BITS, seed=11)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(bits=BITS, seed=12)


class TestSigner:
    def test_identity(self, alice):
        assert alice.signer_id == "alice"

    def test_sign_names_signer(self, alice):
        signature = alice.sign(hash_bytes(b"m"))
        assert signature.signer_id == "alice"

    def test_repr(self, alice):
        signature = alice.sign(hash_bytes(b"m"))
        assert "alice" in repr(signature)


class TestVerifier:
    def test_verify_known_signer(self, alice):
        verifier = Verifier({"alice": alice.public_key})
        digest = hash_bytes(b"m")
        assert verifier.verify(alice.sign(digest), digest)

    def test_unknown_signer_fails(self, alice):
        verifier = Verifier()
        digest = hash_bytes(b"m")
        assert not verifier.verify(alice.sign(digest), digest)

    def test_digest_mismatch_fails(self, alice):
        verifier = Verifier({"alice": alice.public_key})
        signature = alice.sign(hash_bytes(b"m1"))
        assert not verifier.verify(signature, hash_bytes(b"m2"))

    def test_replayed_signature_over_stale_digest_fails(self, alice):
        # The classic stale-root attack: the server hands back an old
        # but genuine signature.  Verification against the *expected*
        # digest must fail.
        verifier = Verifier({"alice": alice.public_key})
        stale = alice.sign(hash_bytes(b"old state"))
        assert not verifier.verify(stale, hash_bytes(b"current state"))

    def test_impersonation_fails(self, alice, bob):
        # Bob's genuine signature presented as Alice's.
        verifier = Verifier({"alice": alice.public_key, "bob": bob.public_key})
        digest = hash_bytes(b"m")
        forged = Signature(signer_id="alice", digest=digest, raw=bob.sign(digest).raw)
        assert not verifier.verify(forged, digest)

    def test_register_and_knows(self, alice):
        verifier = Verifier()
        assert not verifier.knows("alice")
        verifier.register("alice", alice.public_key)
        assert verifier.knows("alice")


class TestCertificateAuthority:
    def test_issue_and_verify(self, ca, alice):
        certificate = ca.issue("alice", alice.public_key)
        verify_certificate(certificate, ca.public_key)  # must not raise

    def test_serials_increase(self, ca, alice, bob):
        c1 = ca.issue("alice", alice.public_key)
        c2 = ca.issue("bob", bob.public_key)
        assert c2.serial > c1.serial

    def test_tampered_subject_fails(self, ca, alice):
        certificate = ca.issue("alice", alice.public_key)
        mallory = Certificate(
            subject_id="mallory",
            public_key=certificate.public_key,
            serial=certificate.serial,
            issuer_id=certificate.issuer_id,
            signature=certificate.signature,
        )
        with pytest.raises(CertificateError):
            verify_certificate(mallory, ca.public_key)

    def test_swapped_key_fails(self, ca, alice, bob):
        certificate = ca.issue("alice", alice.public_key)
        swapped = Certificate(
            subject_id=certificate.subject_id,
            public_key=bob.public_key,
            serial=certificate.serial,
            issuer_id=certificate.issuer_id,
            signature=certificate.signature,
        )
        with pytest.raises(CertificateError):
            verify_certificate(swapped, ca.public_key)

    def test_revocation(self, ca, alice):
        certificate = ca.issue("alice", alice.public_key)
        ca.revoke(certificate.serial)
        assert certificate.serial in ca.revocation_list()
        with pytest.raises(CertificateError):
            verify_certificate(certificate, ca.public_key, ca.revocation_list())

    def test_revoke_unknown_serial(self, ca):
        with pytest.raises(CertificateError):
            ca.revoke(10_000)

    def test_wrong_ca_key_fails(self, ca, alice):
        certificate = ca.issue("alice", alice.public_key)
        other_ca = CertificateAuthority(bits=BITS, seed=77)
        with pytest.raises(CertificateError):
            verify_certificate(certificate, other_ca.public_key)


class TestBuildVerifier:
    def test_builds_directory(self, ca, alice, bob):
        certificates = [ca.issue("alice", alice.public_key), ca.issue("bob", bob.public_key)]
        verifier = build_verifier(certificates, ca.public_key)
        digest = hash_bytes(b"m")
        assert verifier.verify(alice.sign(digest), digest)
        assert verifier.verify(bob.sign(digest), digest)

    def test_rejects_revoked(self, ca, alice):
        certificate = ca.issue("alice", alice.public_key)
        with pytest.raises(CertificateError):
            build_verifier([certificate], ca.public_key, frozenset({certificate.serial}))
