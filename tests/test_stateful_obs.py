"""Hypothesis stateful test: the obs counters must reconcile exactly
with the simulator's own bookkeeping.

The machine accumulates arbitrary per-user operation schedules,
optionally arms a forking server, then executes the simulation with
observability on and asserts that every obs counter agrees with the
:class:`SimulationReport` -- the instrumentation and the report are two
independent observers of one run, so any drift is a bug in the hooks
(missing, double-firing, or leaking across runs)."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro import obs
from repro.analysis.metrics import obs_reconciliation
from repro.core.scenarios import build_simulation
from repro.mtree.database import ReadQuery, WriteQuery
from repro.server.attacks import ForkAttack
from repro.simulation.workload import Intent, Workload

USERS = ["user0", "user1", "user2"]


class ObsReconciliationMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ops = {user: [] for user in USERS}
        self.attack = None

    @rule(user=st.sampled_from(USERS), key=st.integers(0, 7),
          write=st.booleans(), gap=st.integers(1, 6))
    def schedule_op(self, user, key, write, gap):
        ops = self.ops[user]
        round_no = (ops[-1].round if ops else 0) + gap
        query = (WriteQuery(f"k{key}".encode(), f"{user}@{round_no}".encode())
                 if write else ReadQuery(f"k{key}".encode()))
        ops.append(Intent(round=round_no, query=query))

    @rule(victim=st.sampled_from(USERS), fork_round=st.integers(2, 12))
    def arm_fork(self, victim, fork_round):
        self.attack = ForkAttack(victims=[victim], fork_round=fork_round)

    @precondition(lambda self: any(self.ops.values()))
    @rule(protocol=st.sampled_from(["protocol2", "protocol3"]))
    def run_and_reconcile(self, protocol):
        workload = Workload(name="stateful-obs",
                            schedules={u: list(v) for u, v in self.ops.items()})
        obs.reset()
        obs.enable()
        try:
            simulation = build_simulation(protocol, workload,
                                          attack=self.attack, k=3, seed=5)
            report = simulation.execute(max_rounds=3000)
            snap = obs.snapshot()
        finally:
            obs.disable()

        checks = obs_reconciliation(report, snap)
        assert all(entry["ok"] for entry in checks.values()), checks

        # Per-user series must match too, not just grand totals.
        issued = obs.counter("sim.ops_issued")
        completed = obs.counter("sim.ops_completed")
        for user in USERS:
            assert issued.value(user=user) == len(report.issue_rounds[user])
            assert completed.value(user=user) == report.operations_completed[user]

        # Every completed operation carried a VO that verified.
        verified = obs.counter("protocol.ops_verified").total()
        assert verified >= sum(report.operations_completed.values())

        # A detected run must show its alarms in the obs counters and a
        # fork can never be flagged before it happened.
        if report.detected:
            assert obs.counter("sim.alarms").total() == len(report.alarms)
            if report.first_deviation_round is not None:
                assert report.detection_round >= report.first_deviation_round

        # Fresh schedules for the next run in this example.
        self.ops = {user: [] for user in USERS}
        self.attack = None


TestObsReconciliationMachine = ObsReconciliationMachine.TestCase
TestObsReconciliationMachine.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None)
