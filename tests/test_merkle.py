"""Tests for the Merkle layer: digest maintenance and O(log n) updates."""

import math

from repro.mtree.merkle import MerkleBPlusTree


def fill(mtree, count):
    for i in range(count):
        mtree.insert(f"k{i:05d}".encode(), f"v{i}".encode())


class TestRootDigest:
    def test_empty_tree_has_stable_digest(self):
        assert MerkleBPlusTree().root_digest() == MerkleBPlusTree().root_digest()

    def test_insert_changes_root(self):
        mtree = MerkleBPlusTree()
        before = mtree.root_digest()
        mtree.insert(b"a", b"1")
        assert mtree.root_digest() != before

    def test_overwrite_changes_root(self):
        mtree = MerkleBPlusTree()
        mtree.insert(b"a", b"1")
        before = mtree.root_digest()
        mtree.insert(b"a", b"2")
        assert mtree.root_digest() != before

    def test_same_history_same_digest(self):
        a, b = MerkleBPlusTree(order=4), MerkleBPlusTree(order=4)
        fill(a, 50)
        fill(b, 50)
        assert a.root_digest() == b.root_digest()

    def test_value_matters(self):
        a, b = MerkleBPlusTree(), MerkleBPlusTree()
        a.insert(b"k", b"v1")
        b.insert(b"k", b"v2")
        assert a.root_digest() != b.root_digest()

    def test_insert_then_delete_restores_digest(self):
        mtree = MerkleBPlusTree(order=4)
        fill(mtree, 10)
        before = mtree.root_digest()
        mtree.insert(b"zzz", b"tmp")
        assert mtree.root_digest() != before
        mtree.delete(b"zzz")
        assert mtree.root_digest() == before

    def test_read_does_not_change_root(self):
        mtree = MerkleBPlusTree()
        fill(mtree, 20)
        before = mtree.root_digest()
        assert mtree.get(b"k00003") == b"v3"
        list(mtree.range(b"k00001", b"k00009"))
        assert mtree.root_digest() == before

    def test_delegated_api(self):
        mtree = MerkleBPlusTree(order=5)
        fill(mtree, 12)
        assert len(mtree) == 12
        assert b"k00000" in mtree
        assert mtree.order == 5
        assert mtree.height() >= 2
        mtree.check_invariants()


class TestLazyRecomputation:
    def test_update_rehashes_logarithmically(self):
        """The paper's O(log n) claim: after one update, recomputing the
        root re-hashes only the dirty path, not the whole tree."""
        mtree = MerkleBPlusTree(order=8)
        fill(mtree, 4096)
        mtree.root_digest()  # make everything clean
        baseline = mtree.digest_recomputations
        mtree.insert(b"k02048", b"updated")
        mtree.root_digest()
        touched = mtree.digest_recomputations - baseline
        # Path length is height; splits can add a few nodes.
        assert touched <= 3 * mtree.height()
        assert touched <= 4 * math.ceil(math.log2(4096))

    def test_cached_root_costs_nothing(self):
        mtree = MerkleBPlusTree()
        fill(mtree, 100)
        mtree.root_digest()
        before = mtree.digest_recomputations
        mtree.root_digest()
        assert mtree.digest_recomputations == before

    def test_first_computation_touches_every_node(self):
        mtree = MerkleBPlusTree(order=4)
        fill(mtree, 64)
        mtree.digest_recomputations = 0
        mtree.root_digest()
        # At least one digest per leaf-level entry group; definitely > height.
        assert mtree.digest_recomputations > mtree.height()
