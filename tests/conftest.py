"""Pytest configuration: make the shared helpers importable and expose
common fixtures.

PKI-dependent tests share one set of deterministic keypairs per session
instead of regenerating 512/1024-bit RSA keys per module: the fixtures
below are session-scoped, and underneath them the seeded keypair cache
in :mod:`repro.crypto.rsa` makes any *further* ``generate_keypair``/
``Signer.generate``/``make_keys`` call with an already-seen
``(bits, seed)`` a dictionary hit.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from helpers import FakeContext

SHARED_USERS = ["alice", "bob"]
SHARED_KEY_BITS = 512


@pytest.fixture(autouse=True)
def obs_isolation():
    """Every test starts and ends with observability off and zeroed, so
    counters from one test never bleed into another's reconciliation."""
    from repro import obs

    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def fake_ctx():
    return FakeContext()


@pytest.fixture(scope="session")
def shared_signers():
    """Deterministic per-user signers shared across the whole session."""
    from repro.crypto.signatures import Signer

    return {
        user: Signer.generate(user, bits=SHARED_KEY_BITS, seed=20 + index)
        for index, user in enumerate(SHARED_USERS)
    }


@pytest.fixture(scope="session")
def shared_keys():
    """A full CA + signers + verifier bundle shared across the session.

    Matches ``make_keys(["alice", "bob"], seed=77)`` so tests that need
    certificate-backed verification reuse one generation.
    """
    from repro.core.scenarios import make_keys

    return make_keys(list(SHARED_USERS), seed=77)
