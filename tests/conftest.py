"""Pytest configuration: make the shared helpers importable and expose
common fixtures."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from helpers import FakeContext


@pytest.fixture
def fake_ctx():
    return FakeContext()
