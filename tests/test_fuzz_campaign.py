"""Randomized soundness campaign: seeded adversaries vs Protocol II.

The empirical form of Theorem 4.2 over a broad adversary space: for any
randomly chosen attack strategy, victim, and trigger round,

* no honest user ever raises a false alarm, and
* whenever the attack produces a deviation AND the workload gives any
  user more than k post-deviation operations, some user detects it.
"""

import pytest

from helpers import run_scenario
from repro.server.attacks import CompositeAttack, ForkAttack, RandomizedAttackSchedule, TamperValueAttack
from repro.simulation.workload import steady_workload

K = 4


def campaign_run(seed: int):
    workload = steady_workload(3, 16, spacing=4, keyspace=6,
                               write_ratio=0.6, seed=seed)
    attack = RandomizedAttackSchedule(workload.user_ids, workload.horizon(), seed)
    report = run_scenario("protocol2", workload, attack=attack, k=K, seed=seed)
    return attack, report


class TestRandomizedCampaign:
    @pytest.mark.parametrize("seed", range(20))
    def test_soundness_and_conditional_detection(self, seed):
        attack, report = campaign_run(seed)
        assert not report.false_alarm, (seed, attack.chosen, report.alarms)
        if report.first_deviation_round is None:
            return  # the attack never actually deviated (e.g. no victim read)
        ops_after = report.max_ops_after_deviation()
        # Theorem 4.2's exact conditional promise:
        assert report.detected or ops_after <= K, (seed, attack.chosen, ops_after)

    def test_campaign_actually_exercises_attacks(self):
        deviated = sum(1 for seed in range(20)
                       if campaign_run(seed)[1].first_deviation_round is not None)
        assert deviated >= 10  # most seeds must produce real deviations

    def test_detection_rate_is_high(self):
        detected = fired = 0
        for seed in range(20):
            _attack, report = campaign_run(seed)
            if report.first_deviation_round is not None:
                fired += 1
                if report.detected:
                    detected += 1
        assert detected >= fired * 0.8  # near-total detection across the space


class TestCompositeAttack:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompositeAttack([])

    def test_combines_fork_and_tamper(self):
        workload = steady_workload(3, 16, spacing=4, keyspace=6,
                                   write_ratio=0.5, seed=99)
        attack = CompositeAttack([
            ForkAttack(victims=["user1"], fork_round=workload.horizon() // 2),
            TamperValueAttack(victim="user0", tamper_round=workload.horizon() // 3),
        ])
        report = run_scenario("protocol2", workload, attack=attack, k=K, seed=99)
        assert report.first_deviation_round is not None
        assert report.detected
        assert not report.false_alarm

    def test_deviation_round_is_earliest_component(self):
        workload = steady_workload(3, 16, spacing=4, keyspace=6,
                                   write_ratio=0.5, seed=7)
        tamper = TamperValueAttack(victim="user0", tamper_round=10)
        fork = ForkAttack(victims=["user1"], fork_round=60)
        composite = CompositeAttack([fork, tamper])
        run_scenario("protocol2", workload, attack=composite, k=500, seed=7)
        if tamper.first_deviation_round is not None:
            assert composite.first_deviation_round <= tamper.first_deviation_round
