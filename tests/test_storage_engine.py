"""The streaming shard codec: tree <-> page streams, bounded residency,
root verification, and segment-replay semantics.

The codec is what makes a million-entry restart possible without
materialising the serialised tree: pages are parsed as they arrive.
``LoadStats.max_resident_page_bytes`` is the proof obligation -- these
tests pin it to at most two pages (one per stream) regardless of tree
size.
"""

import pytest

from repro.crypto.hashing import hash_bytes
from repro.mtree.database import DeleteQuery, WriteQuery
from repro.mtree.forest import shard_for_key
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.persistence import (
    PersistenceError,
    iter_tree_stream,
    load_tree_stream,
)
from repro.protocols.base import Followup, Request
from repro.storage.engine import (
    PAGE_BYTES,
    LoadStats,
    load_shard_tree,
    replay_data_ops,
    write_shard_pages,
)
from repro.storage.pagestore import MemoryPageStore, StorageError


def _tree(n, order=8, prefix=b"key"):
    tree = MerkleBPlusTree(order=order)
    for i in range(n):
        tree.insert(b"%s%06d" % (prefix, i), b"value-%d" % i)
    return tree


class TestStreamCodec:
    @pytest.mark.parametrize("n", [0, 1, 7, 300])
    def test_roundtrip_identical_root(self, n):
        tree = _tree(n)
        expected, _ = tree.refresh_root()
        nodes, entries = [], []
        for stream, line in iter_tree_stream(tree.tree):
            (nodes if stream == "nodes" else entries).append(line)
        rebuilt = load_tree_stream(iter(nodes), iter(entries))
        twin = MerkleBPlusTree(order=rebuilt.order)
        twin._tree = rebuilt
        actual, _ = twin.refresh_root()
        assert actual == expected
        assert len(rebuilt) == n

    def test_trailing_entries_rejected(self):
        tree = _tree(10)
        nodes, entries = [], []
        for stream, line in iter_tree_stream(tree.tree):
            (nodes if stream == "nodes" else entries).append(line)
        entries.append(entries[-1])  # a spliced-in extra leaf line
        with pytest.raises(PersistenceError, match="trailing"):
            load_tree_stream(iter(nodes), iter(entries))

    def test_truncated_entries_rejected(self):
        tree = _tree(10)
        nodes, entries = [], []
        for stream, line in iter_tree_stream(tree.tree):
            (nodes if stream == "nodes" else entries).append(line)
        with pytest.raises(PersistenceError):
            load_tree_stream(iter(nodes), iter(entries[:-1]))


class TestShardPages:
    def test_roundtrip_through_store(self):
        store = MemoryPageStore()
        tree = _tree(500)
        expected, _ = tree.refresh_root()
        store.begin()
        counts = write_shard_pages(store, 3, 7, tree.tree, page_bytes=1024)
        store.commit()
        assert counts["entries_pages"] > 1  # really paged, not one blob
        loaded = load_shard_tree(store, 3, 7, expected_root=expected)
        assert loaded.refresh_root()[0] == expected
        assert len(loaded) == 500

    def test_load_is_streaming_bounded(self):
        """Peak page residency must stay ~2 pages (one per stream) no
        matter how many pages the shard serialised to."""
        store = MemoryPageStore()
        tree = _tree(2000)
        store.begin()
        counts = write_shard_pages(store, 0, 0, tree.tree, page_bytes=2048)
        store.commit()
        total = counts["nodes_bytes"] + counts["entries_bytes"]
        stats = LoadStats()
        load_shard_tree(store, 0, 0, stats=stats)
        assert stats.bytes == total
        # one page per stream resident at once, each page straddling
        # the target by at most one line
        assert stats.max_resident_page_bytes < 3 * 2048
        assert stats.max_resident_page_bytes < total / 4

    def test_root_mismatch_raises(self):
        store = MemoryPageStore()
        tree = _tree(50)
        store.begin()
        write_shard_pages(store, 0, 0, tree.tree)
        store.commit()
        wrong = hash_bytes(b"not the root")
        with pytest.raises(StorageError, match="manifest records"):
            load_shard_tree(store, 0, 0, expected_root=wrong)

    def test_default_page_size_used(self):
        store = MemoryPageStore()
        tree = _tree(30)
        store.begin()
        counts = write_shard_pages(store, 0, 0, tree.tree)
        store.commit()
        assert counts["entries_bytes"] < PAGE_BYTES
        assert counts["entries_pages"] == 1


class TestReplay:
    def _request(self, query):
        return Request(query=query, extras={"user": "u"})

    def test_replay_mirrors_live_execution(self):
        shards = 4
        shard = 1
        tree = MerkleBPlusTree(order=8)
        messages = []
        mirror = {}
        for i in range(200):
            key = b"rk%04d" % i
            messages.append(self._request(WriteQuery(key, b"v%d" % i)))
            if shard_for_key(key, shards) == shard:
                mirror[key] = b"v%d" % i
        applied = replay_data_ops(tree, messages, shard, shards)
        assert applied == len(mirror)
        assert dict(tree.items()) == mirror

    def test_delete_of_absent_key_is_noop(self):
        """Live execution raises KeyError *before* mutating on a delete
        of an absent key -- so replay must treat it as a no-op, not an
        error and not a tamper signal."""
        shards = 1
        tree = MerkleBPlusTree(order=8)
        tree.insert(b"present", b"x")
        messages = [
            self._request(DeleteQuery(b"never-existed")),
            self._request(DeleteQuery(b"present")),
        ]
        applied = replay_data_ops(tree, messages, 0, shards)
        assert applied == 1
        assert b"present" not in tree

    def test_non_data_messages_ignored(self):
        tree = MerkleBPlusTree(order=8)
        messages = [
            Followup(extras={"user": "u"}),
            self._request(None),  # protocol-internal request
            self._request(WriteQuery(b"k", b"v")),
        ]
        assert replay_data_ops(tree, messages, 0, 1) == 1
        assert tree.get(b"k") == b"v"

    def test_overwrite_keeps_latest(self):
        tree = MerkleBPlusTree(order=8)
        messages = [
            self._request(WriteQuery(b"k", b"first")),
            self._request(WriteQuery(b"k", b"second")),
        ]
        replay_data_ops(tree, messages, 0, 1)
        assert tree.get(b"k") == b"second"
