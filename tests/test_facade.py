"""Tests for the CvsServer/CvsClient facade (the adoptable API)."""

import pytest

from repro.core.facade import CvsClient, CvsServer
from repro.mtree.database import Query, QueryResult, ReadQuery
from repro.mtree.proofs import ProofError


@pytest.fixture
def client():
    server = CvsServer(order=4)
    return CvsClient(server, author="alice")


class TestCvsVerbs:
    def test_commit_and_checkout(self, client):
        revision = client.commit("src/main.c", ["int main() {}"], "initial")
        assert revision.number == "1.1"
        assert client.checkout("src/main.c") == ["int main() {}"]

    def test_multiple_revisions(self, client):
        client.commit("f.txt", ["v1"])
        client.commit("f.txt", ["v1", "v2"])
        client.commit("f.txt", ["v2"])
        assert client.checkout("f.txt") == ["v2"]
        assert client.checkout("f.txt", "1.1") == ["v1"]
        assert client.checkout("f.txt", "1.2") == ["v1", "v2"]

    def test_checkout_missing_file(self, client):
        with pytest.raises(FileNotFoundError):
            client.checkout("ghost.c")

    def test_log(self, client):
        client.commit("f.txt", ["a"], "first")
        client.commit("f.txt", ["b"], "second")
        log = client.log("f.txt")
        assert [r.log_message for r in log] == ["first", "second"]
        assert all(r.author == "alice" for r in log)

    def test_diff(self, client):
        client.commit("f.txt", ["a", "b"])
        client.commit("f.txt", ["a", "c"])
        text = client.diff("f.txt", "1.1")
        assert "-b" in text and "+c" in text

    def test_remove_keeps_history(self, client):
        client.commit("f.txt", ["content"])
        client.remove("f.txt", "cleanup")
        # head of a dead file is empty; old revision still reachable
        assert client.checkout("f.txt") == []
        assert client.checkout("f.txt", "1.1") == ["content"]
        assert client.paths() == []

    def test_recommit_after_remove(self, client):
        client.commit("f.txt", ["v1"])
        client.remove("f.txt")
        revision = client.commit("f.txt", ["v2"])
        assert revision.number == "1.3"
        assert client.checkout("f.txt") == ["v2"]

    def test_remove_missing(self, client):
        with pytest.raises(FileNotFoundError):
            client.remove("ghost.c")

    def test_paths_with_prefix(self, client):
        client.commit("src/a.c", ["x"])
        client.commit("src/b.c", ["y"])
        client.commit("docs/readme", ["z"])
        assert client.paths("src/") == ["src/a.c", "src/b.c"]
        assert client.paths() == ["docs/readme", "src/a.c", "src/b.c"]

    def test_purge_erases_history(self, client):
        client.commit("f.txt", ["v"])
        client.purge("f.txt")
        with pytest.raises(FileNotFoundError):
            client.checkout("f.txt")

    def test_two_clients_sequential(self):
        """Two clients can share a server as long as each verifies every
        operation it performs (joint root tracking needs the paper's
        protocols only when operations interleave *unseen*)."""
        server = CvsServer(order=4)
        alice = CvsClient(server, author="alice")
        alice.commit("f.txt", ["from alice"])
        bob = CvsClient(server, author="bob")  # joins at the current root
        assert bob.checkout("f.txt") == ["from alice"]
        bob.commit("f.txt", ["from bob"])
        assert bob.checkout("f.txt") == ["from bob"]
        # alice's tracked root is now stale: her next operation flags it
        with pytest.raises(ProofError):
            alice.checkout("f.txt")


class TestUpdateMerge:
    """``cvs update`` semantics: the working copy is based on an older
    revision, the repository head has moved on (committed through the
    same verified session -- concurrent *unseen* writers are exactly
    what the multi-user protocols exist for)."""

    def test_clean_update_combines_edits(self):
        server = CvsServer(order=4)
        dev = CvsClient(server, author="dev")
        dev.commit("f.c", ["one", "two", "three", "four"], "base")        # 1.1
        dev.commit("f.c", ["one", "two", "three", "FOUR"], "tail edit")   # 1.2

        # the working copy edited the head line, starting from 1.1
        working = ["ONE", "two", "three", "four"]
        result = dev.update("f.c", working, base_revision="1.1")
        assert not result.has_conflicts
        assert result.lines() == ["ONE", "two", "three", "FOUR"]

    def test_conflicting_update_reports_conflict(self):
        server = CvsServer(order=4)
        dev = CvsClient(server, author="dev")
        dev.commit("f.c", ["shared"], "base")            # 1.1
        dev.commit("f.c", ["committed version"], "edit")  # 1.2
        result = dev.update("f.c", ["working version"], base_revision="1.1")
        assert result.has_conflicts
        conflict = result.conflicts()[0]
        assert conflict.ours == ("working version",)
        assert conflict.theirs == ("committed version",)

    def test_update_unknown_file(self):
        server = CvsServer(order=4)
        dev = CvsClient(server, author="dev")
        with pytest.raises(FileNotFoundError):
            dev.update("ghost.c", ["x"], "1.1")


class LyingServer(CvsServer):
    """Returns a stale snapshot for every read after `freeze`."""

    def __init__(self) -> None:
        super().__init__(order=4)
        self._frozen_results: dict[bytes, QueryResult] = {}
        self.freeze = False

    def execute(self, query: Query) -> QueryResult:
        if isinstance(query, ReadQuery) and self.freeze and query.key in self._frozen_results:
            return self._frozen_results[query.key]
        result = super().execute(query)
        if isinstance(query, ReadQuery):
            self._frozen_results[query.key] = result
        return result


class TestMaliciousServer:
    def test_stale_answer_detected(self):
        server = LyingServer()
        alice = CvsClient(server, author="alice")
        alice.commit("f.txt", ["v1"])
        alice.checkout("f.txt")  # cached by the lying server
        alice.commit("f.txt", ["v2"])
        server.freeze = True
        with pytest.raises(ProofError):
            alice.checkout("f.txt")

    def test_root_digest_is_the_only_client_state(self):
        server = CvsServer(order=4)
        alice = CvsClient(server, author="alice")
        for index in range(20):
            alice.commit(f"file{index}.txt", [f"content {index}"])
        # the trust state is one digest regardless of history size
        assert len(alice.root_digest.value) == 32
