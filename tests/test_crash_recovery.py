"""Crash safety: WAL + snapshot recovery, request-ID dedup, and the
kill-and-restart end-to-end guarantee.

The trust anchor (root digest, counters, registers) must survive
crashes bit-for-bit -- otherwise recovery itself becomes a forking
opportunity.  These tests drive the durable server through crash-stop
(connections severed, nothing flushed beyond the WAL) and assert the
restarted deployment is indistinguishable from an uninterrupted one.
"""

import os
import socket
import struct

import pytest

from repro.mtree.database import VerifiedDatabase, WriteQuery
from repro.net import (
    PipelinedRemoteClient,
    RemoteClient,
    RetryPolicy,
    TransientNetworkError,
    WalError,
    serve_async_in_thread,
    serve_in_thread,
    sync_check,
)
from repro.net.server import TrustedCvsTcpServer
from repro.net.wal import ServerStore, chain_genesis
from repro.protocols.base import Request, ServerState
from repro.protocols.protocol2 import Protocol2Server


def _request(user, key, value, seq):
    return Request(query=WriteQuery(key, value),
                   extras={"user": user, "rid": f"{user}:{seq}"})


def _fast_retry(seed=0):
    return RetryPolicy(attempts=20, base=0.01, cap=0.1, seed=seed)


class TestServerStore:
    def test_snapshot_roundtrip(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        Protocol2Server().initialize(state)
        for i in range(30):
            state.database.execute(WriteQuery(f"k{i}".encode(), b"v"))
            state.ctr += 1
        store.write_snapshot(state, {"alice": [("alice:2", None), ("alice:3", None)]})
        loaded = store.load_snapshot()
        assert loaded is not None
        database, ctr, meta, dedup, chain = loaded
        assert database.root_digest() == state.database.root_digest()
        assert ctr == 30
        assert meta == state.meta
        assert dedup == {"alice": [("alice:2", None), ("alice:3", None)]}
        assert chain == chain_genesis(state.database.root_digest())

    def test_wal_append_and_replay(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        requests = [_request("alice", f"k{i}".encode(), b"v", i) for i in range(5)]
        for request in requests:
            store.wal_append(request)
        store.close()

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        assert fresh.wal_records(chain) == requests

    def test_torn_tail_is_trimmed_not_fatal(self, tmp_path):
        """A crash mid-append leaves a partial record; recovery drops it
        (the request was never acknowledged) and trims the file."""
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        store.wal_append(_request("alice", b"a", b"1", 0))
        store.wal_append(_request("alice", b"b", b"2", 1))
        store.close()

        wal = os.path.join(str(tmp_path), "wal.log")
        intact = os.path.getsize(wal)
        with open(wal, "r+b") as handle:
            handle.truncate(intact - 7)

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        records = fresh.wal_records(chain)
        assert len(records) == 1  # the torn second record is gone
        assert os.path.getsize(wal) < intact - 7  # trimmed to a boundary

    def test_tampered_record_raises(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        store.wal_append(_request("alice", b"a", b"payload", 0))
        store.wal_append(_request("alice", b"b", b"payload", 1))
        store.close()

        wal = os.path.join(str(tmp_path), "wal.log")
        with open(wal, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[10] ^= 0x01  # flip one bit inside the first payload
            handle.seek(0)
            handle.write(blob)

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        with pytest.raises(WalError, match="chain"):
            fresh.wal_records(chain)

    def test_spliced_record_raises(self, tmp_path):
        """Reordering two intact records breaks the chain: a tamperer
        cannot rewrite history by shuffling the log."""
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        store.wal_append(_request("alice", b"a", b"1", 0))
        boundary = os.path.getsize(os.path.join(str(tmp_path), "wal.log"))
        store.wal_append(_request("alice", b"b", b"2", 1))
        store.close()

        wal = os.path.join(str(tmp_path), "wal.log")
        with open(wal, "rb") as handle:
            blob = handle.read()
        with open(wal, "wb") as handle:
            handle.write(blob[boundary:] + blob[:boundary])

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        with pytest.raises(WalError, match="chain"):
            fresh.wal_records(chain)

    def test_corrupt_snapshot_raises(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        state.database.execute(WriteQuery(b"k", b"v"))
        store.write_snapshot(state, {})
        snapshot = os.path.join(str(tmp_path), "state.snapshot")
        with open(snapshot, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[30] ^= 0xFF
            handle.seek(0)
            handle.write(blob)
        with pytest.raises(WalError):
            ServerStore(str(tmp_path)).load_snapshot()


class TestDurableServer:
    def test_restart_replays_to_identical_root(self, tmp_path):
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=8)
        host, port = server.address
        genesis = server.initial_root_digest()
        with RemoteClient(host, port, "alice", genesis, order=4,
                          retry=_fast_retry()) as alice:
            for i in range(21):
                alice.put(f"k{i % 5}".encode(), f"v{i}".encode())
        with server.state_lock:
            root_before = server.state.database.root_digest()
            ctr_before = server.state.ctr
        server.stop(snapshot=False)  # crash

        restarted = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=8)
        with restarted.state_lock:
            assert restarted.state.database.root_digest() == root_before
            assert restarted.state.ctr == ctr_before
        assert restarted.replayed_records > 0
        restarted.stop()

    def test_duplicate_rid_not_double_applied(self, tmp_path):
        server = serve_in_thread(order=4, data_dir=str(tmp_path / "s"))
        host, port = server.address
        from repro.net.framing import recv_message, send_message

        request = _request("alice", b"k", b"v", 0)
        with socket.create_connection((host, port)) as sock:
            send_message(sock, request)
            first = recv_message(sock)
            send_message(sock, request)  # verbatim retry
            second = recv_message(sock)
        assert first == second  # bit-identical replayed response
        with server.state_lock:
            assert server.state.ctr == 1  # applied exactly once
        server.stop()

    def test_dedup_table_survives_restart(self, tmp_path):
        """Crash after apply but before the client saw the ack: the
        retry against the restarted server must hit the rebuilt dedup
        table, not re-execute."""
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir)
        host, port = server.address
        from repro.net.framing import recv_message, send_message

        request = _request("alice", b"k", b"v", 0)
        with socket.create_connection((host, port)) as sock:
            send_message(sock, request)
            first = recv_message(sock)
        server.stop(snapshot=False)  # crash: the ack may never have left

        restarted = serve_in_thread(order=4, data_dir=data_dir,
                                    port=port)
        with socket.create_connection((host, port)) as sock:
            send_message(sock, request)
            replayed = recv_message(sock)
        assert replayed == first
        with restarted.state_lock:
            assert restarted.state.ctr == 1
        restarted.stop()

    def test_in_memory_server_unchanged(self):
        """No data_dir -> no WAL, no snapshots, no dedup persistence --
        the PR 1/2 behaviour, bit for bit."""
        server = serve_in_thread(order=4)
        host, port = server.address
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4) as alice:
            alice.put(b"k", b"v")
            assert alice.get(b"k") == b"v"
        assert server._store is None
        server.stop()


class TestKillAndRestart:
    def test_mid_workload_crash_transparent_to_clients(self, tmp_path):
        """The acceptance scenario: SIGKILL-equivalent drop mid-workload,
        restart from WAL+snapshot, clients reconnect and finish; final
        root equals an uninterrupted run's and sync_check passes."""
        ops = [(f"u{i % 2}", f"k{i % 6}".encode(), f"v{i}".encode())
               for i in range(40)]
        reference = VerifiedDatabase(order=4)
        for _, key, value in ops:
            reference.execute(WriteQuery(key, value))

        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=12)
        host, port = server.address
        genesis = server.initial_root_digest()
        clients = {
            user: RemoteClient(host, port, user, genesis, order=4,
                               retry=_fast_retry(seed=index))
            for index, user in enumerate(["u0", "u1"])
        }
        try:
            for step, (user, key, value) in enumerate(ops):
                if step in (13, 27):  # two crashes mid-workload
                    server.stop(snapshot=False)
                    server = serve_in_thread(order=4, data_dir=data_dir,
                                             port=port, snapshot_every=12)
                clients[user].put(key, value)
            registers = {user: client.registers()
                         for user, client in clients.items()}
            assert sync_check(genesis, registers)
            with server.state_lock:
                assert server.state.database.root_digest() == reference.root_digest()
                assert server.state.ctr == len(ops)  # no loss, no duplication
        finally:
            for client in clients.values():
                client.close()
            server.stop()

    def test_client_anchor_resume(self, tmp_path):
        """A restarted *client* process resumes its verified session
        from the persisted trust anchor."""
        server = serve_in_thread(order=4, data_dir=str(tmp_path / "s"))
        host, port = server.address
        genesis = server.initial_root_digest()
        anchor = str(tmp_path / "alice.anchor")
        with RemoteClient(host, port, "alice", genesis, order=4,
                          anchor_path=anchor) as alice:
            for i in range(7):
                alice.put(f"k{i}".encode(), f"v{i}".encode())
            gctr = alice.gctr

        # new process: no initial_root needed, picks up where it left off
        with RemoteClient(host, port, "alice", order=4,
                          anchor_path=anchor) as resumed:
            assert resumed.gctr == gctr
            assert resumed.get(b"k3") == b"v3"
            assert sync_check(genesis, {"alice": resumed.registers()})
        server.stop()

    def test_anchor_for_wrong_user_rejected(self, tmp_path):
        server = serve_in_thread(order=4)
        host, port = server.address
        anchor = str(tmp_path / "a.anchor")
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4, anchor_path=anchor) as alice:
            alice.put(b"k", b"v")
        with pytest.raises(ValueError, match="belongs to"):
            RemoteClient(host, port, "bob", order=4, anchor_path=anchor)
        server.stop()

    def test_corrupted_anchor_rejected_with_integrity_error(self, tmp_path):
        """A tampered anchor file must be refused explicitly -- an
        IntegrityError naming the file -- never a raw parse crash and
        never a silent session built on half-read registers."""
        from repro.net import IntegrityError

        server = serve_in_thread(order=4)
        host, port = server.address
        anchor = str(tmp_path / "alice.anchor")
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4, anchor_path=anchor) as alice:
            alice.put(b"k", b"v")
        with open(anchor, "r", encoding="ascii") as handle:
            original = handle.read()

        def rejected(contents, mode="w"):
            with open(anchor, mode if isinstance(contents, str) else "wb") as h:
                h.write(contents)
            with pytest.raises(IntegrityError, match="corrupted or truncated"):
                RemoteClient(host, port, "alice", order=4, anchor_path=anchor)

        # tampered: a register line replaced with non-hex garbage
        rejected(original.replace(
            original.splitlines()[3].split(" ", 1)[1], "zz-not-hex"))
        # empty file
        rejected("")
        # partial: truncated mid-way (magic intact, fields missing)
        rejected(original[: len(original) // 3])
        # binary garbage (not even ASCII)
        rejected(b"\xff\xfe\x00\x01garbage\x80")
        # wrong magic line
        rejected("some-other-format 9\n" + original)
        # restore: an intact anchor still works after all that
        with open(anchor, "w", encoding="ascii") as handle:
            handle.write(original)
        with RemoteClient(host, port, "alice", order=4,
                          anchor_path=anchor) as resumed:
            assert resumed.get(b"k") == b"v"
        server.stop()

    def test_pipelined_window_survives_crash_exactly_once(self, tmp_path):
        """A pipelined client with a full window in flight loses the
        server mid-batch.  On reconnect it resends the whole window
        verbatim (identical rids); the restarted server's replayed
        dedup table re-answers the already-executed ops from memory, so
        every operation lands exactly once -- server ctr equals the
        number of distinct operations, never the number of sends."""
        window = 8
        data_dir = str(tmp_path / "server")
        server = serve_async_in_thread(order=4, data_dir=data_dir,
                                       snapshot_every=1000)
        host, port = server.address
        genesis = server.initial_root_digest()
        client = PipelinedRemoteClient(host, port, "alice", genesis,
                                       order=4, window=window,
                                       retry=_fast_retry(seed=3))
        try:
            # Fill the window, let the server execute it all (quiesce),
            # then crash *before the client has read a single reply*.
            for i in range(window):
                client.submit(WriteQuery(f"k{i}".encode(), f"v{i}".encode()))
            assert client.inflight == window
            assert server.quiesce(timeout=10.0)
            server.stop(snapshot=False)  # crash: WAL only
            server = serve_async_in_thread(order=4, data_dir=data_dir,
                                           port=port, snapshot_every=1000)
            assert server.replayed_records == window

            # drain() hits the dead socket, reconnects, resends all W
            # verbatim; replies must verify exactly as if nothing died.
            client.drain()
            assert client.inflight == 0

            # Exactly-once: one execution per distinct op despite every
            # op having been sent twice.
            assert server.read_state(lambda s: s.ctr) == window
            for i in range(window):
                assert client.get(f"k{i}".encode()) == f"v{i}".encode()
            assert sync_check(genesis, {"alice": client.registers()})
        finally:
            client.close()
            server.stop()

    def test_pipelined_partial_batch_crash_exactly_once(self, tmp_path):
        """Crash while only part of the window has executed: resent
        rids split between dedup hits (already in the WAL) and fresh
        executions.  Both paths must converge on one application each."""
        window = 6
        data_dir = str(tmp_path / "server")
        server = serve_async_in_thread(order=4, data_dir=data_dir,
                                       snapshot_every=1000)
        host, port = server.address
        genesis = server.initial_root_digest()
        client = PipelinedRemoteClient(host, port, "alice", genesis,
                                       order=4, window=window,
                                       retry=_fast_retry(seed=4))
        try:
            # Execute (and read) two ops so they are surely in the WAL,
            # then queue a window the server may or may not get to.
            client.put(b"warm0", b"w")
            client.put(b"warm1", b"w")
            for i in range(window):
                client.submit(WriteQuery(f"k{i}".encode(), f"v{i}".encode()))
            server.stop(snapshot=False)
            server = serve_async_in_thread(order=4, data_dir=data_dir,
                                           port=port, snapshot_every=1000)
            client.drain()
            assert server.read_state(lambda s: s.ctr) == 2 + window
            for i in range(window):
                assert client.get(f"k{i}".encode()) == f"v{i}".encode()
            assert sync_check(genesis, {"alice": client.registers()})
        finally:
            client.close()
            server.stop()

    def test_tampered_wal_blocks_recovery(self, tmp_path):
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=100)
        host, port = server.address
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4) as alice:
            for i in range(5):
                alice.put(f"k{i}".encode(), b"v")
        server.stop(snapshot=False)

        wal = os.path.join(data_dir, "wal.log")
        with open(wal, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[12] ^= 0xFF
            handle.seek(0)
            handle.write(blob)
        with pytest.raises(WalError):
            TrustedCvsTcpServer(order=4, data_dir=data_dir)


# ---------------------------------------------------------------------------
# Disk-backed page store (--backend sqlite) + fault injection
# ---------------------------------------------------------------------------

from repro.mtree.forest import StoreSpec  # noqa: E402
from repro.net.core import ServerCore  # noqa: E402
from repro.net.wal import PagedServerStore, open_server_store  # noqa: E402
from repro.storage.faults import ALWAYS, FaultyIO, SimulatedCrash  # noqa: E402


def _run_ops(core, ops, start=0):
    """Apply writes until done or crash; returns the acked (key, value)s."""
    acked = []
    try:
        for seq, (key, value) in enumerate(ops, start=start):
            core.apply_request("u", _request("u", key, value, seq))
            acked.append((key, value))
    except SimulatedCrash:
        pass
    return acked


def _reference_root(n_ops, ops, order=4, shards=1):
    """Root of an uninterrupted run of the first ``n_ops`` operations."""
    reference = VerifiedDatabase(order=order, shards=shards)
    for key, value in ops[:n_ops]:
        reference.execute(WriteQuery(key, value))
    return reference.root_digest()


_OPS = [(b"key%04d" % i, b"val%d" % i) for i in range(35)]


class TestStaleWalRecovery:
    """The pre-existing crash hole: dying between the snapshot rename
    and the WAL reset used to leave an old-genesis log that recovery
    mistook for tamper.  The snapshot's recorded ``prev_chain`` now
    proves such a log stale -- and *only* such a log."""

    def _crashed_store(self, tmp_path, mutate_wal=None):
        io = FaultyIO(seed=9, crash_at={"snapshot:before-wal-reset": 2})
        store = ServerStore(str(tmp_path), io=io)
        state = ServerState(database=VerifiedDatabase(order=4))
        Protocol2Server().initialize(state)
        store.write_snapshot(state, {})  # bootstrap (occurrence 1)
        for i in range(4):
            store.wal_append(_request("u", b"k%d" % i, b"v", i))
            state.database.execute(WriteQuery(b"k%d" % i, b"v"))
            state.ctr += 1
        with pytest.raises(SimulatedCrash):
            store.write_snapshot(state, {})
        store.close()
        io.simulate_crash()
        if mutate_wal is not None:
            mutate_wal(os.path.join(str(tmp_path), "wal.log"))
        return state

    def test_stale_wal_discarded_not_fatal(self, tmp_path):
        state = self._crashed_store(tmp_path)
        fresh = ServerStore(str(tmp_path))
        database, ctr, _meta, _dedup, chain = fresh.load_snapshot()
        assert database.root_digest() == state.database.root_digest()
        assert ctr == 4
        # the old-epoch log is proven stale and dropped, not replayed
        # (its every record is already inside the snapshot) and not
        # reported as tamper
        assert fresh.wal_records(chain) == []
        assert fresh.stale_wals_discarded == 1
        assert os.path.getsize(os.path.join(str(tmp_path), "wal.log")) == 0
        fresh.close()

    def test_tampered_stale_wal_still_fatal(self, tmp_path):
        """Staleness must be *proven*, not presumed: break the chain
        recurrence inside the leftover log and recovery refuses."""
        def flip(wal):
            from repro.net.wal import _parse_records

            with open(wal, "r+b") as handle:
                blob = bytearray(handle.read())
                records, _ = _parse_records(bytes(blob))
                # record 0's stored chain: every later record's proof
                # hangs off it
                offset = 4 + len(records[0][0])
                blob[offset] ^= 0x04
                handle.seek(0)
                handle.write(blob)

        self._crashed_store(tmp_path, mutate_wal=flip)
        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        with pytest.raises(WalError, match="chain"):
            fresh.wal_records(chain)
        assert fresh.stale_wals_discarded == 0
        fresh.close()

    def test_truncated_stale_wal_still_fatal(self, tmp_path):
        """A stale log missing its tail cannot prove it reaches the
        snapshot's recorded head -- refused, because discarding it
        would mask whatever removed the records."""
        def chop(wal):
            size = os.path.getsize(wal)
            with open(wal, "r+b") as handle:
                handle.truncate(size - 40)

        self._crashed_store(tmp_path, mutate_wal=chop)
        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        with pytest.raises(WalError):
            fresh.wal_records(chain)
        fresh.close()


class TestWalFaults:
    def _store_with_io(self, tmp_path, io):
        store = ServerStore(str(tmp_path), io=io)
        state = ServerState(database=VerifiedDatabase(order=4))
        Protocol2Server().initialize(state)
        store.write_snapshot(state, {})
        return store

    def test_enospc_append_rolls_back_chain(self, tmp_path):
        """A failed append must leave the log and the in-memory chain
        exactly where they were -- later appends (after space is freed)
        must still verify."""
        io = FaultyIO(seed=1, enospc_after_bytes=None)
        store = self._store_with_io(tmp_path, io)
        store.wal_append(_request("u", b"a", b"1", 0))
        io._enospc_budget = 10  # space for part of one record
        with pytest.raises(OSError):
            store.wal_append(_request("u", b"b", b"2", 1))
        io._enospc_budget = None  # space freed
        store.wal_append(_request("u", b"c", b"3", 2))
        store.close()

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        records = fresh.wal_records(chain)
        assert [r.query.key for r in records] == [b"a", b"c"]
        fresh.close()

    def test_torn_unsynced_tail_recovers_prefix(self, tmp_path):
        """Crash with an un-fsynced group-commit tail: any persisted
        prefix of it must recover cleanly (none of it was acked)."""
        io = FaultyIO(seed=13, torn_tail=True)
        store = self._store_with_io(tmp_path, io)
        for i in range(2):
            store.wal_append(_request("u", b"sync%d" % i, b"v", i))
        for i in range(3):  # buffered, never synced
            store.wal_append(_request("u", b"buf%d" % i, b"v", 10 + i),
                             sync=False)
        store._wal_handle.flush()  # reaches the "page cache", not disk
        io.simulate_crash()

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        records = fresh.wal_records(chain)
        keys = [r.query.key for r in records]
        assert keys[:2] == [b"sync0", b"sync1"]  # synced records survive
        # whatever survived of the tail is a *prefix*, chain-verified
        assert keys[2:] == [b"buf0", b"buf1", b"buf2"][:len(keys) - 2]
        store.close()
        fresh.close()

    def test_lying_fsync_loses_only_tail_never_consistency(self, tmp_path):
        """With a lying disk, acked-durability is unenforceable -- but
        recovery must still land on a consistent chain-verified prefix,
        never an error and never a mixed state."""
        io = FaultyIO(seed=7)
        store = self._store_with_io(tmp_path, io)  # honest bootstrap
        io._plan["lying_fsync"] = ALWAYS  # ...then the disk starts lying
        for i in range(5):
            store.wal_append(_request("u", b"w%d" % i, b"v", i))
        io.simulate_crash()

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        records = fresh.wal_records(chain)
        expected = [b"w0", b"w1", b"w2", b"w3", b"w4"]
        assert [r.query.key for r in records] == expected[:len(records)]
        store.close()
        fresh.close()


class TestPagedStoreRoundtrip:
    @pytest.mark.parametrize("shards", [1, 8])
    def test_checkpoint_restart_identical_root(self, tmp_path, shards):
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=shards, snapshot_every=10)
        _run_ops(core, _OPS)
        root = core.state.database.root_digest()
        ctr = core.state.ctr
        core.snapshot()
        core.close_store()

        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=False, shards=shards)
        assert fresh.state.database.root_digest() == root
        assert fresh.state.ctr == ctr
        assert fresh.replayed_records == 0  # all state inside the checkpoint
        for key, value in _OPS:
            assert fresh.state.database.get(key) == value
        assert fresh.state.database.root_digest() == \
            _reference_root(len(_OPS), _OPS, shards=shards)
        fresh.close_store()

    @pytest.mark.parametrize("shards", [1, 8])
    def test_wal_tail_replays_on_top_of_checkpoint(self, tmp_path, shards):
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=shards, snapshot_every=10)
        _run_ops(core, _OPS)  # 35 ops: checkpoints at 10/20/30, tail of 5
        root = core.state.database.root_digest()
        core.close_store()  # crash-stop: no final snapshot

        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=False, shards=shards)
        assert fresh.replayed_records == 5
        assert fresh.state.database.root_digest() == root
        fresh.close_store()

    def test_dedup_table_inside_manifest(self, tmp_path):
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, snapshot_every=1000)
        request = _request("u", b"k", b"v", 0)
        first = core.apply_request("u", request)
        core.snapshot()
        core.close_store()
        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=False)
        assert fresh.apply_request("u", request) == first  # dedup hit
        assert fresh.state.ctr == 1
        fresh.close_store()

    def test_incremental_checkpoint_rewrites_only_dirty_shards(self, tmp_path):
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=8, snapshot_every=10_000)
        _run_ops(core, _OPS)
        core.snapshot()
        manifest_before = dict(core.store._manifest)
        # one more write dirties exactly one shard
        core.apply_request("u", _request("u", b"lonely", b"x", 99))
        core.snapshot()
        manifest_after = core.store._manifest
        new_gen = int(manifest_after["gen"])
        rewritten = [int(r["shard"]) for r in manifest_after["shards"]
                     if int(r["gen"]) == new_gen]
        assert len(rewritten) == 1  # only the dirtied shard moved
        untouched = [r for r in manifest_after["shards"]
                     if int(r["gen"]) != new_gen]
        before = {int(r["shard"]): r for r in manifest_before["shards"]}
        for record in untouched:
            assert record["root"] == before[int(record["shard"])]["root"]
        core.close_store()

    def test_segment_retention_is_bounded(self, tmp_path):
        """Old WAL segments are garbage-collected as soon as no shard's
        repair recipe references them: retention stays O(shards)."""
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=2, snapshot_every=5)
        ops = [(b"g%04d" % i, b"v") for i in range(200)]
        _run_ops(core, ops)
        core.close_store()
        segments = [n for n in os.listdir(data_dir)
                    if n.startswith("wal-seg.")]
        assert 0 < len(segments) <= 3  # <= shards + the freshest


class TestPagedStoreCrashMatrix:
    """Kill the server at every storage crash point; recovery must lose
    no acked write and land on the uninterrupted reference root."""

    POINTS = [
        ("wal:append", 17),
        ("file:mid-write", 17),
        ("pagestore:page-write", 4),
        ("pagestore:pre-commit", 2),
        ("pagestore:post-commit", 2),
        ("checkpoint:before-commit", 2),
        ("checkpoint:after-commit", 2),
        ("compaction:before-rotate", 1),
        ("compaction:between-rename-and-dirfsync", 1),
        ("compaction:mid-segment-gc", 1),
    ]

    @pytest.mark.parametrize("point,occurrence", POINTS,
                             ids=[p for p, _ in POINTS])
    def test_crash_point_recovers(self, tmp_path, point, occurrence):
        data_dir = str(tmp_path / "s")
        io = FaultyIO(seed=len(point) * 7 + occurrence,
                      crash_at={point: occurrence})
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=True, shards=2, snapshot_every=10, io=io)
        acked = _run_ops(core, _OPS)
        assert io.crashed is False and io.crash_count == 1, \
            f"crash point {point} never fired"
        core.store.close()
        io.simulate_crash()

        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=True, shards=2, io=io)
        for key, value in acked:
            assert fresh.state.database.get(key) == value, \
                f"acked write {key!r} lost after crash at {point}"
        executed = fresh.state.ctr
        assert executed >= len(acked)
        assert fresh.state.database.root_digest() == \
            _reference_root(executed, _OPS, shards=2)
        # and the store keeps working after recovery
        fresh.apply_request("u", _request("u", b"post", b"crash", 999))
        assert fresh.state.database.get(b"post") == b"crash"
        fresh.close_store()


class TestPagedStoreCorruption:
    def _populated(self, tmp_path, shards=4):
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=shards, snapshot_every=10)
        _run_ops(core, _OPS)
        root = core.state.database.root_digest()
        core.snapshot()
        core.close_store()
        return data_dir, root

    def test_rotted_page_quarantined_and_repaired(self, tmp_path):
        data_dir, root = self._populated(tmp_path)
        io = FaultyIO(seed=21, bitrot_page=("any", -1))
        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=False, shards=4, io=io)
        assert fresh.state.database.root_digest() == root
        assert len(fresh.store.repaired_shards) == 1
        fresh.close_store()
        # the repair rewrote verified pages: next restart is clean
        again = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=False, shards=4)
        assert again.state.database.root_digest() == root
        assert again.store.repaired_shards == []
        again.close_store()

    def test_tampered_segment_fails_repair_loudly(self, tmp_path):
        """Quarantine + a doctored replay segment: the repaired shard
        cannot reproduce the manifest root, and recovery refuses --
        tamper is reported, never masked by serving the wrong data."""
        data_dir, _root = self._populated(tmp_path)
        segments = sorted(n for n in os.listdir(data_dir)
                          if n.startswith("wal-seg."))
        assert segments
        path = os.path.join(data_dir, segments[-1])
        with open(path, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[9] ^= 0x20
            handle.seek(0)
            handle.write(blob)
        io = FaultyIO(seed=22, bitrot_page=("any", -1))
        with pytest.raises(WalError, match="segment|tamper"):
            ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                       fsync=False, shards=4, io=io)

    def test_lost_commit_detected_not_masked(self, tmp_path):
        """A page store that *lies* about commit durability loses the
        checkpoint on crash.  The retained segment it rotated afterwards
        outlives the manifest -- recovery notices the mismatch and
        refuses to silently serve the older root."""
        data_dir = str(tmp_path / "s")
        io = FaultyIO(seed=23, lose_commit=3)  # bootstrap=1, cp1=2, cp2=3
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=True, shards=2, snapshot_every=10, io=io)
        _run_ops(core, _OPS)
        core.store.close()
        io.simulate_crash()
        with pytest.raises(WalError, match="lost a checkpoint"):
            ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                       fsync=True, shards=2, io=io)

    def test_corrupt_manifest_refused(self, tmp_path):
        data_dir, _root = self._populated(tmp_path)
        import sqlite3 as _sqlite3
        conn = _sqlite3.connect(os.path.join(data_dir, "pages.db"))
        conn.execute("UPDATE meta SET value=? WHERE key='checkpoint'",
                     (b"garbage",))
        conn.commit()
        conn.close()
        with pytest.raises(WalError, match="manifest"):
            ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                       fsync=False, shards=4)


class TestCompactionRace:
    def test_checkpoints_race_concurrent_writes(self, tmp_path):
        """Writes keep flowing while checkpoint/rotation/GC cycles run
        between them; every acked write must survive a crash landing in
        the middle of the churn."""
        data_dir = str(tmp_path / "s")
        io = FaultyIO(seed=31, crash_at={"compaction:mid-segment-gc": 3})
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=True, shards=2, snapshot_every=5, io=io)
        ops = [(b"race%04d" % i, b"v%d" % i) for i in range(120)]
        acked = _run_ops(core, ops)
        assert io.crash_count == 1
        core.store.close()
        io.simulate_crash()

        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=True, shards=2, io=io)
        for key, value in acked:
            assert fresh.state.database.get(key) == value
        assert fresh.state.database.root_digest() == \
            _reference_root(fresh.state.ctr, ops, shards=2)
        fresh.close_store()

    def test_snapshot_failure_is_survivable(self, tmp_path):
        """ENOSPC during a periodic checkpoint must not kill the server:
        the WAL holds every acked write, the checkpoint retries later."""
        data_dir = str(tmp_path / "s")
        core = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                          fsync=False, shards=2, snapshot_every=10)
        io = core.store.io  # REAL_IO; swap in a failing gate
        _run_ops(core, _OPS[:5])
        failing = FaultyIO(seed=41, enospc_after_bytes=0)
        core.store.io = failing
        core.store.pages.io = failing
        acked = _run_ops(core, _OPS[5:15], start=5)  # crosses a checkpoint
        assert len(acked) == 10  # the failed checkpoint lost no ack
        core.store.io = io
        core.store.pages.io = io
        _run_ops(core, _OPS[15:], start=15)
        root = core.state.database.root_digest()
        core.close_store()

        fresh = ServerCore(order=4, data_dir=data_dir, backend="sqlite",
                           fsync=False, shards=2)
        assert fresh.state.database.root_digest() == root
        fresh.close_store()


class TestPagedServerEndToEnd:
    def test_sqlite_backend_serves_verifying_clients(self, tmp_path):
        """Full stack: TCP server on the sqlite backend, crash-restart,
        pipelined client VOs verify across the boundary."""
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir,
                                 backend="sqlite", snapshot_every=8,
                                 shards=2)
        host, port = server.address
        genesis = server.initial_root_digest()
        spec = StoreSpec(order=4, shards=2)
        with RemoteClient(host, port, "alice", genesis, order=spec,
                          retry=_fast_retry()) as alice:
            for i in range(21):
                alice.put(f"e{i}".encode(), f"v{i}".encode())
        with server.state_lock:
            root = server.state.database.root_digest()
        server.stop(snapshot=False)  # crash

        restarted = serve_in_thread(order=4, data_dir=data_dir, port=port,
                                    backend="sqlite", snapshot_every=8,
                                    shards=2)
        with restarted.state_lock:
            assert restarted.state.database.root_digest() == root
        with RemoteClient(host, port, "bob", genesis, order=spec,
                          retry=_fast_retry(1)) as bob:
            assert bob.get(b"e7") == b"v7"  # VO verifies post-recovery
            bob.put(b"after", b"restart")
            assert bob.get(b"after") == b"restart"
        restarted.stop()

    def test_open_server_store_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown storage backend"):
            open_server_store(str(tmp_path), backend="postgres")

    def test_store_backends_report_names(self, tmp_path):
        file_store = open_server_store(str(tmp_path / "a"))
        paged = open_server_store(str(tmp_path / "b"), backend="sqlite")
        assert file_store.backend == "file"
        assert isinstance(paged, PagedServerStore)
        assert paged.backend == "sqlite"
        file_store.close()
        paged.close()
