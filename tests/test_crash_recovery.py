"""Crash safety: WAL + snapshot recovery, request-ID dedup, and the
kill-and-restart end-to-end guarantee.

The trust anchor (root digest, counters, registers) must survive
crashes bit-for-bit -- otherwise recovery itself becomes a forking
opportunity.  These tests drive the durable server through crash-stop
(connections severed, nothing flushed beyond the WAL) and assert the
restarted deployment is indistinguishable from an uninterrupted one.
"""

import os
import socket
import struct

import pytest

from repro.mtree.database import VerifiedDatabase, WriteQuery
from repro.net import (
    PipelinedRemoteClient,
    RemoteClient,
    RetryPolicy,
    TransientNetworkError,
    WalError,
    serve_async_in_thread,
    serve_in_thread,
    sync_check,
)
from repro.net.server import TrustedCvsTcpServer
from repro.net.wal import ServerStore, chain_genesis
from repro.protocols.base import Request, ServerState
from repro.protocols.protocol2 import Protocol2Server


def _request(user, key, value, seq):
    return Request(query=WriteQuery(key, value),
                   extras={"user": user, "rid": f"{user}:{seq}"})


def _fast_retry(seed=0):
    return RetryPolicy(attempts=20, base=0.01, cap=0.1, seed=seed)


class TestServerStore:
    def test_snapshot_roundtrip(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        Protocol2Server().initialize(state)
        for i in range(30):
            state.database.execute(WriteQuery(f"k{i}".encode(), b"v"))
            state.ctr += 1
        store.write_snapshot(state, {"alice": [("alice:2", None), ("alice:3", None)]})
        loaded = store.load_snapshot()
        assert loaded is not None
        database, ctr, meta, dedup, chain = loaded
        assert database.root_digest() == state.database.root_digest()
        assert ctr == 30
        assert meta == state.meta
        assert dedup == {"alice": [("alice:2", None), ("alice:3", None)]}
        assert chain == chain_genesis(state.database.root_digest())

    def test_wal_append_and_replay(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        requests = [_request("alice", f"k{i}".encode(), b"v", i) for i in range(5)]
        for request in requests:
            store.wal_append(request)
        store.close()

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        assert fresh.wal_records(chain) == requests

    def test_torn_tail_is_trimmed_not_fatal(self, tmp_path):
        """A crash mid-append leaves a partial record; recovery drops it
        (the request was never acknowledged) and trims the file."""
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        store.wal_append(_request("alice", b"a", b"1", 0))
        store.wal_append(_request("alice", b"b", b"2", 1))
        store.close()

        wal = os.path.join(str(tmp_path), "wal.log")
        intact = os.path.getsize(wal)
        with open(wal, "r+b") as handle:
            handle.truncate(intact - 7)

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        records = fresh.wal_records(chain)
        assert len(records) == 1  # the torn second record is gone
        assert os.path.getsize(wal) < intact - 7  # trimmed to a boundary

    def test_tampered_record_raises(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        store.wal_append(_request("alice", b"a", b"payload", 0))
        store.wal_append(_request("alice", b"b", b"payload", 1))
        store.close()

        wal = os.path.join(str(tmp_path), "wal.log")
        with open(wal, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[10] ^= 0x01  # flip one bit inside the first payload
            handle.seek(0)
            handle.write(blob)

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        with pytest.raises(WalError, match="chain"):
            fresh.wal_records(chain)

    def test_spliced_record_raises(self, tmp_path):
        """Reordering two intact records breaks the chain: a tamperer
        cannot rewrite history by shuffling the log."""
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        store.write_snapshot(state, {})
        store.wal_append(_request("alice", b"a", b"1", 0))
        boundary = os.path.getsize(os.path.join(str(tmp_path), "wal.log"))
        store.wal_append(_request("alice", b"b", b"2", 1))
        store.close()

        wal = os.path.join(str(tmp_path), "wal.log")
        with open(wal, "rb") as handle:
            blob = handle.read()
        with open(wal, "wb") as handle:
            handle.write(blob[boundary:] + blob[:boundary])

        fresh = ServerStore(str(tmp_path))
        _, _, _, _, chain = fresh.load_snapshot()
        with pytest.raises(WalError, match="chain"):
            fresh.wal_records(chain)

    def test_corrupt_snapshot_raises(self, tmp_path):
        store = ServerStore(str(tmp_path))
        state = ServerState(database=VerifiedDatabase(order=4))
        state.database.execute(WriteQuery(b"k", b"v"))
        store.write_snapshot(state, {})
        snapshot = os.path.join(str(tmp_path), "state.snapshot")
        with open(snapshot, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[30] ^= 0xFF
            handle.seek(0)
            handle.write(blob)
        with pytest.raises(WalError):
            ServerStore(str(tmp_path)).load_snapshot()


class TestDurableServer:
    def test_restart_replays_to_identical_root(self, tmp_path):
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=8)
        host, port = server.address
        genesis = server.initial_root_digest()
        with RemoteClient(host, port, "alice", genesis, order=4,
                          retry=_fast_retry()) as alice:
            for i in range(21):
                alice.put(f"k{i % 5}".encode(), f"v{i}".encode())
        with server.state_lock:
            root_before = server.state.database.root_digest()
            ctr_before = server.state.ctr
        server.stop(snapshot=False)  # crash

        restarted = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=8)
        with restarted.state_lock:
            assert restarted.state.database.root_digest() == root_before
            assert restarted.state.ctr == ctr_before
        assert restarted.replayed_records > 0
        restarted.stop()

    def test_duplicate_rid_not_double_applied(self, tmp_path):
        server = serve_in_thread(order=4, data_dir=str(tmp_path / "s"))
        host, port = server.address
        from repro.net.framing import recv_message, send_message

        request = _request("alice", b"k", b"v", 0)
        with socket.create_connection((host, port)) as sock:
            send_message(sock, request)
            first = recv_message(sock)
            send_message(sock, request)  # verbatim retry
            second = recv_message(sock)
        assert first == second  # bit-identical replayed response
        with server.state_lock:
            assert server.state.ctr == 1  # applied exactly once
        server.stop()

    def test_dedup_table_survives_restart(self, tmp_path):
        """Crash after apply but before the client saw the ack: the
        retry against the restarted server must hit the rebuilt dedup
        table, not re-execute."""
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir)
        host, port = server.address
        from repro.net.framing import recv_message, send_message

        request = _request("alice", b"k", b"v", 0)
        with socket.create_connection((host, port)) as sock:
            send_message(sock, request)
            first = recv_message(sock)
        server.stop(snapshot=False)  # crash: the ack may never have left

        restarted = serve_in_thread(order=4, data_dir=data_dir,
                                    port=port)
        with socket.create_connection((host, port)) as sock:
            send_message(sock, request)
            replayed = recv_message(sock)
        assert replayed == first
        with restarted.state_lock:
            assert restarted.state.ctr == 1
        restarted.stop()

    def test_in_memory_server_unchanged(self):
        """No data_dir -> no WAL, no snapshots, no dedup persistence --
        the PR 1/2 behaviour, bit for bit."""
        server = serve_in_thread(order=4)
        host, port = server.address
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4) as alice:
            alice.put(b"k", b"v")
            assert alice.get(b"k") == b"v"
        assert server._store is None
        server.stop()


class TestKillAndRestart:
    def test_mid_workload_crash_transparent_to_clients(self, tmp_path):
        """The acceptance scenario: SIGKILL-equivalent drop mid-workload,
        restart from WAL+snapshot, clients reconnect and finish; final
        root equals an uninterrupted run's and sync_check passes."""
        ops = [(f"u{i % 2}", f"k{i % 6}".encode(), f"v{i}".encode())
               for i in range(40)]
        reference = VerifiedDatabase(order=4)
        for _, key, value in ops:
            reference.execute(WriteQuery(key, value))

        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=12)
        host, port = server.address
        genesis = server.initial_root_digest()
        clients = {
            user: RemoteClient(host, port, user, genesis, order=4,
                               retry=_fast_retry(seed=index))
            for index, user in enumerate(["u0", "u1"])
        }
        try:
            for step, (user, key, value) in enumerate(ops):
                if step in (13, 27):  # two crashes mid-workload
                    server.stop(snapshot=False)
                    server = serve_in_thread(order=4, data_dir=data_dir,
                                             port=port, snapshot_every=12)
                clients[user].put(key, value)
            registers = {user: client.registers()
                         for user, client in clients.items()}
            assert sync_check(genesis, registers)
            with server.state_lock:
                assert server.state.database.root_digest() == reference.root_digest()
                assert server.state.ctr == len(ops)  # no loss, no duplication
        finally:
            for client in clients.values():
                client.close()
            server.stop()

    def test_client_anchor_resume(self, tmp_path):
        """A restarted *client* process resumes its verified session
        from the persisted trust anchor."""
        server = serve_in_thread(order=4, data_dir=str(tmp_path / "s"))
        host, port = server.address
        genesis = server.initial_root_digest()
        anchor = str(tmp_path / "alice.anchor")
        with RemoteClient(host, port, "alice", genesis, order=4,
                          anchor_path=anchor) as alice:
            for i in range(7):
                alice.put(f"k{i}".encode(), f"v{i}".encode())
            gctr = alice.gctr

        # new process: no initial_root needed, picks up where it left off
        with RemoteClient(host, port, "alice", order=4,
                          anchor_path=anchor) as resumed:
            assert resumed.gctr == gctr
            assert resumed.get(b"k3") == b"v3"
            assert sync_check(genesis, {"alice": resumed.registers()})
        server.stop()

    def test_anchor_for_wrong_user_rejected(self, tmp_path):
        server = serve_in_thread(order=4)
        host, port = server.address
        anchor = str(tmp_path / "a.anchor")
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4, anchor_path=anchor) as alice:
            alice.put(b"k", b"v")
        with pytest.raises(ValueError, match="belongs to"):
            RemoteClient(host, port, "bob", order=4, anchor_path=anchor)
        server.stop()

    def test_corrupted_anchor_rejected_with_integrity_error(self, tmp_path):
        """A tampered anchor file must be refused explicitly -- an
        IntegrityError naming the file -- never a raw parse crash and
        never a silent session built on half-read registers."""
        from repro.net import IntegrityError

        server = serve_in_thread(order=4)
        host, port = server.address
        anchor = str(tmp_path / "alice.anchor")
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4, anchor_path=anchor) as alice:
            alice.put(b"k", b"v")
        with open(anchor, "r", encoding="ascii") as handle:
            original = handle.read()

        def rejected(contents, mode="w"):
            with open(anchor, mode if isinstance(contents, str) else "wb") as h:
                h.write(contents)
            with pytest.raises(IntegrityError, match="corrupted or truncated"):
                RemoteClient(host, port, "alice", order=4, anchor_path=anchor)

        # tampered: a register line replaced with non-hex garbage
        rejected(original.replace(
            original.splitlines()[3].split(" ", 1)[1], "zz-not-hex"))
        # empty file
        rejected("")
        # partial: truncated mid-way (magic intact, fields missing)
        rejected(original[: len(original) // 3])
        # binary garbage (not even ASCII)
        rejected(b"\xff\xfe\x00\x01garbage\x80")
        # wrong magic line
        rejected("some-other-format 9\n" + original)
        # restore: an intact anchor still works after all that
        with open(anchor, "w", encoding="ascii") as handle:
            handle.write(original)
        with RemoteClient(host, port, "alice", order=4,
                          anchor_path=anchor) as resumed:
            assert resumed.get(b"k") == b"v"
        server.stop()

    def test_pipelined_window_survives_crash_exactly_once(self, tmp_path):
        """A pipelined client with a full window in flight loses the
        server mid-batch.  On reconnect it resends the whole window
        verbatim (identical rids); the restarted server's replayed
        dedup table re-answers the already-executed ops from memory, so
        every operation lands exactly once -- server ctr equals the
        number of distinct operations, never the number of sends."""
        window = 8
        data_dir = str(tmp_path / "server")
        server = serve_async_in_thread(order=4, data_dir=data_dir,
                                       snapshot_every=1000)
        host, port = server.address
        genesis = server.initial_root_digest()
        client = PipelinedRemoteClient(host, port, "alice", genesis,
                                       order=4, window=window,
                                       retry=_fast_retry(seed=3))
        try:
            # Fill the window, let the server execute it all (quiesce),
            # then crash *before the client has read a single reply*.
            for i in range(window):
                client.submit(WriteQuery(f"k{i}".encode(), f"v{i}".encode()))
            assert client.inflight == window
            assert server.quiesce(timeout=10.0)
            server.stop(snapshot=False)  # crash: WAL only
            server = serve_async_in_thread(order=4, data_dir=data_dir,
                                           port=port, snapshot_every=1000)
            assert server.replayed_records == window

            # drain() hits the dead socket, reconnects, resends all W
            # verbatim; replies must verify exactly as if nothing died.
            client.drain()
            assert client.inflight == 0

            # Exactly-once: one execution per distinct op despite every
            # op having been sent twice.
            assert server.read_state(lambda s: s.ctr) == window
            for i in range(window):
                assert client.get(f"k{i}".encode()) == f"v{i}".encode()
            assert sync_check(genesis, {"alice": client.registers()})
        finally:
            client.close()
            server.stop()

    def test_pipelined_partial_batch_crash_exactly_once(self, tmp_path):
        """Crash while only part of the window has executed: resent
        rids split between dedup hits (already in the WAL) and fresh
        executions.  Both paths must converge on one application each."""
        window = 6
        data_dir = str(tmp_path / "server")
        server = serve_async_in_thread(order=4, data_dir=data_dir,
                                       snapshot_every=1000)
        host, port = server.address
        genesis = server.initial_root_digest()
        client = PipelinedRemoteClient(host, port, "alice", genesis,
                                       order=4, window=window,
                                       retry=_fast_retry(seed=4))
        try:
            # Execute (and read) two ops so they are surely in the WAL,
            # then queue a window the server may or may not get to.
            client.put(b"warm0", b"w")
            client.put(b"warm1", b"w")
            for i in range(window):
                client.submit(WriteQuery(f"k{i}".encode(), f"v{i}".encode()))
            server.stop(snapshot=False)
            server = serve_async_in_thread(order=4, data_dir=data_dir,
                                           port=port, snapshot_every=1000)
            client.drain()
            assert server.read_state(lambda s: s.ctr) == 2 + window
            for i in range(window):
                assert client.get(f"k{i}".encode()) == f"v{i}".encode()
            assert sync_check(genesis, {"alice": client.registers()})
        finally:
            client.close()
            server.stop()

    def test_tampered_wal_blocks_recovery(self, tmp_path):
        data_dir = str(tmp_path / "server")
        server = serve_in_thread(order=4, data_dir=data_dir, snapshot_every=100)
        host, port = server.address
        with RemoteClient(host, port, "alice", server.initial_root_digest(),
                          order=4) as alice:
            for i in range(5):
                alice.put(f"k{i}".encode(), b"v")
        server.stop(snapshot=False)

        wal = os.path.join(data_dir, "wal.log")
        with open(wal, "r+b") as handle:
            blob = bytearray(handle.read())
            blob[12] ^= 0xFF
            handle.seek(0)
            handle.write(blob)
        with pytest.raises(WalError):
            TrustedCvsTcpServer(order=4, data_dir=data_dir)
