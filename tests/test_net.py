"""Tests for the TCP deployment layer (real sockets on localhost)."""

import socket
import threading

import pytest

from repro.net import RemoteClient, serve_in_thread, sync_check


@pytest.fixture
def server():
    srv = serve_in_thread(order=4)
    yield srv
    srv.shutdown()
    srv.server_close()


def connect(server, user_id):
    host, port = server.address
    return RemoteClient(host, port, user_id, server.initial_root_digest(), order=4)


class TestSingleClient:
    def test_put_get_roundtrip(self, server):
        with connect(server, "alice") as alice:
            alice.put(b"src/main.c", b"int main() {}")
            assert alice.get(b"src/main.c") == b"int main() {}"
            assert alice.get(b"missing") is None

    def test_delete(self, server):
        with connect(server, "alice") as alice:
            alice.put(b"k", b"v")
            alice.delete(b"k")
            assert alice.get(b"k") is None

    def test_scan(self, server):
        with connect(server, "alice") as alice:
            for i in range(8):
                alice.put(f"f{i}".encode(), str(i).encode())
            entries = alice.scan(b"f2", b"f5")
            assert [k for k, _ in entries] == [b"f2", b"f3", b"f4", b"f5"]

    def test_many_operations(self, server):
        with connect(server, "alice") as alice:
            for i in range(60):
                alice.put(f"k{i % 10}".encode(), f"v{i}".encode())
            assert alice.operations == 60
            assert alice.gctr == 60


class TestMultipleClients:
    def test_two_users_interleaved(self, server):
        with connect(server, "alice") as alice, connect(server, "bob") as bob:
            alice.put(b"shared", b"from alice")
            assert bob.get(b"shared") == b"from alice"
            bob.put(b"shared", b"from bob")
            assert alice.get(b"shared") == b"from bob"

    def test_honest_sync_check_passes(self, server):
        root = server.initial_root_digest()
        with connect(server, "alice") as alice, connect(server, "bob") as bob:
            alice.put(b"a", b"1")
            bob.put(b"b", b"2")
            alice.get(b"b")
            registers = {"alice": alice.registers(), "bob": bob.registers()}
        assert sync_check(root, registers)

    def test_pristine_sync_check_passes(self, server):
        assert sync_check(server.initial_root_digest(), {})

    def test_concurrent_clients(self, server):
        """Hammer the server from threads; serial execution must keep
        every client's register chain valid."""
        root = server.initial_root_digest()
        errors = []
        registers = {}
        lock = threading.Lock()

        def work(user):
            try:
                with connect(server, user) as client:
                    for i in range(20):
                        client.put(f"{user}-{i % 5}".encode(), str(i).encode())
                        client.get(f"{user}-{i % 5}".encode())
                    with lock:
                        registers[user] = client.registers()
            except Exception as exc:  # noqa: BLE001
                errors.append((user, exc))

        threads = [threading.Thread(target=work, args=(f"u{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sync_check(root, registers)


class TestServerMisbehaviour:
    def test_forked_server_caught_by_sync_check(self, server):
        """Simulate a fork at the state level: snapshot the server state,
        serve bob from the stale copy, and check the registers refuse to
        reconcile."""
        root = server.initial_root_digest()
        with connect(server, "alice") as alice:
            alice.put(b"k", b"v1")
            with server.state_lock:
                stale = server.state.clone()
            alice.put(b"k", b"v2")

            # swap the stale state in for bob's session
            with server.state_lock:
                live, server.state = server.state, stale
            with connect(server, "bob") as bob:
                bob.put(b"k", b"bob's view")
                bob_registers = bob.registers()
            with server.state_lock:
                server.state = live

            registers = {"alice": alice.registers(), "bob": bob_registers}
        assert not sync_check(root, registers)

    def test_garbage_frames_rejected(self, server):
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            sock.sendall(b"\x00\x00\x00\x04junk")
            # server drops the connection without crashing
            assert sock.recv(64) == b""
        # and keeps serving others
        with connect(server, "alice") as alice:
            alice.put(b"still", b"alive")
            assert alice.get(b"still") == b"alive"

    def test_sync_check_is_anchored_at_the_initial_root(self, server):
        """The registers are derived entirely from VOs; the initial root
        is the *checker's* trust anchor.  Checking against the true
        pre-history root passes; checking against any other digest (a
        server lying about where history began) rejects."""
        from repro.crypto.hashing import hash_bytes

        true_root = server.initial_root_digest()  # before any operation
        with connect(server, "alice") as alice:
            alice.put(b"k", b"v")
            registers = {"alice": alice.registers()}
        assert sync_check(true_root, registers)
        assert not sync_check(hash_bytes(b"forged genesis"), registers)


class TestProtocol1OverTcp:
    @pytest.fixture
    def p1_setup(self, shared_keys):
        from repro.mtree.database import VerifiedDatabase
        from repro.protocols.base import ServerState
        from repro.protocols.protocol1 import Protocol1Server, bootstrap_server_state

        keys = shared_keys
        state = ServerState(database=VerifiedDatabase(order=4))
        bootstrap_server_state(state, keys.signers["alice"])
        server = serve_in_thread(protocol=Protocol1Server(), state=state)
        yield server, keys
        server.shutdown()
        server.server_close()

    def connect_p1(self, server, keys, user):
        from repro.net import RemoteClientP1

        host, port = server.address
        return RemoteClientP1(host, port, user, keys.signers[user],
                              keys.verifier, order=4)

    def test_signed_roundtrip(self, p1_setup):
        server, keys = p1_setup
        with self.connect_p1(server, keys, "alice") as alice:
            alice.put(b"k", b"v")
            assert alice.get(b"k") == b"v"
            assert alice.lctr == 2

    def test_two_users_chain_signatures(self, p1_setup):
        from repro.net import count_sync_check

        server, keys = p1_setup
        with self.connect_p1(server, keys, "alice") as alice, \
                self.connect_p1(server, keys, "bob") as bob:
            alice.put(b"shared", b"from alice")
            assert bob.get(b"shared") == b"from alice"
            bob.put(b"shared", b"from bob")
            assert alice.get(b"shared") == b"from bob"
            counts = {"alice": alice.counts(), "bob": bob.counts()}
        assert count_sync_check(counts)

    def test_forked_counts_fail_sync(self, p1_setup):
        from repro.net import count_sync_check

        server, keys = p1_setup
        with self.connect_p1(server, keys, "alice") as alice:
            alice.put(b"k", b"v1")
            assert server.quiesce()  # let alice's follow-up signature land
            with server.state_lock:
                stale = server.state.clone()
            alice.put(b"k", b"v2")
            assert server.quiesce()
            with server.state_lock:
                live, server.state = server.state, stale
            with self.connect_p1(server, keys, "bob") as bob:
                bob.put(b"k", b"bob world")
                bob_counts = bob.counts()
            assert server.quiesce()
            with server.state_lock:
                server.state = live
            alice.get(b"k")
            counts = {"alice": alice.counts(), "bob": bob_counts}
        assert not count_sync_check(counts)

    def test_forged_signature_rejected(self, p1_setup):
        from repro.net import IntegrityError

        server, keys = p1_setup
        with self.connect_p1(server, keys, "alice") as alice:
            alice.put(b"k", b"v")
            assert server.quiesce()  # let alice's follow-up signature land
            # corrupt the stored signature server-side (a forging server)
            from repro.crypto.signatures import Signature

            with server.state_lock:
                genuine = server.state.meta["p1.sig"]
                server.state.meta["p1.sig"] = Signature(
                    signer_id=genuine.signer_id, digest=genuine.digest,
                    raw=bytes(len(genuine.raw)))
            with pytest.raises(IntegrityError, match="signature"):
                alice.get(b"k")


class TestProtocol1Blocking:
    """The Protocol I blocking path: the server may not answer the next
    query until the previous operator returns its signature over the
    new root.  These tests drive the handler with raw frames so the
    follow-up can be withheld deliberately."""

    def _start_server(self, keys, block_timeout):
        from repro.mtree.database import VerifiedDatabase
        from repro.protocols.base import ServerState
        from repro.protocols.protocol1 import Protocol1Server, bootstrap_server_state

        state = ServerState(database=VerifiedDatabase(order=4))
        bootstrap_server_state(state, keys.signers["alice"])
        return serve_in_thread(protocol=Protocol1Server(), state=state,
                               block_timeout=block_timeout)

    @staticmethod
    def _operate_withholding_followup(server, signer, key, value):
        """Run one write as ``signer``'s user over a raw socket, but do
        NOT send the follow-up signature.  Returns (socket, followup)."""
        from repro.crypto.hashing import hash_state
        from repro.mtree.database import WriteQuery
        from repro.net.framing import recv_message, send_message
        from repro.protocols.base import Followup, Request, Response
        from repro.protocols.verify import derive_outcome

        host, port = server.address
        sock = socket.create_connection((host, port))
        query = WriteQuery(key, value)
        send_message(sock, Request(query=query,
                                   extras={"user": signer.signer_id}))
        response = recv_message(sock)
        assert isinstance(response, Response)
        ctr = int(response.extras["ctr"])
        outcome = derive_outcome(query, response.result, 4)
        followup = Followup(extras={
            "sig": signer.sign(hash_state(outcome.new_root, ctr + 1)),
            "user": signer.signer_id,
        })
        return sock, followup

    def test_second_client_blocks_until_first_signs(self, shared_keys):
        from repro.net import RemoteClientP1
        from repro.net.framing import send_message

        server = self._start_server(shared_keys, block_timeout=30.0)
        try:
            sock_a, followup = self._operate_withholding_followup(
                server, shared_keys.signers["alice"], b"k", b"v1")
            answered = threading.Event()
            results = {}

            def bob_reads():
                host, port = server.address
                with RemoteClientP1(host, port, "bob",
                                    shared_keys.signers["bob"],
                                    shared_keys.verifier, order=4) as bob:
                    results["answer"] = bob.get(b"k")
                answered.set()

            thread = threading.Thread(target=bob_reads, daemon=True)
            thread.start()
            # Bob must be parked on the unsigned root, not answered.
            assert not answered.wait(0.4)
            send_message(sock_a, followup)
            assert answered.wait(10.0), "bob never unblocked after the signature"
            thread.join(5.0)
            assert results["answer"] == b"v1"
            sock_a.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_block_timeout_returns_error_frame(self, shared_keys):
        """When the operator never signs, the handler must refuse the
        waiting request with an explicit ErrorReply -- a clean failure
        the client surfaces as ServerBusyError -- and the connection
        must stay usable afterwards."""
        from repro.net import RemoteClientP1
        from repro.net.client import ServerBusyError
        from repro.net.framing import send_message

        server = self._start_server(shared_keys, block_timeout=0.3)
        try:
            sock_a, followup = self._operate_withholding_followup(
                server, shared_keys.signers["alice"], b"k", b"v1")
            host, port = server.address
            with RemoteClientP1(host, port, "bob", shared_keys.signers["bob"],
                                shared_keys.verifier, order=4) as bob:
                with pytest.raises(ServerBusyError, match="follow-up"):
                    bob.get(b"k")
                # the session survives the refusal: sign, then retry
                send_message(sock_a, followup)
                assert server.quiesce(timeout=5.0)
                assert bob.get(b"k") == b"v1"
            sock_a.close()
        finally:
            server.shutdown()
            server.server_close()


class TestQuiescedReads:
    """Regression: quiesce() then re-acquiring the lock to read leaves a
    window where a queued request executes in between, so out-of-band
    observers (attack harnesses) could see a torn, mid-transaction root.
    read_quiesced/consistent_view do the wait *and* the read in one
    critical section."""

    _start_server = TestProtocol1Blocking._start_server
    _operate_withholding_followup = staticmethod(
        TestProtocol1Blocking._operate_withholding_followup)

    def test_consistent_view_times_out_while_followup_withheld(self, shared_keys):
        server = self._start_server(shared_keys, block_timeout=30.0)
        try:
            sock_a, followup = self._operate_withholding_followup(
                server, shared_keys.signers["alice"], b"k", b"v1")
            # Mid-transaction: the root has advanced but its follow-up
            # signature is outstanding -- no consistent view exists yet.
            assert server.consistent_view(timeout=0.3) is None
            from repro.net.framing import send_message

            send_message(sock_a, followup)
            view = server.consistent_view(timeout=5.0)
            assert view is not None
            root, ctr, tick = view
            assert ctr == 1
            sock_a.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_quiesced_read_sees_signed_roots_only(self, shared_keys):
        """At every quiesced read the stored state signature must cover
        exactly h(root || ctr) -- the invariant a torn read violates."""
        from repro.crypto.hashing import hash_state
        from repro.net import RemoteClientP1
        from repro.protocols.protocol1 import META_SIG

        server = self._start_server(shared_keys, block_timeout=30.0)
        try:
            host, port = server.address
            stop = threading.Event()
            violations = []

            def observer():
                while not stop.is_set():
                    view = server.read_quiesced(
                        lambda st: (st.database.root_digest(), st.ctr,
                                    st.meta.get(META_SIG)),
                        timeout=5.0)
                    if view is None:
                        continue
                    root, ctr, sig = view
                    if sig is not None and sig.digest != hash_state(root, ctr):
                        violations.append((root, ctr, sig))

            thread = threading.Thread(target=observer, daemon=True)
            thread.start()
            with RemoteClientP1(host, port, "alice",
                                shared_keys.signers["alice"],
                                shared_keys.verifier, order=4) as alice:
                for i in range(12):
                    alice.put(f"k{i % 3}".encode(), f"v{i}".encode())
            stop.set()
            thread.join(5.0)
            assert not violations, violations
        finally:
            server.shutdown()
            server.server_close()


class TestTimeoutsAndRetries:
    """A hung or refusing server must surface as a *retryable* failure
    (TransientNetworkError) within the configured budget -- never a
    client parked forever, never an integrity verdict."""

    def test_hung_server_times_out_as_transient(self):
        """A listener that accepts but never answers: the per-op socket
        timeout fires, the client retries, exhausts its budget, and
        raises TransientNetworkError (an OSError chain, not a hang)."""
        from repro.crypto.hashing import hash_bytes
        from repro.net import RetryPolicy, TransientNetworkError

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        host, port = listener.getsockname()
        try:
            client = RemoteClient(
                host, port, "alice", hash_bytes(b"whatever"), order=4,
                op_timeout=0.2,
                retry=RetryPolicy(attempts=2, base=0.01, cap=0.01, seed=0))
            with pytest.raises(TransientNetworkError):
                client.put(b"k", b"v")
            client.close()
        finally:
            listener.close()

    def test_connection_refused_is_transient_not_integrity(self):
        from repro.crypto.hashing import hash_bytes
        from repro.net import IntegrityError, RetryPolicy, TransientNetworkError

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(TransientNetworkError) as excinfo:
            RemoteClient("127.0.0.1", dead_port, "alice",
                         hash_bytes(b"whatever"), order=4,
                         retry=RetryPolicy(attempts=2, base=0.01, seed=0))
        assert not isinstance(excinfo.value, IntegrityError)

    def _busy_shim(self, upstream_address, busy_replies):
        """A shim server that refuses the first ``busy_replies``
        requests per connection with a retryable ErrorReply, then
        relays request/response frames to the real server."""
        from repro.net.framing import recv_message, send_message
        from repro.protocols.base import ErrorReply

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)

        def serve():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return

                def handle(conn=conn):
                    remaining = busy_replies
                    upstream = None
                    try:
                        while True:
                            request = recv_message(conn)
                            if request is None:
                                return
                            if remaining > 0:
                                remaining -= 1
                                send_message(conn, ErrorReply(
                                    reason="blocked on another user's follow-up",
                                    extras={"retryable": True}))
                                continue
                            if upstream is None:
                                upstream = socket.create_connection(
                                    upstream_address, timeout=5)
                            send_message(upstream, request)
                            send_message(conn, recv_message(upstream))
                    except OSError:
                        pass
                    finally:
                        conn.close()
                        if upstream is not None:
                            upstream.close()

                threading.Thread(target=handle, daemon=True).start()

        threading.Thread(target=serve, daemon=True).start()
        return listener

    def test_busy_refusals_retried_then_succeed(self, server):
        """ServerBusyError is retried on the *same* connection (the
        session is intact) and the operation completes once the server
        stops refusing."""
        from repro.net import RetryPolicy

        shim = self._busy_shim(server.address, busy_replies=2)
        host, port = shim.getsockname()
        try:
            with RemoteClient(host, port, "alice",
                              server.initial_root_digest(), order=4,
                              retry=RetryPolicy(attempts=3, base=0.01,
                                                cap=0.02, busy_attempts=4,
                                                seed=0)) as alice:
                alice.put(b"k", b"v")  # 2 refusals, then applied
                assert alice.get(b"k") == b"v"
                assert alice.operations == 2
        finally:
            shim.close()

    def test_busy_budget_exhaustion_is_transient(self, server):
        from repro.net import RetryPolicy, TransientNetworkError

        shim = self._busy_shim(server.address, busy_replies=10 ** 6)
        host, port = shim.getsockname()
        try:
            with RemoteClient(host, port, "alice",
                              server.initial_root_digest(), order=4,
                              retry=RetryPolicy(attempts=3, base=0.01,
                                                cap=0.02, busy_attempts=3,
                                                seed=0)) as alice:
                with pytest.raises(TransientNetworkError, match="busy"):
                    alice.put(b"k", b"v")
        finally:
            shim.close()


class TestLargeFrames:
    def test_megabyte_values_roundtrip(self, server):
        """Framing handles large VO-bearing responses (multi-frame reads
        on a value far larger than any socket buffer)."""
        big = bytes(range(256)) * 4096  # 1 MiB
        with connect(server, "alice") as alice:
            alice.put(b"blob", big)
            assert alice.get(b"blob") == big
