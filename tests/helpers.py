"""Shared test helpers: a fake client context and scenario shortcuts."""

from __future__ import annotations

from repro.core.scenarios import build_simulation
from repro.protocols.base import Followup, Request


class FakeContext:
    """Minimal ClientContext for protocol-client unit tests."""

    def __init__(self, round_no: int = 1, pending: bool = False) -> None:
        self._round = round_no
        self._pending = pending
        self.sent_to_server: list = []
        self.broadcasts: list = []
        self.internal_requests: list = []
        self.user_messages: list = []

    @property
    def round(self) -> int:
        return self._round

    def advance(self, rounds: int = 1) -> None:
        self._round += rounds

    def send_to_server(self, message) -> None:
        assert isinstance(message, (Followup, Request))
        self.sent_to_server.append(message)

    def broadcast(self, payload: dict) -> None:
        self.broadcasts.append(payload)

    def send_to_user(self, user_id: str, payload: dict) -> None:
        self.user_messages.append((user_id, payload))

    def has_pending(self) -> bool:
        return self._pending

    def issue_internal(self, request: Request) -> None:
        self.internal_requests.append(request)


def run_scenario(protocol, workload, attack=None, max_rounds=4000, **kwargs):
    """Build and execute a simulation; return the report."""
    simulation = build_simulation(protocol, workload, attack=attack, **kwargs)
    return simulation.execute(max_rounds=max_rounds)
