"""Edge-case coverage: rarely taken error branches across modules."""

import pytest

from repro.crypto import rsa
from repro.crypto.hashing import hash_bytes
from repro.mtree.database import QueryResult, RangeQuery, ReadQuery, VerifiedDatabase, WriteQuery
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    FringeNode,
    LeafSnapshot,
    ProofError,
    RangeProof,
    SiblingPair,
    UpdateProof,
    build_range_proof,
    build_read_proof,
    build_update_proof,
    verify_range,
    verify_update,
)
from repro.protocols.verify import derive_outcome


def make_tree(n=30, order=3):
    mtree = MerkleBPlusTree(order=order)
    for i in range(n):
        mtree.insert(f"k{i:03d}".encode(), f"v{i}".encode())
    return mtree


class TestRsaEdges:
    def test_modular_inverse_missing(self):
        with pytest.raises(ValueError):
            rsa._modular_inverse(4, 8)

    def test_pad_digest_modulus_too_small(self):
        with pytest.raises(ValueError):
            rsa._pad_digest(hash_bytes(b"x"), byte_length=16)

    def test_verify_with_tiny_modulus_is_false_not_crash(self):
        # a "key" whose modulus cannot fit padded digests
        tiny = rsa.PublicKey(modulus=(1 << 128) - 159, exponent=65537)
        assert not rsa.verify_digest(tiny, hash_bytes(b"m"), b"\x01" * tiny.byte_length)


class TestSnapshotValidation:
    def test_leaf_snapshot_arity(self):
        with pytest.raises(ProofError):
            LeafSnapshot(keys=(b"a",), entry_digests=())

    def test_internal_snapshot_arity(self):
        from repro.mtree.proofs import InternalSnapshot

        with pytest.raises(ProofError):
            InternalSnapshot(keys=(b"a", b"b"), child_digests=(hash_bytes(b"x"),))


class TestUpdateProofEdges:
    def test_left_sibling_for_leftmost_child_rejected(self):
        mtree = make_tree()
        proof = build_update_proof(mtree, "delete", b"k000")  # leftmost path
        if not proof.internals:
            pytest.skip("tree too small")
        # force a bogus left sibling at a level where the child is leftmost
        fake = proof.leaf
        pairs = list(proof.siblings)
        level = None
        from repro.mtree.proofs import route_index

        for depth, snapshot in enumerate(proof.internals):
            if route_index(snapshot.keys, b"k000") == 0:
                level = depth
                break
        if level is None:
            pytest.skip("no leftmost level")
        pairs[level] = SiblingPair(left=fake, right=pairs[level].right)
        forged = UpdateProof(operation="delete", key=proof.key,
                             internals=proof.internals, leaf=proof.leaf,
                             siblings=tuple(pairs))
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), forged, mtree.order, b"k000")

    def test_right_sibling_for_rightmost_child_rejected(self):
        mtree = make_tree()
        key = b"k029"
        proof = build_update_proof(mtree, "delete", key)
        if not proof.internals:
            pytest.skip("tree too small")
        from repro.mtree.proofs import route_index

        pairs = list(proof.siblings)
        level = None
        for depth, snapshot in enumerate(proof.internals):
            if route_index(snapshot.keys, key) == len(snapshot.child_digests) - 1:
                level = depth
                break
        if level is None:
            pytest.skip("no rightmost level")
        pairs[level] = SiblingPair(left=pairs[level].left, right=proof.leaf)
        forged = UpdateProof(operation="delete", key=proof.key,
                             internals=proof.internals, leaf=proof.leaf,
                             siblings=tuple(pairs))
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), forged, mtree.order, key)

    def test_tiny_order_rejected_in_replay(self):
        mtree = make_tree()
        proof = build_update_proof(mtree, "insert", b"k001")
        with pytest.raises(ProofError):
            verify_update(mtree.root_digest(), proof, 2, b"k001", b"v")


class TestRangeProofEdges:
    def test_unexpected_node_type_rejected(self):
        mtree = make_tree()
        proof = build_range_proof(mtree, b"k005", b"k010")
        forged = RangeProof(low=proof.low, high=proof.high,
                            root="not a node", entries=proof.entries)
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)

    def test_fringe_arity_mismatch_rejected(self):
        mtree = make_tree()
        proof = build_range_proof(mtree, b"k005", b"k010")
        if not isinstance(proof.root, FringeNode):
            pytest.skip("single-leaf tree")
        forged_root = FringeNode(keys=proof.root.keys + (b"zzz",),
                                 children=proof.root.children)
        forged = RangeProof(low=proof.low, high=proof.high,
                            root=forged_root, entries=proof.entries)
        with pytest.raises(ProofError):
            verify_range(mtree.root_digest(), forged)


class TestDeriveOutcomeEdges:
    def test_unknown_query_type(self):
        db = VerifiedDatabase(order=4)
        result = db.execute(WriteQuery(b"k", b"v"))
        with pytest.raises(ProofError):
            derive_outcome("not a query", result, 4)

    def test_read_answer_mismatch(self):
        db = VerifiedDatabase(order=4)
        db.execute(WriteQuery(b"k", b"v"))
        result = db.execute(ReadQuery(b"k"))
        lying = QueryResult(answer=b"other", proof=result.proof)
        with pytest.raises(ProofError):
            derive_outcome(ReadQuery(b"k"), lying, 4)

    def test_range_answer_mismatch(self):
        db = VerifiedDatabase(order=4)
        db.execute(WriteQuery(b"k", b"v"))
        result = db.execute(RangeQuery(b"a", b"z"))
        lying = QueryResult(answer=(), proof=result.proof)
        with pytest.raises(ProofError):
            derive_outcome(RangeQuery(b"a", b"z"), lying, 4)

    def test_update_wrong_operation(self):
        db = VerifiedDatabase(order=4)
        db.execute(WriteQuery(b"k", b"v"))
        delete_result = db.execute(ReadQuery(b"k"))
        with pytest.raises(ProofError):
            derive_outcome(WriteQuery(b"k", b"v2"), delete_result, 4)

    def test_outcome_is_update_flag(self):
        db = VerifiedDatabase(order=4)
        write = WriteQuery(b"k", b"v")
        outcome = derive_outcome(write, db.execute(write), 4)
        assert outcome.is_update
        read = ReadQuery(b"k")
        outcome = derive_outcome(read, db.execute(read), 4)
        assert not outcome.is_update


class TestAgentEdges:
    def test_issue_internal_refused_when_pending(self):
        from repro.protocols.base import ProtocolClient, Request
        from repro.simulation.agents import UserAgent
        from repro.simulation.workload import Intent

        agent = UserAgent("u", ProtocolClient("u"),
                          intents=[Intent(round=1, query=ReadQuery(b"k"))])
        from repro.simulation.channels import Network
        from repro.simulation.events import Run

        network = Network(user_ids=["u"])
        agent.step(1, network, Run(), [0])   # issues the intent
        assert agent.has_pending()
        before = network.messages_sent
        agent.issue_internal(Request(query=None))
        assert network.messages_sent == before  # refused, no double-pending

    def test_read_proof_size_counts(self):
        mtree = make_tree()
        proof = build_read_proof(mtree, b"k001")
        assert proof.size_digests() > 0
        update = build_update_proof(mtree, "delete", b"k001")
        assert update.size_digests() >= proof.size_digests()
