"""Tests for the executable Theorem 3.1 construction."""

import pytest

from repro.analysis.impossibility import demonstrate_partition, make_partition_spec


class TestSpecConstruction:
    def test_groups_disjoint(self):
        spec = make_partition_spec(group_a_size=2, group_b_size=3, seed=1)
        assert not set(spec.group_a) & set(spec.group_b)

    def test_workload_variants(self):
        spec = make_partition_spec(seed=1)
        full = spec.workload(True, True)
        only_a = spec.workload(True, False)
        only_b = spec.workload(False, True)
        assert full.total_operations() > only_a.total_operations()
        assert full.total_operations() > only_b.total_operations()
        # the prefixes agree across variants
        for user in (*spec.group_a, *spec.group_b):
            prefix_rounds = [i.round for i in spec.prefix.get(user, [])]
            for workload in (full, only_a, only_b):
                rounds = [i.round for i in workload.schedules[user]]
                assert rounds[: len(prefix_rounds)] == prefix_rounds

    def test_suffixes_after_fork(self):
        spec = make_partition_spec(seed=2)
        for suffix in (spec.suffix_a, spec.suffix_b):
            for intents in suffix.values():
                assert all(i.round > spec.fork_round for i in intents)

    def test_deterministic(self):
        a = make_partition_spec(seed=3)
        b = make_partition_spec(seed=3)
        assert a == b


class TestTheorem31:
    """No server-only client can distinguish the forked run from the
    honest runs -- for ANY of our client strategies."""

    @pytest.mark.parametrize("protocol", ["naive", "protocol1", "protocol2"])
    def test_indistinguishable_without_external_communication(self, protocol):
        report = demonstrate_partition(protocol, seed=4)
        assert report.server_forked           # the attack genuinely forked
        assert report.honest_runs_clean       # completeness of the clients
        assert report.views_match_a, protocol  # A sees exactly rA
        assert report.views_match_b, protocol  # B sees exactly rB
        assert not report.attack_detected      # => necessarily undetected
        assert report.theorem_holds

    def test_protocol3_with_idle_epochs_also_blind(self):
        """With epochs so long no audit ever fires, Protocol III is a
        server-only client too and the construction applies."""
        report = demonstrate_partition("protocol3", seed=4, epoch_length=100_000)
        assert report.theorem_holds

    def test_external_communication_breaks_indistinguishability(self):
        """The converse direction (Section 4): a small sync period means
        broadcast traffic, the B users' views diverge from rB, and the
        attack is detected."""
        report = demonstrate_partition("protocol2", k=3, seed=4)
        assert report.server_forked
        assert not report.views_match_b
        assert report.attack_detected

    def test_aggregated_sync_also_breaks_it(self):
        report = demonstrate_partition("protocol2agg", k=3, seed=4)
        assert report.attack_detected

    def test_multiple_seeds(self):
        for seed in range(3):
            report = demonstrate_partition("protocol2", seed=seed)
            assert report.theorem_holds, seed

    def test_larger_groups(self):
        spec = make_partition_spec(group_a_size=2, group_b_size=3, seed=5)
        report = demonstrate_partition("protocol2", spec=spec, seed=5)
        assert report.theorem_holds
