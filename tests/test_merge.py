"""Tests for the three-way merge engine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.merge import MergeResult, merge3, render_with_markers

BASE = ["a", "b", "c", "d", "e", "f", "g", "h"]


class TestCleanMerges:
    def test_no_changes(self):
        result = merge3(BASE, list(BASE), list(BASE))
        assert not result.has_conflicts
        assert result.lines() == BASE

    def test_only_ours_changed(self):
        ours = ["a", "B", "c", "d", "e", "f", "g", "h"]
        result = merge3(BASE, ours, list(BASE))
        assert result.lines() == ours

    def test_only_theirs_changed(self):
        theirs = BASE + ["i"]
        result = merge3(BASE, list(BASE), theirs)
        assert result.lines() == theirs

    def test_disjoint_changes_combine(self):
        ours = ["A"] + BASE[1:]          # change the first line
        theirs = BASE[:-1] + ["H"]       # change the last line
        result = merge3(BASE, ours, theirs)
        assert not result.has_conflicts
        assert result.lines() == ["A"] + BASE[1:-1] + ["H"]

    def test_identical_changes_merge_silently(self):
        changed = ["a", "X", "c", "d", "e", "f", "g", "h"]
        result = merge3(BASE, list(changed), list(changed))
        assert not result.has_conflicts
        assert result.lines() == changed

    def test_adjacent_but_disjoint_regions(self):
        ours = ["a", "B", "c", "d", "e", "f", "g", "h"]
        theirs = ["a", "b", "c", "D", "e", "f", "g", "h"]
        result = merge3(BASE, ours, theirs)
        assert not result.has_conflicts
        assert result.lines() == ["a", "B", "c", "D", "e", "f", "g", "h"]

    def test_our_delete_their_append(self):
        ours = BASE[2:]
        theirs = BASE + ["tail"]
        result = merge3(BASE, ours, theirs)
        assert not result.has_conflicts
        assert result.lines() == BASE[2:] + ["tail"]


class TestConflicts:
    def test_same_line_differs(self):
        ours = ["a", "OURS", "c", "d", "e", "f", "g", "h"]
        theirs = ["a", "THEIRS", "c", "d", "e", "f", "g", "h"]
        result = merge3(BASE, ours, theirs)
        assert result.has_conflicts
        conflict = result.conflicts()[0]
        assert conflict.base == ("b",)
        assert conflict.ours == ("OURS",)
        assert conflict.theirs == ("THEIRS",)

    def test_delete_vs_edit_conflicts(self):
        ours = ["a", "c", "d", "e", "f", "g", "h"]        # deleted b
        theirs = ["a", "B!", "c", "d", "e", "f", "g", "h"]  # edited b
        result = merge3(BASE, ours, theirs)
        assert result.has_conflicts

    def test_insertions_at_same_point_conflict(self):
        ours = BASE[:4] + ["from ours"] + BASE[4:]
        theirs = BASE[:4] + ["from theirs"] + BASE[4:]
        result = merge3(BASE, ours, theirs)
        assert result.has_conflicts

    def test_flatten_with_conflicts_raises(self):
        ours = ["X"] + BASE[1:]
        theirs = ["Y"] + BASE[1:]
        result = merge3(BASE, ours, theirs)
        with pytest.raises(ValueError):
            result.lines()

    def test_clean_text_around_conflict_is_preserved(self):
        ours = ["a", "OURS"] + BASE[2:]
        theirs = ["a", "THEIRS"] + BASE[2:]
        result = merge3(BASE, ours, theirs)
        rendered = render_with_markers(result, "alice", "bob")
        assert rendered[0] == "a"
        assert rendered[-1] == "h"

    def test_marker_rendering(self):
        ours = ["a", "OURS"] + BASE[2:]
        theirs = ["a", "THEIRS"] + BASE[2:]
        rendered = render_with_markers(merge3(BASE, ours, theirs), "alice", "bob")
        assert "<<<<<<< alice" in rendered
        assert "=======" in rendered
        assert ">>>>>>> bob" in rendered
        assert rendered.index("OURS") < rendered.index("=======") < rendered.index("THEIRS")


def random_edit(rng, lines):
    """One structured random edit (replace / delete / insert a block)."""
    lines = list(lines)
    kind = rng.choice(["replace", "delete", "insert"])
    if not lines or kind == "insert":
        at = rng.randrange(len(lines) + 1)
        lines[at:at] = [f"ins-{rng.randrange(1000)}"]
    elif kind == "replace":
        at = rng.randrange(len(lines))
        lines[at] = f"rep-{rng.randrange(1000)}"
    else:
        at = rng.randrange(len(lines))
        del lines[at]
    return lines


class TestProperties:
    @settings(max_examples=120, deadline=None)
    @given(
        base=st.lists(st.sampled_from([f"l{i}" for i in range(10)]), max_size=16),
        seed=st.integers(min_value=0, max_value=10_000),
        n_ours=st.integers(min_value=0, max_value=3),
        n_theirs=st.integers(min_value=0, max_value=3),
    )
    def test_merge_never_crashes_and_flattens_or_conflicts(self, base, seed, n_ours, n_theirs):
        rng = random.Random(seed)
        ours = list(base)
        for _ in range(n_ours):
            ours = random_edit(rng, ours)
        theirs = list(base)
        for _ in range(n_theirs):
            theirs = random_edit(rng, theirs)
        result = merge3(base, ours, theirs)
        assert isinstance(result, MergeResult)
        if not result.has_conflicts:
            merged = result.lines()
            # every line of the merge comes from one of the three inputs
            pool = set(base) | set(ours) | set(theirs)
            assert set(merged) <= pool
        rendered = render_with_markers(result)
        assert isinstance(rendered, list)

    @settings(max_examples=80, deadline=None)
    @given(
        base=st.lists(st.sampled_from([f"l{i}" for i in range(8)]), max_size=14),
        derived=st.lists(st.sampled_from([f"l{i}" for i in range(8)]), max_size=14),
    )
    def test_merge_with_unchanged_side_yields_other(self, base, derived):
        assert merge3(base, derived, list(base)).lines() == derived
        assert merge3(base, list(base), derived).lines() == derived

    @settings(max_examples=80, deadline=None)
    @given(
        base=st.lists(st.sampled_from([f"l{i}" for i in range(8)]), max_size=14),
        derived=st.lists(st.sampled_from([f"l{i}" for i in range(8)]), max_size=14),
    )
    def test_identical_sides_never_conflict(self, base, derived):
        result = merge3(base, list(derived), list(derived))
        assert not result.has_conflicts
        assert result.lines() == derived
