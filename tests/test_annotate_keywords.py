"""Tests for cvs annotate (blame) and RCS keyword expansion."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.facade import CvsClient, CvsServer
from repro.storage.annotate import annotate, format_annotations
from repro.storage.keywords import (
    collapse_keywords,
    contains_keywords,
    expand_keywords,
)
from repro.storage.rcs import Revision, RevisionStore


@pytest.fixture
def store():
    s = RevisionStore()
    s.commit(["alpha", "beta"], "alice", "r1", 0)
    s.commit(["alpha", "beta", "gamma"], "bob", "r2", 1)
    s.commit(["ALPHA", "beta", "gamma"], "carol", "r3", 2)
    return s


class TestAnnotate:
    def test_attributions(self, store):
        lines = annotate(store)
        assert [(l.text, l.revision, l.author) for l in lines] == [
            ("ALPHA", "1.3", "carol"),
            ("beta", "1.1", "alice"),
            ("gamma", "1.2", "bob"),
        ]

    def test_old_revision(self, store):
        lines = annotate(store, "1.2")
        assert [(l.text, l.revision) for l in lines] == [
            ("alpha", "1.1"), ("beta", "1.1"), ("gamma", "1.2"),
        ]

    def test_empty_store(self):
        assert annotate(RevisionStore()) == []

    def test_unknown_revision(self, store):
        with pytest.raises(Exception):
            annotate(store, "1.9")

    def test_branch_annotation(self, store):
        branch = store.create_branch("1.2")
        store.commit_on_branch(branch, ["alpha", "beta", "gamma", "branchline"],
                               "dave", "b1", 5)
        lines = annotate(store, f"{branch}.1")
        assert [(l.text, l.revision) for l in lines] == [
            ("alpha", "1.1"), ("beta", "1.1"),
            ("gamma", "1.2"), ("branchline", "1.2.2.1"),
        ]

    def test_line_moves_are_reattributed(self):
        """A deleted-then-reintroduced line belongs to the reintroducer
        (classic blame semantics)."""
        s = RevisionStore()
        s.commit(["keep", "original"], "alice", "", 0)
        s.commit(["keep"], "bob", "", 1)
        s.commit(["keep", "original"], "carol", "", 2)
        lines = annotate(s)
        assert lines[1].author == "carol"

    def test_format(self, store):
        rendered = format_annotations(annotate(store))
        assert rendered[0].startswith("1.3 (carol")
        assert rendered[0].endswith("ALPHA")
        assert format_annotations([]) == []

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=6),
                    min_size=1, max_size=6))
    def test_annotation_text_always_matches_checkout(self, revisions):
        s = RevisionStore()
        for t, content in enumerate(revisions):
            s.commit(list(content), f"u{t}", "", t)
        lines = annotate(s)
        assert [l.text for l in lines] == s.checkout()
        valid_revisions = {meta.number for meta in s.log()}
        assert all(l.revision in valid_revisions for l in lines)


class TestKeywords:
    REV = Revision(number="1.4", author="alice", log_message="", timestamp=7)

    def test_id_expansion(self):
        out = expand_keywords(["// $Id$"], "src/a.c", self.REV)
        assert out == ["// $Id: src/a.c 1.4 t7 alice $"]

    def test_all_keywords(self):
        doc = ["$Revision$ $Author$ $Date$ $Source$"]
        out = expand_keywords(doc, "f.c", self.REV)
        assert out == ["$Revision: 1.4 $ $Author: alice $ $Date: t7 $ $Source: f.c $"]

    def test_expansion_idempotent(self):
        doc = ["x $Id$ y"]
        once = expand_keywords(doc, "f.c", self.REV)
        twice = expand_keywords(once, "f.c", self.REV)
        assert once == twice

    def test_collapse(self):
        expanded = expand_keywords(["$Id$", "$Revision$"], "f.c", self.REV)
        assert collapse_keywords(expanded) == ["$Id$", "$Revision$"]

    def test_collapse_idempotent_on_bare(self):
        assert collapse_keywords(["$Id$"]) == ["$Id$"]

    def test_non_keywords_untouched(self):
        doc = ["$PATH$", "price is $5", "$Idx$", "plain"]
        assert expand_keywords(doc, "f", self.REV) == doc
        assert not contains_keywords(doc)

    def test_contains(self):
        assert contains_keywords(["hello $Revision$"])
        assert contains_keywords(["$Id: stale value $"])


class TestFacadeIntegration:
    def test_checkout_with_expansion(self):
        client = CvsClient(CvsServer(order=4), author="alice")
        client.commit("f.c", ["/* $Id$ */", "int x;"], "add")
        plain = client.checkout("f.c")
        assert plain[0] == "/* $Id$ */"
        expanded = client.checkout("f.c", expand=True)
        assert expanded[0] == "/* $Id: f.c 1.1 t1 alice $ */"

    def test_commit_collapses_expanded_keywords(self):
        """Round-tripping an expanded checkout never pollutes deltas."""
        client = CvsClient(CvsServer(order=4), author="alice")
        client.commit("f.c", ["// $Id$", "v1"], "r1")
        working = client.checkout("f.c", expand=True)
        working[1] = "v2"
        client.commit("f.c", working, "r2")
        assert client.checkout("f.c") == ["// $Id$", "v2"]
        assert client.checkout("f.c", expand=True)[0] == "// $Id: f.c 1.2 t2 alice $"

    def test_facade_annotate(self):
        client = CvsClient(CvsServer(order=4), author="alice")
        client.commit("f.c", ["one"], "r1")
        client.author = "bob"  # the session changes hands
        client.commit("f.c", ["one", "two"], "r2")
        lines = client.annotate("f.c")
        assert [(l.text, l.author) for l in lines] == [("one", "alice"), ("two", "bob")]

    def test_annotate_missing_file(self):
        client = CvsClient(CvsServer(order=4), author="alice")
        with pytest.raises(FileNotFoundError):
            client.annotate("ghost")


class TestCliAnnotate:
    def test_annotate_command(self, tmp_path):
        from repro.cli import main

        def run(argv, expect=0):
            out = io.StringIO()
            assert main(argv, out=out) == expect, out.getvalue()
            return out.getvalue()

        import os
        import tempfile

        repo = str(tmp_path / "repo")
        run(["init", repo])
        for content, author in (("line one\n", "alice"), ("line one\nline two\n", "bob")):
            with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as handle:
                handle.write(content)
                name = handle.name
            try:
                run(["-R", repo, "-a", author, "commit", "f.txt", "--file", name])
            finally:
                os.unlink(name)
        text = run(["-R", repo, "annotate", "f.txt"])
        assert "1.1 (alice" in text
        assert "1.2 (bob" in text

    def test_checkout_expand_flag(self, tmp_path):
        from repro.cli import main

        def run(argv, expect=0):
            out = io.StringIO()
            assert main(argv, out=out) == expect, out.getvalue()
            return out.getvalue()

        import os
        import tempfile

        repo = str(tmp_path / "repo")
        run(["init", repo])
        with tempfile.NamedTemporaryFile("w", suffix=".c", delete=False) as handle:
            handle.write("/* $Revision$ */\n")
            name = handle.name
        try:
            run(["-R", repo, "-a", "alice", "commit", "f.c", "--file", name])
        finally:
            os.unlink(name)
        plain = run(["-R", repo, "checkout", "f.c"])
        assert plain == "/* $Revision$ */\n"
        expanded = run(["-R", repo, "checkout", "f.c", "--expand"])
        assert expanded == "/* $Revision: 1.1 $ */\n"
