"""The asyncio server core: batched execution over one event loop.

The async server must be *indistinguishable* from the threaded one to
a verifying client — same wire protocol, same VO chain, same crash
behaviour — while amortizing the per-op costs (fsync, Merkle root
pass, Protocol I signature round) across batches.  These tests pin
both halves: equivalence of what clients observe, and that batching
actually happens.
"""

import pytest

from repro import obs
from repro.mtree.database import VerifiedDatabase, WriteQuery
from repro.net import (
    PipelinedRemoteClient,
    PipelinedRemoteClientP1,
    RemoteClient,
    RemoteClientP1,
    count_sync_check,
    serve_async_in_thread,
    sync_check,
)
from repro.protocols.base import ServerState
from repro.protocols.protocol1 import Protocol1Server, bootstrap_server_state


def p1_async_server(keys, elected="alice", **kwargs):
    state = ServerState(database=VerifiedDatabase(order=4))
    protocol = Protocol1Server()
    protocol.initialize(state)
    bootstrap_server_state(state, keys.signers[elected])
    return serve_async_in_thread(order=4, protocol=protocol, state=state,
                                 block_timeout=5.0, **kwargs)


class TestAsyncServerEquivalence:
    def test_serial_clients_cannot_tell_the_transports_apart(self):
        """Stop-and-wait RemoteClients run unchanged against the async
        server: per-op VOs verify, registers sync, final root matches
        an in-process reference run."""
        server = serve_async_in_thread(order=4)
        reference = VerifiedDatabase(order=4)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            clients = {
                user: RemoteClient(host, port, user, genesis, order=4)
                for user in ("alice", "bob")
            }
            for i in range(8):
                for user in ("alice", "bob"):
                    key, value = f"{user}-{i}".encode(), f"v{i}".encode()
                    clients[user].put(key, value)
                    reference.execute(WriteQuery(key, value))
            assert clients["alice"].get(b"bob-3") == b"v3"
            registers = {u: c.registers() for u, c in clients.items()}
            assert sync_check(genesis, registers)
            final = server.read_state(lambda s: s.database.root_digest())
            assert final == reference.root_digest()
            for client in clients.values():
                client.close()
        finally:
            server.stop()

    def test_pipelined_window_verifies_in_order(self):
        """A full window of in-flight writes drains with every VO
        verified in submission order; answers land in order too."""
        server = serve_async_in_thread(order=4, batch_max=8)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            client = PipelinedRemoteClient(host, port, "alice", genesis,
                                           order=4, window=8)
            for i in range(24):
                client.submit(WriteQuery(f"k{i % 5}".encode(),
                                         f"v{i}".encode()))
            client.drain()
            assert client.inflight == 0
            assert client.get(b"k4") == b"v19"  # last write to k4 wins
            assert sync_check(genesis, {"alice": client.registers()})
            client.close()
        finally:
            server.stop()

    def test_quiesce_gives_a_stable_read(self):
        server = serve_async_in_thread(order=4)
        try:
            host, port = server.address
            with RemoteClient(host, port, "alice",
                              server.initial_root_digest(), order=4) as c:
                c.put(b"k", b"v")
            assert server.quiesce(timeout=5.0)
            ctr = server.read_state(lambda s: s.ctr)
            assert ctr == 1
        finally:
            server.stop()


class TestBatchingAmortization:
    def test_batches_are_actually_batched(self):
        """With a window of pipelined writers the drainer must group
        ops: strictly fewer batches (root passes / group commits) than
        operations, visible in the obs counters."""
        obs.reset()
        obs.enable()
        server = serve_async_in_thread(order=4, batch_max=32)
        try:
            host, port = server.address
            genesis = server.initial_root_digest()
            client = PipelinedRemoteClient(host, port, "alice", genesis,
                                           order=4, window=16)
            total = 64
            for i in range(total):
                client.submit(WriteQuery(f"k{i % 7}".encode(), b"v"))
            client.drain()
            batches = obs.registry.counter("server.batches").total()
            assert 0 < batches < total
            assert sync_check(genesis, {"alice": client.registers()})
            client.close()
        finally:
            server.stop()
            obs.disable()

    def test_p1_signs_once_per_batch_not_per_op(self, shared_keys):
        """The amortization claim itself: a pipelined Protocol I client
        produces ~ops/W follow-up signatures, while a stop-and-wait
        client against the same server still signs per op."""
        server = p1_async_server(shared_keys, batch_max=16)
        try:
            host, port = server.address
            pipelined = PipelinedRemoteClientP1(
                host, port, "alice", shared_keys.signers["alice"],
                shared_keys.verifier, order=4, window=8)
            total = 32
            for i in range(total):
                pipelined.submit(WriteQuery(f"a{i % 5}".encode(), b"v"))
            pipelined.drain()
            # One signature per signing run, not per op.  Runs can be
            # shorter than W when the drainer ticks early, but there
            # must be real amortization, not per-op signing.
            assert pipelined.followups_sent < total // 2

            serial = RemoteClientP1(
                host, port, "bob", shared_keys.signers["bob"],
                shared_keys.verifier, order=4)
            for i in range(4):
                serial.put(f"b{i}".encode(), b"v")

            counts = {"alice": pipelined.counts(), "bob": serial.counts()}
            assert count_sync_check(counts)
            pipelined.close()
            serial.close()
        finally:
            server.stop()
