"""End-to-end integration: real CVS content flowing through the
verified database and the multi-user protocols."""

import pytest

from helpers import run_scenario
from repro.core.facade import CvsClient, CvsServer
from repro.core.scenarios import build_simulation
from repro.mtree.database import ReadQuery, WriteQuery
from repro.server.attacks import ForkAttack
from repro.simulation.workload import Intent, Workload
from repro.storage.rcs import RevisionStore


class TestFacadeDevelopmentFlow:
    def test_full_project_lifecycle(self):
        server = CvsServer(order=8)
        dev = CvsClient(server, author="dev")

        # grow a small project
        dev.commit("Makefile", ["all:", "\tcc -o app main.c"], "build scaffolding")
        dev.commit("src/main.c", ["#include <stdio.h>", "int main() { return 0; }"], "entry point")
        dev.commit("src/util.c", ["int helper() { return 1; }"], "helpers")

        # iterate on a file
        for i in range(10):
            content = ["#include <stdio.h>", f"int main() {{ return {i}; }}"]
            dev.commit("src/main.c", content, f"iteration {i}")
        assert len(dev.log("src/main.c")) == 11

        # diff across revision gaps
        text = dev.diff("src/main.c", "1.1")
        assert "+int main() { return 9; }" in text

        # prune and verify listing
        dev.remove("src/util.c", "dead code")
        assert dev.paths("src/") == ["src/main.c"]

        # old history remains verifiable
        assert dev.checkout("src/util.c", "1.1") == ["int helper() { return 1; }"]


def cvs_commit_workload() -> Workload:
    """A two-user CVS session, pre-serialised: each WriteQuery carries a
    full RCS store so the Merkle root commits to file history."""

    def store_blob(lines_history):
        store = RevisionStore()
        for t, lines in enumerate(lines_history):
            store.commit(list(lines), author="x", log_message="", timestamp=t)
        return store.serialize()

    common_v1 = store_blob([["#define X 1"]])
    common_v2 = store_blob([["#define X 1"], ["#define X 2"]])
    app_v1 = store_blob([["int app() { return X; }"]])

    schedules = {
        "alice": [
            Intent(round=2, query=WriteQuery(b"src/common.h", common_v1)),
            Intent(round=8, query=WriteQuery(b"src/common.h", common_v2)),
            Intent(round=30, query=ReadQuery(b"src/app.c")),
            Intent(round=36, query=ReadQuery(b"src/common.h")),
            Intent(round=42, query=ReadQuery(b"src/app.c")),
        ],
        "bob": [
            Intent(round=5, query=ReadQuery(b"src/common.h")),
            Intent(round=14, query=WriteQuery(b"src/app.c", app_v1)),
            Intent(round=20, query=ReadQuery(b"src/common.h")),
            Intent(round=38, query=ReadQuery(b"src/app.c")),
        ],
    }
    return Workload(name="cvs-session", schedules=schedules)


class TestSimulatedCvsSession:
    def test_honest_session_round_trips_history(self):
        workload = cvs_commit_workload()
        simulation = build_simulation("protocol2", workload, k=10, seed=1)
        report = simulation.execute()
        assert not report.detected
        # The server-side value for common.h deserialises to full history.
        blob = simulation.server.states["main"].database.get(b"src/common.h")
        store = RevisionStore.deserialize(blob)
        assert store.checkout("1.1") == ["#define X 1"]
        assert store.checkout("1.2") == ["#define X 2"]

    def test_forked_session_detected(self):
        workload = cvs_commit_workload()
        attack = ForkAttack(victims=["bob"], fork_round=10)
        report = run_scenario("protocol2", workload, attack=attack, k=2, seed=2)
        assert report.detected
        assert not report.false_alarm


class TestCrossProtocolConsistency:
    @pytest.mark.parametrize("protocol", ["naive", "protocol1", "protocol2"])
    def test_same_workload_same_final_database(self, protocol):
        """Whatever the protocol wrapping, the honest server must end at
        the same database state for the same workload."""
        from repro.simulation.workload import steady_workload

        workload = steady_workload(3, 8, seed=3, write_ratio=0.8)
        simulation = build_simulation(protocol, workload, k=100, seed=3)
        report = simulation.execute()
        assert not report.detected
        digest = simulation.server.states["main"].database.root_digest()
        if not hasattr(TestCrossProtocolConsistency, "_reference"):
            TestCrossProtocolConsistency._reference = digest
        assert digest == TestCrossProtocolConsistency._reference
