"""Tests for the exhaustive Protocol II model checker."""

from repro.analysis.modelcheck import (
    _true_owners,
    model_check,
    run_behaviour,
)

USERS = ("u0", "u1")


class TestRunBehaviour:
    def test_honest_serial_behaviour_accepted(self):
        users = ("u0", "u1", "u0")
        picks = (0, 1, 2)  # always the tip
        owners = tuple(_true_owners(users, picks))
        result = run_behaviour(users, picks, owners, USERS)
        assert result.honest
        assert result.accepted

    def test_fork_rejected_at_sync(self):
        users = ("u0", "u1")
        picks = (0, 0)  # second op served from genesis: a fork
        owners = ("", "")
        result = run_behaviour(users, picks, owners, USERS)
        assert not result.honest
        assert not result.rejected_immediately  # both ops individually fine
        assert not result.sync_passes            # caught at sync

    def test_replay_to_same_user_rejected_immediately(self):
        users = ("u0", "u0")
        picks = (0, 0)  # same user sees ctr 0 twice
        owners = ("", "")
        result = run_behaviour(users, picks, owners, USERS)
        assert result.rejected_immediately

    def test_owner_lie_rejected(self):
        users = ("u0", "u1")
        picks = (0, 1)
        owners = ("", "u1")  # state 1's true owner is u0
        result = run_behaviour(users, picks, owners, USERS)
        assert not result.honest
        assert not result.accepted

    def test_initial_owner_lie_rejected_immediately(self):
        result = run_behaviour(("u0",), (0,), ("u1",), USERS)
        assert result.rejected_immediately

    def test_empty_run_is_honest(self):
        result = run_behaviour((), (), (), USERS)
        assert result.honest
        assert result.accepted


class TestTrueOwners:
    def test_serial(self):
        assert _true_owners(("u0", "u1", "u0"), (0, 1, 2)) == ["", "u0", "u1"]

    def test_fork_claims_forked_owner(self):
        # op2 served from genesis: its true owner claim is ""
        assert _true_owners(("u0", "u1"), (0, 0)) == ["", ""]


class TestExhaustive:
    def test_theorem_holds_without_owner_lies(self):
        report = model_check(n_users=2, n_ops=4, enumerate_owner_lies=False)
        assert report.theorem_holds, report.counterexamples
        assert report.behaviours == 2 ** 4 * 24  # users^ops * pick sequences
        assert report.honest_accepted == 2 ** 4  # one honest pick chain each

    def test_theorem_holds_with_owner_lies(self):
        report = model_check(n_users=2, n_ops=3, enumerate_owner_lies=True)
        assert report.theorem_holds, report.counterexamples
        assert report.behaviours == 2 ** 3 * 6 * 3 ** 3
        assert report.deviating_accepted == 0
        assert report.honest_rejected == 0

    def test_three_users(self):
        report = model_check(n_users=3, n_ops=3, enumerate_owner_lies=False)
        assert report.theorem_holds, report.counterexamples
        assert report.honest_accepted == 3 ** 3

    def test_checker_rediscovers_figure3(self):
        """Sanity for the checker itself -- and a lovely result: weaken
        the client to the paper's rejected first attempt (untagged XOR,
        with forked branches allowed to re-converge on equal content)
        and exhaustive search *rediscovers the Figure 3 attack*: a
        triple fork from one state by three distinct users, invisible to
        the registers.  Restore the tagging and the space is clean."""
        from repro.analysis import modelcheck
        from repro.crypto.hashing import hash_bytes, hash_state

        original_fresh = modelcheck._fresh_root
        original_tag = modelcheck.hash_tagged_state
        # content collisions: the state after op c is determined by c
        modelcheck._fresh_root = (
            lambda parent, op_index: hash_bytes(bytes([parent.ctr + 1])))
        try:
            modelcheck.hash_tagged_state = (
                lambda root, ctr, owner: hash_state(root, ctr))
            weakened = model_check(n_users=3, n_ops=3, enumerate_owner_lies=False)
            assert weakened.deviating_accepted > 0
            # the canonical counterexample: three users forked off genesis
            shapes = {c.picks for c in weakened.counterexamples}
            assert (0, 0, 0) in shapes

            modelcheck.hash_tagged_state = original_tag
            full = model_check(n_users=3, n_ops=3, enumerate_owner_lies=False)
            assert full.theorem_holds  # tagging closes the hole
        finally:
            modelcheck._fresh_root = original_fresh
            modelcheck.hash_tagged_state = original_tag


class TestProtocol1Exhaustive:
    def test_theorem41_holds(self):
        from repro.analysis.modelcheck import model_check_protocol1

        for n_users, n_ops in ((2, 4), (3, 4), (2, 5)):
            report = model_check_protocol1(n_users=n_users, n_ops=n_ops)
            assert report.theorem_holds, (n_users, n_ops, report.counterexamples)
            assert report.honest_accepted == n_users ** n_ops

    def test_fork_caught_by_count_check(self):
        from repro.analysis.modelcheck import run_behaviour_protocol1

        users = ("u0", "u1", "u0")
        picks = (0, 0, 1)  # u1 forked off genesis; u0 continues its branch
        result = run_behaviour_protocol1(users, picks, ("u0", "u1"))
        assert not result.honest
        assert not result.accepted

    def test_honest_chain_accepted(self):
        from repro.analysis.modelcheck import run_behaviour_protocol1

        result = run_behaviour_protocol1(("u0", "u1"), (0, 1), ("u0", "u1"))
        assert result.honest and result.accepted
