"""Self-tests for the observability subsystem: instrument math, span
nesting and exception safety, registry lifecycle, and the guarantee
that everything is a no-op while disabled."""

import json

import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.tracing import Tracer, _NOOP


class TestCounter:
    def test_disabled_is_noop(self):
        counter = obs.counter("t.disabled")
        counter.inc()
        counter.inc(5, user="a")
        assert counter.total() == 0
        assert counter.series() == {}
        assert obs.runtime.hook_fires == 0

    def test_labeled_series(self):
        obs.enable()
        counter = obs.counter("t.labeled")
        counter.inc(user="a")
        counter.inc(2, user="a")
        counter.inc(user="b")
        counter.inc(10)
        assert counter.value(user="a") == 3
        assert counter.value(user="b") == 1
        assert counter.value() == 10
        assert counter.total() == 14
        assert counter.series() == {"": 10, "user=a": 3, "user=b": 1}

    def test_label_order_is_irrelevant(self):
        obs.enable()
        counter = obs.counter("t.order")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2


class TestGauge:
    def test_last_write_wins(self):
        obs.enable()
        gauge = obs.gauge("t.gauge")
        gauge.set(3, phase="x")
        gauge.set(7, phase="x")
        assert gauge.value(phase="x") == 7
        assert gauge.value(phase="missing") is None

    def test_disabled_is_noop(self):
        gauge = obs.gauge("t.gauge_off")
        gauge.set(3)
        assert gauge.value() is None


class TestHistogram:
    def test_bucket_assignment_and_cumulation(self):
        obs.enable()
        hist = obs.histogram("t.buckets", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.0, 50.0, 500.0):
            hist.observe(value)
        # upper bounds are inclusive; cumulative Prometheus-style counts
        assert hist.bucket_counts() == {"1": 2, "10": 4, "100": 5, "+inf": 6}
        assert hist.count() == 6
        assert hist.sum() == pytest.approx(566.5)
        assert hist.mean() == pytest.approx(566.5 / 6)

    def test_min_max_are_exact(self):
        obs.enable()
        hist = obs.histogram("t.minmax", buckets=(10.0, 1000.0))
        hist.observe(3.0)
        hist.observe(700.0)
        summary = hist.series_summary()[""]
        assert summary["min"] == 3.0
        assert summary["max"] == 700.0

    def test_quantile_interpolates_within_bucket(self):
        obs.enable()
        hist = obs.histogram("t.quant", buckets=(0.0, 100.0))
        # 100 observations uniformly inside (0, 100]: the q-quantile
        # estimate is q * 100 by linear interpolation.
        for i in range(1, 101):
            hist.observe(float(i))
        assert hist.quantile(0.5) == pytest.approx(50.0)
        assert hist.quantile(0.25) == pytest.approx(25.0)

    def test_quantile_clamped_to_observed_range(self):
        obs.enable()
        hist = obs.histogram("t.clamp", buckets=(64.0, 16384.0))
        # few samples in one huge bucket: naive interpolation would put
        # p50 far above the largest value ever observed
        for value in (700.0, 800.0, 900.0):
            hist.observe(value)
        assert hist.quantile(0.5) <= 900.0
        assert hist.quantile(0.99) <= 900.0
        assert hist.quantile(0.0) >= 700.0

    def test_quantile_overflow_bucket_reports_max(self):
        obs.enable()
        hist = obs.histogram("t.overflow", buckets=(1.0,))
        hist.observe(123.0)
        assert hist.quantile(0.99) == 123.0

    def test_quantile_validation_and_empty(self):
        obs.enable()
        hist = obs.histogram("t.qv", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        assert hist.quantile(0.5) is None

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())

    def test_disabled_is_noop(self):
        hist = obs.histogram("t.hist_off", buckets=(1.0,))
        hist.observe(5.0)
        assert hist.count() == 0
        assert hist.series_summary() == {}


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = Registry()
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_reset_clears_in_place(self):
        """Modules hold direct instrument references; reset must zero
        those same objects, not orphan them."""
        obs.enable()
        registry = Registry()
        counter = registry.counter("x")
        counter.inc(5)
        registry.reset()
        assert registry.counter("x") is counter
        assert counter.total() == 0


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records()[0], tracer.records()[1]
        assert inner.name == "inner" and inner.parent == "outer" and inner.depth == 1
        assert outer.name == "outer" and outer.parent is None and outer.depth == 0
        assert inner.duration_ns >= 0
        assert tracer.depth() == 0

    def test_exception_recorded_and_not_swallowed(self):
        obs.enable()
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        record = tracer.records()[0]
        assert record.status == "error"
        assert record.error == "ValueError"
        assert tracer.depth() == 0  # stack unwound despite the exception
        assert tracer.aggregate()["failing"]["errors"] == 1

    def test_ring_eviction_preserves_aggregates(self):
        obs.enable()
        tracer = Tracer(capacity=4)
        for _ in range(10):
            with tracer.span("phase"):
                pass
        assert len(tracer.records()) == 4
        agg = tracer.aggregate()["phase"]
        assert agg["count"] == 10
        assert agg["total_ms"] >= agg["max_ms"]

    def test_disabled_returns_shared_noop(self):
        tracer = Tracer()
        span = tracer.span("anything")
        assert span is _NOOP
        with span:
            pass
        assert tracer.records() == []
        assert obs.runtime.hook_fires == 0

    def test_reset_clears_records_and_stacks(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.records() == []
        assert tracer.aggregate() == {}
        assert tracer.depth() == 0


class TestExport:
    def test_snapshot_and_renderers(self):
        obs.enable()
        obs.counter("t.snap_counter").inc(3, kind="read")
        obs.histogram("t.snap_hist", buckets=(1.0, 10.0)).observe(2.0)
        obs.gauge("t.snap_gauge").set(7)
        with obs.span("t.snap_phase"):
            pass
        snap = obs.snapshot()
        assert snap["counters"]["t.snap_counter"]["total"] == 3
        assert snap["gauges"]["t.snap_gauge"]["series"][""] == 7
        assert snap["histograms"]["t.snap_hist"]["series"][""]["count"] == 1
        assert snap["spans"]["t.snap_phase"]["count"] == 1

        text = obs.render_text(snap)
        assert "t.snap_counter" in text
        assert "span timings (per phase)" in text
        parsed = json.loads(obs.render_json(snap))
        assert parsed["counters"]["t.snap_counter"]["total"] == 3

    def test_empty_snapshot_renders_placeholder(self):
        snap = obs.snapshot(registry=Registry(), tracer=Tracer())
        assert "no observability data" in obs.render_text(snap)


class TestRuntime:
    def test_enable_disable_roundtrip(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()

    def test_reset_zeroes_hook_fires(self):
        obs.enable()
        obs.counter("t.fires").inc()
        assert obs.runtime.hook_fires > 0
        obs.reset()
        assert obs.runtime.hook_fires == 0


class TestForestObsLabels:
    """Forest-mode instrumentation: per-shard recompute labels and the
    server's dirty-shard histogram, and the guarantee that obs-report
    reconciliation still balances when the store is sharded."""

    def test_per_shard_recompute_labels(self):
        from repro.mtree.forest import MerkleForest
        from repro.obs.metrics import REGISTRY

        obs.reset()
        obs.enable()
        forest = MerkleForest(order=4, shards=4)
        for i in range(40):
            forest.insert(b"k%02d" % i, b"v")
        _root, recomputed = forest.refresh_root()
        counter = REGISTRY.counter("merkle.recompute")
        series = counter.series()
        # every touched shard reports under its own label, plus the top
        assert "shard=top" in series
        shard_labels = [label for label in series
                        if label.startswith("shard=") and label != "shard=top"]
        assert shard_labels, series
        # the labeled total is exactly the refresh pass's own count
        assert counter.total() == recomputed

    def test_dirty_shards_histogram_observed_by_server_core(self):
        from repro.mtree.database import WriteQuery
        from repro.net.core import ServerCore
        from repro.obs.metrics import REGISTRY
        from repro.protocols.base import Request

        obs.reset()
        obs.enable()
        core = ServerCore(order=4, shards=4)
        core.apply_batch([
            ("alice", Request(query=WriteQuery(b"k%02d" % i, b"v"),
                              extras={"user": "alice", "rid": f"r{i}"}))
            for i in range(12)])
        hist = REGISTRY.histogram("server.dirty_shards")
        assert hist.count() >= 1
        assert hist.sum() >= 1  # at least one dirty shard was seen

    def test_single_tree_reports_no_dirty_shards(self):
        from repro.mtree.database import WriteQuery
        from repro.net.core import ServerCore
        from repro.obs.metrics import REGISTRY
        from repro.protocols.base import Request

        obs.reset()
        obs.enable()
        core = ServerCore(order=4)
        core.apply_batch([
            ("alice", Request(query=WriteQuery(b"k", b"v"),
                              extras={"user": "alice", "rid": "r"}))])
        assert REGISTRY.histogram("server.dirty_shards").count() == 0

    @pytest.mark.parametrize("shards", [1, 4])
    def test_obs_report_reconciliation_balances_in_forest_mode(self, shards):
        from repro.analysis.metrics import obs_reconciliation
        from repro.core.scenarios import build_simulation
        from repro.simulation.workload import steady_workload

        obs.reset()
        obs.enable()
        try:
            workload = steady_workload(3, 4, spacing=6, keyspace=16,
                                       write_ratio=0.6, scan_ratio=0.1, seed=9)
            simulation = build_simulation("protocol2", workload, k=4,
                                          shards=shards, seed=9)
            report = simulation.execute()
            snap = obs.snapshot()
        finally:
            obs.disable()
        reconciliation = obs_reconciliation(report, snap)
        assert all(entry["ok"] for entry in reconciliation.values()), \
            reconciliation
        if shards > 1:
            series = snap["counters"]["merkle.recompute"]["series"]
            assert any(label.startswith("shard=") for label in series)
