"""Durable-write primitives: atomic_write's crash envelope and the
data-directory lock.

``atomic_write`` claims: after a crash at *any* point, the target file
holds either the complete old contents or the complete new contents --
never a mix, never a torn file.  The fault shim lets us assert that at
every announced crash point.
"""

import os

import pytest

from repro.storage.atomic import DirLock, LockError, atomic_write
from repro.storage.faults import FaultyIO, SimulatedCrash


class TestAtomicWrite:
    def test_plain_write_and_overwrite(self, tmp_path):
        path = str(tmp_path / "file.bin")
        atomic_write(path, b"first")
        assert open(path, "rb").read() == b"first"
        atomic_write(path, b"second")
        assert open(path, "rb").read() == b"second"
        assert not os.path.exists(path + ".tmp")

    @pytest.mark.parametrize("point", [
        "atomic:before-file-fsync",
        "atomic:before-rename",
        "atomic:between-rename-and-dirfsync",
        "atomic:after-dirfsync",
    ])
    def test_crash_anywhere_leaves_old_or_new_never_torn(
            self, tmp_path, point):
        path = str(tmp_path / "file.bin")
        atomic_write(path, b"OLD" * 100)

        io = FaultyIO(seed=11, crash_at={point: 1})
        # Make the old contents durable in the shim's model first.
        io._track(path)
        with pytest.raises(SimulatedCrash):
            atomic_write(path, b"NEW" * 100, io=io)
        io.simulate_crash()

        survivor = open(path, "rb").read()
        assert survivor in (b"OLD" * 100, b"NEW" * 100)
        if point == "atomic:after-dirfsync":
            # Every durability step completed before the crash.
            assert survivor == b"NEW" * 100
        if point in ("atomic:before-file-fsync", "atomic:before-rename"):
            # The rename never happened: the old file must survive.
            assert survivor == b"OLD" * 100

    def test_lying_fsync_crash_keeps_old_contents(self, tmp_path):
        """fsync lies, rename happens, crash: the directory entry was
        never durably updated, so the old contents come back."""
        path = str(tmp_path / "file.bin")
        atomic_write(path, b"OLD")
        io = FaultyIO(seed=2, lying_fsync="always")
        io._track(path)
        atomic_write(path, b"NEW", io=io)  # "succeeds"
        assert open(path, "rb").read() == b"NEW"  # visible pre-crash
        io.simulate_crash()
        assert open(path, "rb").read() == b"OLD"  # but not durable


class TestDirLock:
    def test_second_locker_rejected_with_owner(self, tmp_path):
        first = DirLock(str(tmp_path))
        assert first.held
        with pytest.raises(LockError, match="already locked"):
            DirLock(str(tmp_path))
        try:
            DirLock(str(tmp_path))
        except LockError as exc:
            assert f"pid {os.getpid()}" in str(exc)
        first.release()
        assert not first.held

    def test_release_allows_relock(self, tmp_path):
        first = DirLock(str(tmp_path))
        first.release()
        second = DirLock(str(tmp_path))
        assert second.held
        second.release()

    def test_server_store_lock_excludes_second_server(self, tmp_path):
        from repro.net.wal import open_server_store

        store = open_server_store(str(tmp_path), lock=True, fsync=False)
        with pytest.raises(LockError, match="share a WAL"):
            open_server_store(str(tmp_path), lock=True, fsync=False)
        store.close()
        # released on close: a restart can take the directory over
        again = open_server_store(str(tmp_path), lock=True, fsync=False)
        again.close()

    def test_paged_store_lock_excludes_second_server(self, tmp_path):
        from repro.net.wal import open_server_store

        store = open_server_store(str(tmp_path), backend="sqlite",
                                  lock=True, fsync=False)
        with pytest.raises(LockError):
            open_server_store(str(tmp_path), backend="sqlite",
                              lock=True, fsync=False)
        store.close()

    def test_unlocked_stores_do_not_conflict(self, tmp_path):
        """Default lock=False keeps in-process crash-restart tests (which
        abandon stores without closing them) working."""
        from repro.net.wal import ServerStore

        first = ServerStore(str(tmp_path), fsync=False)
        second = ServerStore(str(tmp_path), fsync=False)
        first.close()
        second.close()
