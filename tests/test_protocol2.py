"""Protocol II: register algebra unit tests plus full simulations
(Theorem 4.2's guarantees, without signatures or a PKI)."""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import FakeContext, run_scenario
from repro.crypto.hashing import Digest, hash_tagged_state, xor_all
from repro.mtree.database import ReadQuery, VerifiedDatabase, WriteQuery
from repro.protocols.base import DeviationDetected, Response, ServerState
from repro.protocols.protocol2 import (
    INITIAL_OWNER,
    Protocol2Client,
    Protocol2Server,
    initial_state_tag,
)
from repro.server.attacks import CounterReplayAttack, ForkAttack, TamperValueAttack
from repro.simulation.workload import partitionable_workload, sleepy_workload, steady_workload

USERS = ["alice", "bob", "carol"]


@pytest.fixture
def rig():
    state = ServerState(database=VerifiedDatabase(order=4))
    state.database.execute(WriteQuery(b"file", b"v0"))
    server = Protocol2Server()
    server.initialize(state)
    initial_root = state.database.root_digest()
    clients = {
        u: Protocol2Client(u, USERS, k=4, initial_root=initial_root, order=4)
        for u in USERS
    }
    return state, server, clients


def roundtrip(state, server, client, query, ctx=None):
    ctx = ctx or FakeContext()
    request = client.make_request(query)
    response = server.handle_request(client.user_id, request, state, ctx.round)
    return client.handle_response(query, response, ctx)


def sync_data(clients, subset=None):
    return {
        u: {"sigma": c.sigma, "last": c.last}
        for u, c in clients.items()
        if subset is None or u in subset
    }


class TestRegisters:
    def test_initial_registers(self, rig):
        _state, _server, clients = rig
        assert clients["alice"].sigma == Digest.zero()
        assert clients["alice"].last == Digest.zero()
        assert clients["alice"].gctr == 0

    def test_first_operation_consumes_initial_state(self, rig):
        state, server, clients = rig
        initial_root = state.database.root_digest()
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"))
        s0 = initial_state_tag(initial_root)
        s1 = hash_tagged_state(initial_root, 1, "alice")
        assert clients["alice"].sigma == s0 ^ s1
        assert clients["alice"].last == s1
        assert clients["alice"].gctr == 1

    def test_registers_telescope_over_serial_history(self, rig):
        state, server, clients = rig
        initial_root = state.database.root_digest()
        order = ["alice", "bob", "alice", "carol", "bob", "bob"]
        for index, user in enumerate(order):
            query = WriteQuery(b"file", f"v{index + 1}".encode())
            roundtrip(state, server, clients[user], query)
        total = xor_all(c.sigma for c in clients.values())
        s0 = initial_state_tag(initial_root)
        # bob performed the last operation
        assert total == s0 ^ clients["bob"].last

    def test_honest_sync_passes_for_last_operator(self, rig):
        state, server, clients = rig
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"x"))
        roundtrip(state, server, clients["bob"], ReadQuery(b"file"))
        data = sync_data(clients)
        assert clients["bob"]._evaluate_sync(data)
        assert not clients["alice"]._evaluate_sync(data)
        # carol never operated: she only passes on a pristine system
        assert not clients["carol"]._evaluate_sync(data)

    def test_pristine_system_sync_passes(self, rig):
        _state, _server, clients = rig
        data = sync_data(clients)
        for client in clients.values():
            assert client._evaluate_sync(data)

    def test_counter_regression_detected(self, rig):
        state, server, clients = rig
        roundtrip(state, server, clients["alice"], ReadQuery(b"file"))
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 3)
        rewound = Response(result=response.result,
                           extras={**response.extras, "ctr": 0, "last_user": INITIAL_OWNER})
        with pytest.raises(DeviationDetected, match="regressed"):
            clients["alice"].handle_response(ReadQuery(b"file"), rewound, FakeContext())

    def test_initial_state_owner_check(self, rig):
        state, server, clients = rig
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 1)
        lying = Response(result=response.result,
                         extras={**response.extras, "last_user": "mallory"})
        with pytest.raises(DeviationDetected, match="initial state"):
            clients["alice"].handle_response(ReadQuery(b"file"), lying, FakeContext())

    def test_malformed_response_detected(self, rig):
        state, server, clients = rig
        request = clients["alice"].make_request(ReadQuery(b"file"))
        response = server.handle_request("alice", request, state, 1)
        with pytest.raises(DeviationDetected, match="malformed"):
            clients["alice"].handle_response(ReadQuery(b"file"),
                                             Response(result=response.result, extras={}),
                                             FakeContext())

    def test_forked_registers_fail_sync(self, rig):
        """Serve bob from a stale clone; the union of registers is no
        longer a single path, so no user's predicate holds."""
        state, server, clients = rig
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"x"))
        stale = state.clone()
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"y"))
        roundtrip(stale, server, clients["bob"], WriteQuery(b"file", b"z"))
        data = sync_data(clients)
        assert not any(c._evaluate_sync(data) for c in clients.values())

    def test_wrong_owner_tag_breaks_chain(self, rig):
        """The server must attribute the current state to its true
        producer; lying about `j` desynchronises the registers."""
        state, server, clients = rig
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"x"))
        request = clients["bob"].make_request(ReadQuery(b"file"))
        response = server.handle_request("bob", request, state, 3)
        lying = Response(result=response.result,
                         extras={**response.extras, "last_user": "carol"})
        clients["bob"].handle_response(ReadQuery(b"file"), lying, FakeContext())
        data = sync_data(clients)
        assert not any(c._evaluate_sync(data) for c in clients.values())


class TestSyncChoreography:
    def test_wants_sync_after_k(self, rig):
        state, server, clients = rig
        for i in range(4):
            assert not clients["alice"].wants_sync()
            roundtrip(state, server, clients["alice"], ReadQuery(b"file"))
        assert clients["alice"].wants_sync()

    def test_announce_broadcasts_request_and_data(self, rig):
        _state, _server, clients = rig
        ctx = FakeContext()
        clients["alice"].announce_sync(ctx)
        kinds = [b["type"] for b in ctx.broadcasts]
        assert kinds[0] == "sync-request"
        assert "sync-data" in kinds

    def test_blocks_transactions_mid_sync(self, rig):
        _state, _server, clients = rig
        ctx = FakeContext()
        assert clients["alice"].may_start_transaction(ctx)
        clients["alice"].announce_sync(ctx)
        assert not clients["alice"].may_start_transaction(ctx)

    def test_deferred_data_when_pending(self, rig):
        state, server, clients = rig
        busy_ctx = FakeContext(pending=True)
        clients["bob"].handle_broadcast("alice", {"type": "sync-request", "tag": "alice#1"}, busy_ctx)
        assert not busy_ctx.broadcasts  # data deferred until txn completes
        # completing a transaction flushes the deferred broadcast
        idle_ctx = FakeContext()
        roundtrip(state, server, clients["bob"], ReadQuery(b"file"), idle_ctx)
        assert any(b["type"] == "sync-data" for b in idle_ctx.broadcasts)

    def test_full_sync_exchange_success(self, rig):
        state, server, clients = rig
        roundtrip(state, server, clients["alice"], WriteQuery(b"file", b"x"))
        contexts = {u: FakeContext() for u in USERS}
        clients["alice"].announce_sync(contexts["alice"])
        tag = contexts["alice"].broadcasts[0]["tag"]
        # deliver request to others; they respond with data
        for u in ("bob", "carol"):
            clients[u].handle_broadcast("alice", {"type": "sync-request", "tag": tag}, contexts[u])
        # exchange all data messages
        payloads = {u: {"type": "sync-data", "tag": tag,
                        "data": {"sigma": clients[u].sigma, "last": clients[u].last}}
                    for u in USERS}
        for receiver in USERS:
            for sender in USERS:
                if sender != receiver:
                    clients[receiver].handle_broadcast(sender, payloads[sender], contexts[receiver])
        # exchange verdicts: alice (last operator) says success
        verdicts = {}
        for u in USERS:
            for broadcast in contexts[u].broadcasts:
                if broadcast["type"] == "sync-verdict":
                    verdicts[u] = broadcast["success"]
        assert verdicts["alice"] is True
        assert verdicts["bob"] is False
        for receiver in USERS:
            for sender in USERS:
                if sender != receiver:
                    clients[receiver].handle_broadcast(
                        sender,
                        {"type": "sync-verdict", "tag": tag, "success": verdicts[sender]},
                        contexts[receiver],
                    )  # must not raise: one success suffices
        assert clients["alice"].ops_since_sync == 0


class TestSimulations:
    def test_honest_run_clean(self):
        report = run_scenario("protocol2", steady_workload(4, 10, seed=1), k=5, seed=1)
        assert not report.detected
        assert sum(report.operations_completed.values()) == 40

    def test_honest_sleepy_run_clean(self):
        report = run_scenario("protocol2", sleepy_workload(4, seed=2), k=5, seed=2)
        assert not report.detected

    def test_partition_attack_detected_within_k(self):
        for k in (2, 4, 8):
            workload = partitionable_workload(k=k, seed=3)
            attack = ForkAttack(victims=workload.metadata["group_b"],
                                fork_round=workload.metadata["fork_round"])
            report = run_scenario("protocol2", workload, attack=attack, k=k, seed=3)
            assert report.detected, k
            assert not report.false_alarm
            assert report.max_ops_after_deviation() <= k, k

    def test_counter_replay_detected_instantly(self):
        workload = steady_workload(3, 12, seed=4)
        attack = CounterReplayAttack(victim="user1", replay_round=25)
        report = run_scenario("protocol2", workload, attack=attack, k=50, seed=4)
        assert report.detected
        assert "user1" in report.alarms

    def test_tamper_detected(self):
        workload = steady_workload(3, 12, seed=5, write_ratio=0.4)
        attack = TamperValueAttack(victim="user0", tamper_round=15)
        report = run_scenario("protocol2", workload, attack=attack, k=50, seed=5)
        assert report.detected

    def test_no_blocking_message(self):
        """Protocol II responses need no follow-up: 2 messages per op
        (request + response), against Protocol I's 3."""
        workload = steady_workload(3, 8, seed=6)
        report2 = run_scenario("protocol2", workload, k=100, seed=6)
        report1 = run_scenario("protocol1", workload, k=100, seed=6)
        ops = sum(report2.operations_completed.values())
        assert report2.messages_sent == 2 * ops
        assert report1.messages_sent == 3 * ops


class TestTheorem42Algebra:
    """Property test of the register algebra itself: over random server
    behaviours, the sync predicate passes exactly for serial histories."""

    @staticmethod
    def _simulate_registers(n_users, ops, fork_at=None, seed=0):
        """Pure register simulation: a server executes ``ops`` user
        indices in order; optionally forks the last user off at op
        ``fork_at``.  Returns (sigmas, lasts, initial_tag)."""
        import random as _random
        from repro.crypto.hashing import Digest, hash_bytes, hash_tagged_state

        rng = _random.Random(seed)
        users = [f"u{i}" for i in range(n_users)]
        initial_root = hash_bytes(b"root0")
        s0 = initial_state_tag(initial_root)

        class Branch:
            def __init__(self):
                self.root = initial_root
                self.ctr = 0
                self.owner = ""

        main, fork = Branch(), None
        sigma = {u: Digest.zero() for u in users}
        last = {u: Digest.zero() for u in users}
        victim = users[-1]

        for index, user_index in enumerate(ops):
            user = users[user_index % n_users]
            if fork_at is not None and index == fork_at and fork is None:
                fork = Branch()
                fork.root, fork.ctr, fork.owner = main.root, main.ctr, main.owner
            branch = fork if (fork is not None and user == victim) else main
            old = hash_tagged_state(branch.root, branch.ctr, branch.owner)
            branch.root = hash_bytes(f"root-{id(branch) % 97}-{branch.ctr}-{rng.random()}".encode())
            branch.ctr += 1
            branch.owner = user
            new = hash_tagged_state(branch.root, branch.ctr, user)
            sigma[user] = sigma[user] ^ old ^ new
            last[user] = new
        return sigma, last, s0

    @settings(max_examples=80, deadline=None)
    @given(
        n_users=st.integers(2, 4),
        ops=st.lists(st.integers(0, 3), min_size=1, max_size=12),
    )
    def test_serial_histories_always_pass(self, n_users, ops):
        from repro.crypto.hashing import xor_all

        sigma, last, s0 = self._simulate_registers(n_users, ops)
        total = xor_all(sigma.values())
        assert any((s0 ^ l) == total for l in last.values() if l)

    @settings(max_examples=80, deadline=None)
    @given(
        n_users=st.integers(2, 4),
        ops=st.lists(st.integers(0, 3), min_size=4, max_size=12),
        fork_at=st.integers(1, 3),
    )
    def test_forked_histories_always_fail(self, n_users, ops, fork_at):
        """Whenever both branches actually execute operations after the
        fork, no candidate last can reconcile the registers."""
        from repro.crypto.hashing import xor_all

        victim_index = n_users - 1
        post = ops[fork_at:]
        victim_post = sum(1 for o in post if o % n_users == victim_index)
        others_post = sum(1 for o in post if o % n_users != victim_index)
        if victim_post == 0 or others_post == 0:
            return  # degenerate fork: one branch never used -> still serial
        sigma, last, s0 = self._simulate_registers(n_users, ops, fork_at=fork_at)
        total = xor_all(sigma.values())
        assert not any((s0 ^ l) == total for l in last.values() if l)
