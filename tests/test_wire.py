"""Tests for the binary wire codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import Digest, hash_bytes
from repro.crypto.signatures import Signer
from repro.mtree.database import (
    DeleteQuery,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.protocols.base import Followup, Request, Response
from repro.protocols.protocol3 import EpochDeposit
from repro.wire import WireError, decode, encode, wire_size


def roundtrip(value):
    data = encode(value)
    back = decode(data)
    assert back == value, (value, back)
    return data


class TestPrimitives:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -1, 2 ** 40, "", "héllo", b"", b"\x00\xff",
        0.0, -1.5, 0.3, 2.0 ** 80, float("inf"),
        Digest.zero(), hash_bytes(b"x"),
        (), (1, "two", b"three"), ((1, 2), (3,)),
        {}, {"a": 1, "b": None}, {1: "x", "y": (2, 3)},
    ])
    def test_roundtrip(self, value):
        roundtrip(value)

    def test_lists_normalise_to_tuples(self):
        assert decode(encode([1, 2])) == (1, 2)

    def test_dict_encoding_is_deterministic(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    @settings(max_examples=100, deadline=None)
    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-2**40, 2**40),
                  st.text(max_size=8), st.binary(max_size=8)),
        lambda children: st.lists(children, max_size=4).map(tuple),
        max_leaves=12,
    ))
    def test_roundtrip_property(self, value):
        roundtrip(value)

    def test_unknown_type_rejected(self):
        with pytest.raises(WireError):
            encode(object())

    def test_truncated_rejected(self):
        data = encode({"k": b"value"})
        with pytest.raises(WireError):
            decode(data[:-2])

    def test_trailing_rejected(self):
        with pytest.raises(WireError):
            decode(encode(1) + b"\x00")

    def test_garbage_tag_rejected(self):
        with pytest.raises(WireError):
            decode(b"\xfe")


class TestQueriesAndProofs:
    @pytest.fixture(scope="class")
    def db(self):
        database = VerifiedDatabase(order=4)
        for i in range(40):
            database.execute(WriteQuery(f"k{i:03d}".encode(), f"v{i}".encode()))
        return database

    def test_queries(self):
        for query in (ReadQuery(b"k"), RangeQuery(b"a", b"z"),
                      WriteQuery(b"k", b"v"), DeleteQuery(b"k")):
            roundtrip(query)

    def test_read_result(self, db):
        result = db.execute(ReadQuery(b"k005"))
        roundtrip(result)

    def test_absence_result(self, db):
        roundtrip(db.execute(ReadQuery(b"nope")))

    def test_range_result(self, db):
        roundtrip(db.execute(RangeQuery(b"k010", b"k020")))

    def test_update_results(self, db):
        roundtrip(db.execute(WriteQuery(b"k005", b"new")))
        roundtrip(db.execute(DeleteQuery(b"k006")))

    def test_decoded_proof_still_verifies(self, db):
        from repro.mtree.proofs import verify_read

        result = db.execute(ReadQuery(b"k010"))
        decoded = decode(encode(result))
        assert verify_read(db.root_digest(), decoded.proof, b"k010") == db.get(b"k010")


class TestProtocolEnvelopes:
    def test_request_response_followup(self):
        db = VerifiedDatabase(order=4)
        db.execute(WriteQuery(b"k", b"v"))
        result = db.execute(ReadQuery(b"k"))
        signer = Signer.generate("alice", bits=512, seed=33)
        signature = signer.sign(hash_bytes(b"state"))

        roundtrip(Request(query=ReadQuery(b"k"), extras={"fetch_epochs": (1, 2)}))
        roundtrip(Response(result=result,
                           extras={"ctr": 7, "last_user": "bob", "sig": signature}))
        roundtrip(Followup(extras={"sig": signature, "turn": 3}))

    def test_error_reply(self):
        from repro.protocols.base import ErrorReply

        roundtrip(ErrorReply(reason="server blocked awaiting a follow-up "
                                    "signature", extras={"timeout_s": 0.3}))
        roundtrip(ErrorReply())

    def test_epoch_deposit(self):
        signer = Signer.generate("u1", bits=512, seed=34)
        deposit = EpochDeposit(user_id="u1", epoch=4, sigma=hash_bytes(b"s"),
                               last=hash_bytes(b"l"),
                               signature=signer.sign(hash_bytes(b"d")))
        roundtrip(deposit)
        roundtrip(Response(result=None, extras={"epoch": 6,
                                                "deposits": {4: {"u1": deposit}}}))


class TestWireSize:
    def test_vo_bytes_are_logarithmic(self):
        sizes = {}
        for exponent in (6, 12):
            n = 2 ** exponent
            db = VerifiedDatabase(order=8)
            for i in range(n):
                db.execute(WriteQuery(f"{i:06d}".encode(), b"x" * 16))
            result = db.execute(ReadQuery(f"{n // 2:06d}".encode()))
            sizes[n] = wire_size(result)
        # 64x the data, far less than 64x the proof bytes
        assert sizes[2 ** 12] < sizes[2 ** 6] * 4

    def test_network_accounting(self):
        from repro.core.scenarios import build_simulation
        from repro.simulation.channels import Network
        from repro.simulation.workload import steady_workload

        workload = steady_workload(3, 6, seed=3)
        network = Network(user_ids=workload.user_ids, account_bytes=True)
        simulation = build_simulation("protocol2", workload, k=100, seed=3,
                                      network=network)
        report = simulation.execute()
        assert not report.detected
        assert network.bytes_sent > 0
        ops = sum(report.operations_completed.values())
        assert network.bytes_sent / ops > 100  # VOs dominate
