"""Tests for tree-aggregated synchronisation (future-work item 2)."""

import pytest

from helpers import run_scenario
from repro.core.scenarios import build_simulation
from repro.crypto.hashing import hash_bytes
from repro.protocols.aggregation import AggregatedProtocol2Client
from repro.server.attacks import ForkAttack
from repro.simulation.workload import partitionable_workload, steady_workload


def make_client(user_id: str, users: list[str]) -> AggregatedProtocol2Client:
    return AggregatedProtocol2Client(user_id, users, k=4,
                                     initial_root=hash_bytes(b"root"))


class TestTreeTopology:
    USERS = [f"u{i}" for i in range(7)]

    def test_root_has_no_parent(self):
        client = make_client("u0", self.USERS)
        assert client._parent() is None
        assert client._children() == ["u1", "u2"]

    def test_internal_node(self):
        client = make_client("u1", self.USERS)
        assert client._parent() == "u0"
        assert client._children() == ["u3", "u4"]

    def test_leaf(self):
        client = make_client("u5", self.USERS)
        assert client._parent() == "u2"
        assert client._children() == []

    def test_two_users(self):
        client = make_client("u1", ["u0", "u1"])
        assert client._parent() == "u0"
        assert client._children() == []

    def test_single_user_is_root_leaf(self):
        client = make_client("solo", ["solo"])
        assert client._parent() is None
        assert client._children() == []


class TestHonestSimulations:
    def test_honest_run_clean(self):
        report = run_scenario("protocol2agg", steady_workload(5, 10, seed=1), k=4, seed=1)
        assert not report.detected
        assert sum(report.operations_completed.values()) == 50

    @pytest.mark.parametrize("n_users", [1, 2, 3, 4, 7, 9])
    def test_various_tree_sizes(self, n_users):
        report = run_scenario("protocol2agg", steady_workload(n_users, 8, seed=2), k=3, seed=2)
        assert not report.detected, (n_users, report.alarms)
        assert sum(report.operations_completed.values()) == n_users * 8


class TestDetection:
    def test_partition_attack_detected(self):
        for k in (2, 6):
            workload = partitionable_workload(k=k, seed=3)
            attack = ForkAttack(victims=workload.metadata["group_b"],
                                fork_round=workload.metadata["fork_round"])
            report = run_scenario("protocol2agg", workload, attack=attack, k=k, seed=3)
            assert report.detected, k
            assert not report.false_alarm
            assert report.max_ops_after_deviation() <= k


class TestConstantWork:
    def test_per_user_sync_traffic_is_constant(self):
        """The headline: per-sync messages a user handles must not grow
        with n (flat Protocol II grows linearly)."""
        received = {}
        for n_users in (4, 16):
            workload = steady_workload(n_users, 6, spacing=6, seed=4)
            simulation = build_simulation("protocol2agg", workload, k=3, seed=4)
            report = simulation.execute()
            assert not report.detected
            syncs = max(1, report.broadcasts_sent // 3)  # request/total/outcome
            worst = max(u.client.sync_messages_received for u in simulation.users)
            received[n_users] = worst / syncs
        # 4x the users: per-sync per-user traffic stays within a small
        # constant envelope (3 broadcasts + <= 2 child data + <= 2 verdicts).
        assert received[16] <= received[4] + 4
        assert received[16] <= 12

    def test_flat_sync_traffic_grows_linearly(self):
        received = {}
        for n_users in (4, 16):
            workload = steady_workload(n_users, 6, spacing=6, seed=4)
            simulation = build_simulation("protocol2", workload, k=3, seed=4)
            report = simulation.execute()
            assert not report.detected
            # each flat sync delivers ~2n broadcasts to every user
            received[n_users] = report.broadcasts_sent
        assert received[16] > received[4] * 3
