"""Malicious-server strategies (the violations of paper Section 1).

Each attack realises one class of integrity/availability violation:

* :class:`ForkAttack` -- the partition attack of Figure 1 / Theorem
  3.1: after the fork round, one set of users is served from a cloned,
  frozen-then-divergent copy of the server state (multiple-user
  availability violation).
* :class:`DropCommitAttack` -- acknowledge a user's commit but hide it
  from everyone else (single-user availability violation): the
  committer is forked off onto a private branch.
* :class:`TamperValueAttack` -- return modified data, optionally with
  a re-forged verification object (single-user integrity violation).
* :class:`CounterReplayAttack` -- replay an old operation counter to
  the same user (the move Protocol II's step-4 check exists for).
* :class:`SignatureForgeAttack` -- hand back a fabricated state
  signature (Protocol I's unforgeability assumption under test).

Attacks see the protocol messages exactly as a real malicious server
would: they may clone whole server states (histories), choose which
state answers which user, and rewrite any field of a response.  They
record when they first actually deviate so benchmarks can measure
detection delay against ground truth.
"""

from __future__ import annotations



from repro.crypto.hashing import hash_leaf
from repro.crypto.signatures import Signature
from repro.mtree.database import QueryResult, ReadQuery
from repro.mtree.forest import ForestReadProof, shard_key
from repro.mtree.proofs import (
    InternalSnapshot,
    LeafSnapshot,
    ReadProof,
    implied_root_for_read,
    route_index,
)
from repro.protocols.base import Request, Response, ServerState


class Attack:
    """Base strategy: perfectly honest behaviour."""

    name = "honest"

    def __init__(self) -> None:
        self.first_deviation_round: int | None = None

    def _mark_deviation(self, round_no: int) -> None:
        if self.first_deviation_round is None:
            self.first_deviation_round = round_no

    def on_round(self, server, round_no: int) -> None:
        """Called once per round before the server processes messages."""

    def select_state(self, user_id: str, round_no: int, server) -> ServerState:
        """Which history this user is served from."""
        return server.states["main"]

    def mutate_response(
        self,
        user_id: str,
        request: Request,
        response: Response,
        state: ServerState,
        round_no: int,
    ) -> Response:
        """Last-minute rewriting of the outgoing response."""
        return response

    @staticmethod
    def _quiescent(server) -> bool:
        """Whether the main state can be forked cleanly right now.

        A smart adversary clones between transactions: cloning while a
        blocking protocol awaits a client follow-up would leave the
        clone waiting for a message that will never be routed to it,
        stalling the branch and exposing the attack as a trivial
        availability failure instead of a stealthy fork.
        """
        return not server.protocol.blocked(server.states["main"])


class HonestBehavior(Attack):
    """Explicit control condition for the attack gallery."""


class ForkAttack(Attack):
    """Serve ``victims`` from a clone frozen at ``fork_round`` (Figure 1).

    Both branches keep evolving with their own users' operations; the
    branches' users simply never see each other again -- exactly the
    partition of Section 3.1.
    """

    name = "fork"

    def __init__(self, victims: list[str], fork_round: int) -> None:
        super().__init__()
        self.victims = set(victims)
        self.fork_round = fork_round

    def on_round(self, server, round_no: int) -> None:
        if round_no >= self.fork_round and "fork" not in server.states and self._quiescent(server):
            server.states["fork"] = server.states["main"].clone()

    def select_state(self, user_id: str, round_no: int, server) -> ServerState:
        # Lazy fork: under a blocking protocol the quiescent windows the
        # per-round hook sees can be scarce; a victim request being
        # served is itself such a window (the head-of-line check already
        # established the state is not awaiting a follow-up).
        if (
            "fork" not in server.states
            and round_no >= self.fork_round
            and user_id in self.victims
            and self._quiescent(server)
        ):
            server.states["fork"] = server.states["main"].clone()
        if "fork" in server.states and user_id in self.victims:
            return server.states["fork"]
        return server.states["main"]


class DropCommitAttack(Attack):
    """Acknowledge the victim's next update after ``drop_round`` but hide
    it from all other users.

    Implemented by forking the victim onto a private branch right
    before that update executes; the main branch never receives it.
    """

    name = "drop-commit"

    def __init__(self, victim: str, drop_round: int) -> None:
        super().__init__()
        self.victim = victim
        self.drop_round = drop_round
        self._branched = False

    def select_state(self, user_id: str, round_no: int, server) -> ServerState:
        if (
            user_id == self.victim
            and round_no >= self.drop_round
            and not self._branched
            and self._quiescent(server)
        ):
            server.states["victim"] = server.states["main"].clone()
            self._branched = True
        if self._branched and user_id == self.victim:
            return server.states["victim"]
        return server.states["main"]


class TamperValueAttack(Attack):
    """Corrupt the answer to the victim's reads from ``tamper_round`` on.

    With ``forge_proof=False`` the VO still covers the true value, so
    the answer/proof mismatch is caught instantly.  With
    ``forge_proof=True`` the server also rebuilds the read proof around
    the corrupted value -- internally consistent, but the implied root
    digest no longer matches any signed/accumulated state.
    """

    name = "tamper-value"

    def __init__(self, victim: str, tamper_round: int, forge_proof: bool = False) -> None:
        super().__init__()
        self.victim = victim
        self.tamper_round = tamper_round
        self.forge_proof = forge_proof

    def mutate_response(self, user_id, request, response, state, round_no):
        if user_id != self.victim or round_no < self.tamper_round:
            return response
        if not isinstance(request.query, ReadQuery):
            return response
        if response.result.answer is None:
            return response
        self._mark_deviation(round_no)
        corrupted = b"/* backdoored */ " + bytes(response.result.answer)
        proof = response.result.proof
        if self.forge_proof and isinstance(proof, ReadProof):
            proof = self._forge_read_proof(proof, request.query.key, corrupted)
        elif self.forge_proof and isinstance(proof, ForestReadProof):
            # Two-level forgery: rebuild the shard proof around the
            # corrupted value, then rebuild the top proof around the
            # shard root the forged shard proof now implies.  Fully
            # internally consistent -- only the final top root betrays it.
            forged_inner = self._forge_read_proof(
                proof.inner, request.query.key, corrupted)
            shard_root = implied_root_for_read(forged_inner, request.query.key)
            forged_top = self._forge_read_proof(
                proof.top, shard_key(proof.shard), shard_root.to_bytes())
            proof = ForestReadProof(shard=proof.shard, inner=forged_inner,
                                    top=forged_top)
        return Response(
            result=QueryResult(answer=corrupted, proof=proof),
            extras=response.extras,
        )

    @staticmethod
    def _forge_read_proof(proof: ReadProof, key: bytes, value: bytes) -> ReadProof:
        """Rebuild a read proof around ``value``, re-chaining the path
        digests so every internal link checks out -- the forgery is only
        exposed when the implied root meets the trusted one."""
        position = proof.leaf.keys.index(key)
        entry_digests = list(proof.leaf.entry_digests)
        entry_digests[position] = hash_leaf(key, value)
        forged_leaf = LeafSnapshot(keys=proof.leaf.keys,
                                   entry_digests=tuple(entry_digests))
        digest = forged_leaf.digest()
        forged_internals = []
        for snapshot in reversed(proof.internals):
            index = route_index(snapshot.keys, key)
            child_digests = list(snapshot.child_digests)
            child_digests[index] = digest
            patched = InternalSnapshot(keys=snapshot.keys,
                                       child_digests=tuple(child_digests))
            forged_internals.append(patched)
            digest = patched.digest()
        forged_internals.reverse()
        return ReadProof(key=proof.key, value=value,
                         internals=tuple(forged_internals), leaf=forged_leaf)


class CounterReplayAttack(Attack):
    """Replay a previously used operation counter to the same victim.

    This is the precise move the per-user regression check (Protocol II
    step 4) exists to stop: the same user validating two transitions
    out of the same counter value would break Lemma 4.1's in-degree
    argument.
    """

    name = "counter-replay"

    def __init__(self, victim: str, replay_round: int) -> None:
        super().__init__()
        self.victim = victim
        self.replay_round = replay_round
        self._seen_ctr: int | None = None

    def mutate_response(self, user_id, request, response, state, round_no):
        if user_id != self.victim or "ctr" not in response.extras:
            return response
        if round_no < self.replay_round:
            self._seen_ctr = response.extras["ctr"]
            return response
        if self._seen_ctr is None:
            self._seen_ctr = response.extras["ctr"]
            return response
        self._mark_deviation(round_no)
        extras = dict(response.extras)
        extras["ctr"] = self._seen_ctr
        return Response(result=response.result, extras=extras)


class SignatureForgeAttack(Attack):
    """Replace the stored state signature with server-fabricated bytes.

    Protocol I's Theorem 4.1 rests on the server being unable to forge
    ``sign_j``; this attack tries anyway and must be caught on the very
    next verification.
    """

    name = "signature-forge"

    def __init__(self, forge_round: int) -> None:
        super().__init__()
        self.forge_round = forge_round

    def mutate_response(self, user_id, request, response, state, round_no):
        signature = response.extras.get("sig")
        if round_no < self.forge_round or not isinstance(signature, Signature):
            return response
        self._mark_deviation(round_no)
        extras = dict(response.extras)
        extras["sig"] = Signature(
            signer_id=signature.signer_id,
            digest=signature.digest,
            raw=bytes(len(signature.raw)),  # all-zero forgery
        )
        return Response(result=response.result, extras=extras)


class StaleRootReplayAttack(Attack):
    """Answer the victim's operations from a snapshot frozen at
    ``freeze_round`` -- the out-of-date signed root digest scenario the
    Protocol I discussion warns about (Section 4.2).

    Unlike :class:`ForkAttack`, the frozen branch also *swallows* the
    victim's updates (they apply only to the snapshot), so the victim
    keeps seeing an internally consistent but dead-ended history.
    """

    name = "stale-root-replay"

    def __init__(self, victim: str, freeze_round: int) -> None:
        super().__init__()
        self.victim = victim
        self.freeze_round = freeze_round

    def on_round(self, server, round_no: int) -> None:
        if round_no >= self.freeze_round and "stale" not in server.states and self._quiescent(server):
            server.states["stale"] = server.states["main"].clone()

    def select_state(self, user_id: str, round_no: int, server) -> ServerState:
        if user_id == self.victim and "stale" in server.states:
            return server.states["stale"]
        return server.states["main"]


class CompositeAttack(Attack):
    """Several strategies at once: a thorough adversary.

    State selection takes the first non-main choice any sub-attack
    makes; response mutations apply in order.  Deviation onset is the
    earliest any component reports.
    """

    name = "composite"

    def __init__(self, attacks: list[Attack]) -> None:
        super().__init__()
        if not attacks:
            raise ValueError("composite attack needs at least one component")
        self.attacks = list(attacks)

    @property
    def first_deviation_round(self) -> int | None:
        rounds = [a.first_deviation_round for a in self.attacks
                  if a.first_deviation_round is not None]
        if self._own_deviation_round is not None:
            rounds.append(self._own_deviation_round)
        return min(rounds) if rounds else None

    @first_deviation_round.setter
    def first_deviation_round(self, value: int | None) -> None:
        self._own_deviation_round = value

    def on_round(self, server, round_no: int) -> None:
        for attack in self.attacks:
            attack.on_round(server, round_no)

    def select_state(self, user_id: str, round_no: int, server) -> ServerState:
        for attack in self.attacks:
            state = attack.select_state(user_id, round_no, server)
            if state is not server.states["main"]:
                return state
        return server.states["main"]

    def mutate_response(self, user_id, request, response, state, round_no):
        for attack in self.attacks:
            response = attack.mutate_response(user_id, request, response, state, round_no)
        return response


class RandomizedAttackSchedule(Attack):
    """A seeded adversary that picks one strategy and a trigger round at
    random -- the fuzzing driver for soundness campaigns."""

    name = "randomized"

    def __init__(self, user_ids: list[str], horizon: int, seed: int) -> None:
        super().__init__()
        import random as _random

        rng = _random.Random(seed)
        victim = rng.choice(sorted(user_ids))
        other = rng.choice([u for u in sorted(user_ids) if u != victim] or [victim])
        trigger = rng.randrange(max(2, horizon // 5), max(3, (3 * horizon) // 4))
        factories = [
            lambda: ForkAttack(victims=[victim], fork_round=trigger),
            lambda: ForkAttack(victims=[victim, other], fork_round=trigger),
            lambda: DropCommitAttack(victim=victim, drop_round=trigger),
            lambda: StaleRootReplayAttack(victim=victim, freeze_round=trigger),
            lambda: TamperValueAttack(victim=victim, tamper_round=trigger),
            lambda: TamperValueAttack(victim=victim, tamper_round=trigger, forge_proof=True),
            lambda: CounterReplayAttack(victim=victim, replay_round=trigger),
            lambda: CompositeAttack([
                ForkAttack(victims=[victim], fork_round=trigger),
                TamperValueAttack(victim=other, tamper_round=trigger + 5),
            ]),
        ]
        self.inner = rng.choice(factories)()
        self.chosen = f"{self.inner.name}@{trigger} vs {victim}"

    @property
    def first_deviation_round(self) -> int | None:
        return self.inner.first_deviation_round

    @first_deviation_round.setter
    def first_deviation_round(self, value: int | None) -> None:
        pass  # delegated entirely to the inner attack

    def on_round(self, server, round_no: int) -> None:
        self.inner.on_round(server, round_no)

    def select_state(self, user_id: str, round_no: int, server) -> ServerState:
        return self.inner.select_state(user_id, round_no, server)

    def mutate_response(self, user_id, request, response, state, round_no):
        return self.inner.mutate_response(user_id, request, response, state, round_no)


ALL_ATTACKS = [
    HonestBehavior,
    ForkAttack,
    DropCommitAttack,
    TamperValueAttack,
    CounterReplayAttack,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    CompositeAttack,
    RandomizedAttackSchedule,
]
