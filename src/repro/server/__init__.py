"""Server-side machinery: the agent lives in
:mod:`repro.simulation.agents`; this package contributes the attack
strategies a compromised server can mount.
"""

from repro.server.attacks import (
    ALL_ATTACKS,
    Attack,
    CompositeAttack,
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    HonestBehavior,
    RandomizedAttackSchedule,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)

__all__ = [
    "ALL_ATTACKS",
    "Attack",
    "CompositeAttack",
    "CounterReplayAttack",
    "DropCommitAttack",
    "ForkAttack",
    "HonestBehavior",
    "RandomizedAttackSchedule",
    "SignatureForgeAttack",
    "StaleRootReplayAttack",
    "TamperValueAttack",
]
