"""High-level signing API used by the protocols.

The protocols write ``sign_i(x)`` for "user *i* signs message *x*".
This module provides that notation: a :class:`Signer` owns a private
key; a :class:`Signature` is a self-describing value carrying the
signer's identity, which a verifier checks against a key directory
(see :mod:`repro.crypto.pki`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto import rsa
from repro.crypto.hashing import Digest
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry

_SIGN_MS = _registry.histogram(
    "crypto.sign_ms", "wall time of one RSA signing operation")
_VERIFY_MS = _registry.histogram(
    "crypto.verify_ms", "wall time of one signature verification")
_VERIFY_REJECTS = _registry.counter(
    "crypto.verify_rejects", "signature verifications that failed")


@dataclass(frozen=True)
class Signature:
    """A digest signed by a named principal."""

    signer_id: str
    digest: Digest
    raw: bytes

    def __repr__(self) -> str:
        return f"Signature(by={self.signer_id!r}, digest={self.digest.short()}…)"


class Signer:
    """A signing principal: wraps a private key with an identity."""

    def __init__(self, signer_id: str, private_key: rsa.PrivateKey) -> None:
        self._signer_id = signer_id
        self._private_key = private_key

    @classmethod
    def generate(cls, signer_id: str, bits: int = rsa.DEFAULT_KEY_BITS, seed: int | None = None) -> "Signer":
        """Create a signer with a freshly generated keypair."""
        return cls(signer_id, rsa.generate_keypair(bits=bits, seed=seed))

    @property
    def signer_id(self) -> str:
        return self._signer_id

    @property
    def public_key(self) -> rsa.PublicKey:
        return self._private_key.public

    def sign(self, digest: Digest) -> Signature:
        """Produce ``sign_i(digest)``."""
        if not _obs.enabled:
            raw = rsa.sign_digest(self._private_key, digest)
        else:
            started = time.perf_counter_ns()
            raw = rsa.sign_digest(self._private_key, digest)
            _SIGN_MS.observe((time.perf_counter_ns() - started) / 1e6)
        return Signature(signer_id=self._signer_id, digest=digest, raw=raw)


class Verifier:
    """Checks signatures against a directory of public keys."""

    def __init__(self, directory: dict[str, rsa.PublicKey] | None = None) -> None:
        self._directory: dict[str, rsa.PublicKey] = dict(directory or {})

    def register(self, signer_id: str, key: rsa.PublicKey) -> None:
        """Add (or replace) a principal's public key."""
        self._directory[signer_id] = key

    def knows(self, signer_id: str) -> bool:
        return signer_id in self._directory

    def directory(self) -> dict[str, rsa.PublicKey]:
        """A copy of the key directory (for evidence bundles: a bundle
        must carry the public keys it was verified against, so a third
        party can re-run the check offline)."""
        return dict(self._directory)

    def verify(self, signature: Signature, expected_digest: Digest) -> bool:
        """True iff ``signature`` is a valid signature of ``expected_digest``
        by the principal it claims to come from.

        A signature over a *different* digest -- e.g. a stale root hash
        replayed by the server -- fails here because the digest the
        client independently recomputed does not match.
        """
        if not _obs.enabled:
            return self._verify(signature, expected_digest)
        started = time.perf_counter_ns()
        accepted = self._verify(signature, expected_digest)
        _VERIFY_MS.observe((time.perf_counter_ns() - started) / 1e6)
        if not accepted:
            _VERIFY_REJECTS.inc(signer=signature.signer_id)
        return accepted

    def _verify(self, signature: Signature, expected_digest: Digest) -> bool:
        key = self._directory.get(signature.signer_id)
        if key is None:
            return False
        if signature.digest != expected_digest:
            return False
        return rsa.verify_digest(key, expected_digest, signature.raw)
