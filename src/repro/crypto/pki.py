"""A minimal public key infrastructure (certificates + revocation).

The paper points at RFC 2459 for its PKI assumption.  We provide the
slice the protocols need: a certificate authority that binds user
identities to public keys with its own signature, certificate
verification, and a revocation list.  Protocol I clients bootstrap
their :class:`~repro.crypto.signatures.Verifier` directory from
certificates rather than trusting the server to hand out keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import rsa
from repro.crypto.hashing import Digest, hash_bytes
from repro.crypto.signatures import Signature, Signer, Verifier


class CertificateError(Exception):
    """Raised when a certificate is invalid, unknown, or revoked."""


@dataclass(frozen=True)
class Certificate:
    """A CA-signed binding of ``subject_id`` to a public key."""

    subject_id: str
    public_key: rsa.PublicKey
    serial: int
    issuer_id: str
    signature: Signature

    def tbs_digest(self) -> Digest:
        """Digest of the to-be-signed portion of the certificate."""
        return _tbs_digest(self.subject_id, self.public_key, self.serial, self.issuer_id)


def _tbs_digest(subject_id: str, public_key: rsa.PublicKey, serial: int, issuer_id: str) -> Digest:
    encoded = b"|".join(
        [
            subject_id.encode("utf-8"),
            public_key.modulus.to_bytes(public_key.byte_length, "big"),
            public_key.exponent.to_bytes(8, "big"),
            serial.to_bytes(8, "big"),
            issuer_id.encode("utf-8"),
        ]
    )
    return hash_bytes(encoded)


class CertificateAuthority:
    """Issues and revokes certificates; the root of trust for Protocol I."""

    def __init__(self, ca_id: str = "ca", bits: int = rsa.DEFAULT_KEY_BITS, seed: int | None = None) -> None:
        self._signer = Signer.generate(ca_id, bits=bits, seed=seed)
        self._next_serial = 1
        self._issued: dict[int, Certificate] = {}
        self._revoked: set[int] = set()

    @property
    def ca_id(self) -> str:
        return self._signer.signer_id

    @property
    def public_key(self) -> rsa.PublicKey:
        return self._signer.public_key

    def issue(self, subject_id: str, public_key: rsa.PublicKey) -> Certificate:
        """Issue a certificate binding ``subject_id`` to ``public_key``."""
        serial = self._next_serial
        self._next_serial += 1
        digest = _tbs_digest(subject_id, public_key, serial, self.ca_id)
        certificate = Certificate(
            subject_id=subject_id,
            public_key=public_key,
            serial=serial,
            issuer_id=self.ca_id,
            signature=self._signer.sign(digest),
        )
        self._issued[serial] = certificate
        return certificate

    def revoke(self, serial: int) -> None:
        """Add a certificate to the revocation list."""
        if serial not in self._issued:
            raise CertificateError(f"unknown certificate serial {serial}")
        self._revoked.add(serial)

    def revocation_list(self) -> frozenset[int]:
        """The current set of revoked serial numbers."""
        return frozenset(self._revoked)


def verify_certificate(
    certificate: Certificate,
    ca_public_key: rsa.PublicKey,
    revoked: frozenset[int] = frozenset(),
) -> None:
    """Validate a certificate chain of depth one.

    Raises :class:`CertificateError` if the CA signature does not check
    out or the certificate has been revoked.
    """
    if certificate.serial in revoked:
        raise CertificateError(f"certificate {certificate.serial} for {certificate.subject_id!r} is revoked")
    verifier = Verifier({certificate.issuer_id: ca_public_key})
    if not verifier.verify(certificate.signature, certificate.tbs_digest()):
        raise CertificateError(f"certificate {certificate.serial} for {certificate.subject_id!r} has a bad CA signature")


def build_verifier(
    certificates: list[Certificate],
    ca_public_key: rsa.PublicKey,
    revoked: frozenset[int] = frozenset(),
) -> Verifier:
    """Build a :class:`Verifier` directory from validated certificates.

    This is how Protocol I clients learn each other's keys without
    trusting the server: every certificate is checked against the CA
    before its key enters the directory.
    """
    verifier = Verifier()
    for certificate in certificates:
        verify_certificate(certificate, ca_public_key, revoked)
        verifier.register(certificate.subject_id, certificate.public_key)
    return verifier
