"""Collision-intractable hashing with domain separation.

The paper (Section 4.1) assumes a collision intractable hash function
``h`` used in three distinct roles:

* hashing data values stored in Merkle-tree leaves,
* hashing the concatenation of child digests in internal nodes,
* hashing database *states* ``h(M(D) || ctr)`` and *tagged states*
  ``h(M(D) || ctr || user)`` in Protocols I--III.

We instantiate ``h`` with SHA-256 and prefix every invocation with a
domain tag so that a digest produced in one role can never collide with
a digest produced in another role.  Digests are wrapped in a small
value type, :class:`Digest`, that supports the XOR algebra Protocol II
builds its synchronisation check on.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

DIGEST_SIZE = 32
_DIGEST_BITS = DIGEST_SIZE * 8

# Bound on the tagged/plain state-hash memo tables.  Protocols re-derive
# the same ``h(M(D) || ctr [|| user])`` values constantly (every client
# recomputes the tags the whole system has produced), so a bounded LRU
# turns those re-derivations into dictionary hits.
_STATE_CACHE_SIZE = 1 << 16

# Domain-separation tags.  Each role gets a unique single-byte prefix.
_DOMAIN_LEAF = b"\x00leaf"
_DOMAIN_NODE = b"\x01node"
_DOMAIN_STATE = b"\x02state"
_DOMAIN_TAGGED_STATE = b"\x03tagged-state"
_DOMAIN_RAW = b"\x04raw"
_DOMAIN_EPOCH = b"\x05epoch"
_DOMAIN_LEAF_NODE = b"\x06leaf-node"
_DOMAIN_EMPTY_LEAF = b"\x07empty-leaf"
_DOMAIN_INTERNAL_NODE = b"\x08internal-node"

# Field separator used when hashing a concatenation ``x || y || z``.
# A length-prefixed encoding makes the concatenation injective, so the
# classic ambiguity (``"ab" || "c"`` vs ``"a" || "bc"``) cannot be used
# to forge colliding pre-images.
_SEPARATOR = b"\xff"


class Digest:
    """An immutable 32-byte digest supporting XOR.

    Protocol II maintains per-user registers that accumulate the XOR of
    all database states a user has seen.  ``Digest`` therefore forms an
    abelian group under ``^`` with :meth:`zero` as the identity and
    every element being its own inverse.
    """

    __slots__ = ("_value", "_int")

    def __init__(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"digest value must be bytes, got {type(value).__name__}")
        if len(value) != DIGEST_SIZE:
            raise ValueError(f"digest must be {DIGEST_SIZE} bytes, got {len(value)}")
        self._value = bytes(value)
        self._int = int.from_bytes(self._value, "big")

    @classmethod
    def _from_int(cls, number: int) -> "Digest":
        """Fast internal constructor from a 256-bit accumulator."""
        digest = object.__new__(cls)
        digest._value = number.to_bytes(DIGEST_SIZE, "big")
        digest._int = number
        return digest

    @classmethod
    def _from_hash(cls, value: bytes) -> "Digest":
        """Fast internal constructor for trusted 32-byte hasher output
        (skips the public constructor's type/length validation and
        defensive copy)."""
        digest = object.__new__(cls)
        digest._value = value
        digest._int = int.from_bytes(value, "big")
        return digest

    @classmethod
    def zero(cls) -> "Digest":
        """The XOR identity: the all-zero digest."""
        return cls._from_int(0)

    @property
    def value(self) -> bytes:
        """The raw 32 bytes of the digest."""
        return self._value

    def as_int(self) -> int:
        """The digest as a 256-bit big-endian integer (XOR fast path)."""
        return self._int

    def __xor__(self, other: "Digest") -> "Digest":
        if not isinstance(other, Digest):
            return NotImplemented
        return Digest._from_int(self._int ^ other._int)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digest):
            return NotImplemented
        return self._int == other._int

    def __hash__(self) -> int:
        return hash(self._int)

    def __bool__(self) -> bool:
        """A digest is falsy only when it is the zero digest."""
        return self._int != 0

    def hex(self) -> str:
        """Hex encoding of the digest, for display and logs."""
        return self._value.hex()

    def short(self) -> str:
        """First 8 hex characters, convenient for compact traces."""
        return self._value.hex()[:8]

    def __repr__(self) -> str:
        return f"Digest({self.short()}…)"

    def to_bytes(self) -> bytes:
        return self._value

    @classmethod
    def from_hex(cls, text: str) -> "Digest":
        """Parse a digest from its :meth:`hex` encoding."""
        return cls(bytes.fromhex(text))


# Precomputed ``len || separator`` prefixes for the common short-field
# case (keys, 32-byte digests, small values): the VO hot path calls
# ``_hash`` for every node on an update's root-to-leaf path, and a
# fresh ``int.to_bytes`` + concat per field is pure overhead there.
_LEN_PREFIX = tuple(n.to_bytes(8, "big") + _SEPARATOR for n in range(513))


def _encode_fields(fields: tuple[bytes, ...]) -> bytes:
    """Length-prefixed, injective encoding of a field tuple."""
    prefixes = _LEN_PREFIX
    parts = []
    append = parts.append
    for field in fields:
        size = len(field)
        append(prefixes[size] if size < 513
               else size.to_bytes(8, "big") + _SEPARATOR)
        append(field)
    return b"".join(parts)


def _hash(domain: bytes, *fields: bytes) -> Digest:
    # Stream straight into the hasher -- byte-for-byte the same input
    # as hashing ``domain || _encode_fields(fields)``, without building
    # the intermediate list and joined copy.
    hasher = hashlib.sha256(domain)
    update = hasher.update
    prefixes = _LEN_PREFIX
    for field in fields:
        size = len(field)
        update(prefixes[size] if size < 513
               else size.to_bytes(8, "big") + _SEPARATOR)
        update(field)
    return Digest._from_hash(hasher.digest())


def hash_bytes(data: bytes) -> Digest:
    """Hash raw application data (no structural role)."""
    return _hash(_DOMAIN_RAW, data)


def hash_leaf(key: bytes, value: bytes) -> Digest:
    """Digest of a Merkle-tree leaf entry for ``key`` holding ``value``."""
    return _hash(_DOMAIN_LEAF, key, value)


def hash_node(child_digests: list[Digest]) -> Digest:
    """Digest of an internal Merkle node from its children's digests.

    This is the paper's ``h(d_1 || d_2 || ... || d_m)`` with an injective
    encoding, so the same multiset of children in a different arity
    cannot collide.
    """
    if not child_digests:
        raise ValueError("internal node must have at least one child")
    return _hash(_DOMAIN_NODE, *[d.value for d in child_digests])


def hash_leaf_node(entry_digests: list[Digest]) -> Digest:
    """Digest of a Merkle B+-tree *leaf node* from its entry digests.

    An empty leaf (the root of an empty tree) gets a fixed
    domain-separated digest so that "empty database" is itself a
    committed state.
    """
    if not entry_digests:
        return _hash(_DOMAIN_EMPTY_LEAF)
    return _hash(_DOMAIN_LEAF_NODE, *[d.value for d in entry_digests])


def hash_internal_node(separator_keys: list[bytes], child_digests: list[Digest]) -> Digest:
    """Digest of an internal Merkle B+-tree node.

    Commits to both the separator keys and the child digests; the keys
    must be committed so that update proofs can check search-order
    invariants against material the root digest vouches for.
    """
    if not child_digests:
        raise ValueError("internal node must have at least one child")
    if len(separator_keys) != len(child_digests) - 1:
        raise ValueError("internal node must have exactly (children - 1) separator keys")
    key_count = len(separator_keys).to_bytes(8, "big")
    fields = [key_count, *separator_keys, *[d.value for d in child_digests]]
    return _hash(_DOMAIN_INTERNAL_NODE, *fields)


@lru_cache(maxsize=_STATE_CACHE_SIZE)
def _hash_state_cached(root_digest: Digest, ctr: int) -> Digest:
    return _hash(_DOMAIN_STATE, root_digest.value, ctr.to_bytes(8, "big"))


def hash_state(root_digest: Digest, ctr: int) -> Digest:
    """The paper's state identifier ``h(M(D) || ctr)`` (Protocol I)."""
    if ctr < 0:
        raise ValueError("counter must be non-negative")
    return _hash_state_cached(root_digest, ctr)


@lru_cache(maxsize=_STATE_CACHE_SIZE)
def _hash_tagged_state_cached(root_digest: Digest, ctr: int, user_id: str) -> Digest:
    return _hash(
        _DOMAIN_TAGGED_STATE,
        root_digest.value,
        ctr.to_bytes(8, "big"),
        user_id.encode("utf-8"),
    )


def hash_tagged_state(root_digest: Digest, ctr: int, user_id: str) -> Digest:
    """Protocol II's tagged state ``h(M(D) || ctr || user)``.

    Tagging the state with the user that validated the transition into
    it is what forces in-degree <= 1 in the seen-state graph
    (Lemma 4.1 / property P2), defeating the Figure 3 replay.

    Every client in the system re-derives the same tag sequence, so the
    result is memoised in a bounded LRU (the tag is a pure function of
    its arguments).
    """
    if ctr < 0:
        raise ValueError("counter must be non-negative")
    return _hash_tagged_state_cached(root_digest, ctr, user_id)


def hash_epoch_snapshot(sigma: Digest, last: Digest, epoch: int, user_id: str) -> Digest:
    """Digest of a user's (sigma, last) snapshot deposited in Protocol III."""
    if epoch < 0:
        raise ValueError("epoch must be non-negative")
    return _hash(
        _DOMAIN_EPOCH,
        sigma.value,
        last.value,
        epoch.to_bytes(8, "big"),
        user_id.encode("utf-8"),
    )


def xor_all(digests) -> Digest:
    """XOR-fold an iterable of digests (identity: :meth:`Digest.zero`).

    Accumulates in a single 256-bit int, so a fold of n digests costs n
    int XORs and exactly one :class:`Digest` construction.
    """
    total = 0
    for digest in digests:
        total ^= digest._int
    return Digest._from_int(total)
