"""Cryptographic substrate: hashing, RSA signatures, and a minimal PKI.

Public surface:

* :class:`~repro.crypto.hashing.Digest` and the ``hash_*`` functions --
  domain-separated SHA-256 with an XOR algebra for Protocol II.
* :class:`~repro.crypto.signatures.Signer` /
  :class:`~repro.crypto.signatures.Verifier` -- the paper's
  ``sign_i(x)`` notation.
* :class:`~repro.crypto.pki.CertificateAuthority` -- RFC 2459-style key
  distribution for Protocol I.
"""

from repro.crypto.hashing import (
    DIGEST_SIZE,
    Digest,
    hash_bytes,
    hash_epoch_snapshot,
    hash_internal_node,
    hash_leaf,
    hash_leaf_node,
    hash_node,
    hash_state,
    hash_tagged_state,
    xor_all,
)
from repro.crypto.pki import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    build_verifier,
    verify_certificate,
)
from repro.crypto.rsa import (
    PrivateKey,
    PublicKey,
    SignatureError,
    generate_keypair,
    sign_digest,
    verify_digest,
)
from repro.crypto.signatures import Signature, Signer, Verifier

__all__ = [
    "DIGEST_SIZE",
    "Digest",
    "hash_bytes",
    "hash_epoch_snapshot",
    "hash_internal_node",
    "hash_leaf",
    "hash_leaf_node",
    "hash_node",
    "hash_state",
    "hash_tagged_state",
    "xor_all",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "build_verifier",
    "verify_certificate",
    "PrivateKey",
    "PublicKey",
    "SignatureError",
    "generate_keypair",
    "sign_digest",
    "verify_digest",
    "Signature",
    "Signer",
    "Verifier",
]
