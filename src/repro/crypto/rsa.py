"""Textbook RSA, implemented from scratch for the Protocol I PKI.

The paper assumes "a public key infrastructure, for example as in
[RFC 2459]; it is used to verify digital signatures".  We build the
signature primitive from first principles: Miller--Rabin primality
testing, deterministic seeded key generation, and hash-then-sign with a
fixed-pattern padding (a simplified PKCS#1 v1.5).

This module is *not* hardened cryptography -- no constant-time
arithmetic, no blinding -- but it is a real trapdoor-permutation
signature scheme: signatures are unforgeable to the simulated untrusted
server, which is exactly the property Protocol I's proof (Theorem 4.1)
relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.hashing import Digest

DEFAULT_KEY_BITS = 1024

# Verification results are pure functions of (key, digest, signature);
# protocols re-verify the same signatures (sync broadcasts, audits), so
# a bounded LRU absorbs the repeated modexps.
_VERIFY_CACHE_SIZE = 1 << 12

# Witness rounds for Miller--Rabin.  40 rounds bound the error
# probability by 2^-80, far below any chance event in our simulations.
_MILLER_RABIN_ROUNDS = 40

# Small primes used to cheaply reject most composite candidates before
# running Miller--Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

_PUBLIC_EXPONENT = 65537


class SignatureError(Exception):
    """Raised when a signature fails verification."""


def is_probable_prime(n: int, rng: random.Random) -> bool:
    """Miller--Rabin primality test with a trial-division pre-filter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate


def _modular_inverse(a: int, m: int) -> int:
    """Inverse of ``a`` modulo ``m`` via the extended Euclidean algorithm."""
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x === gcd(a, b) (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    return old_r, old_x


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    modulus: int
    exponent: int

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short stable identifier for the key, for directories and logs."""
        from repro.crypto.hashing import hash_bytes

        encoded = self.modulus.to_bytes(self.byte_length, "big")
        return hash_bytes(encoded).short()


@dataclass(frozen=True)
class PrivateKey:
    """An RSA private key; carries the matching public half.

    When the prime factorisation is known (always, for keys produced by
    :func:`generate_keypair`), the precomputed CRT parameters
    ``(p, q, dp, dq, qinv)`` let :func:`sign_digest` replace one modexp
    mod n with two half-size modexps -- the classic ~4x speedup.  Keys
    constructed without them still sign via the plain ``pow``.
    """

    public: PublicKey
    exponent: int
    p: int | None = None
    q: int | None = None
    dp: int | None = None
    dq: int | None = None
    qinv: int | None = None

    @property
    def has_crt(self) -> bool:
        return None not in (self.p, self.q, self.dp, self.dq, self.qinv)


def _generate_keypair_uncached(bits: int, seed: int | None) -> PrivateKey:
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = _modular_inverse(_PUBLIC_EXPONENT, phi)
        return PrivateKey(
            public=PublicKey(modulus=n, exponent=_PUBLIC_EXPONENT),
            exponent=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=_modular_inverse(q, p),
        )


# Seeded generation is deterministic, so (bits, seed) fully determines
# the key: tests and simulations that re-derive the same principals can
# share one generation instead of re-running Miller--Rabin each time.
_KEYPAIR_CACHE: dict[tuple[int, int], PrivateKey] = {}


def generate_keypair(bits: int = DEFAULT_KEY_BITS, seed: int | None = None) -> PrivateKey:
    """Generate an RSA keypair.

    ``seed`` makes generation deterministic, which keeps simulations
    reproducible -- and cacheable: repeated calls with the same
    ``(bits, seed)`` return the same (immutable) key object without
    re-running the primality search.  Omit it for an OS-entropy-seeded,
    uncached key.
    """
    if bits < 512:
        raise ValueError("RSA modulus must be at least 512 bits")
    if seed is None:
        return _generate_keypair_uncached(bits, None)
    cache_key = (bits, seed)
    key = _KEYPAIR_CACHE.get(cache_key)
    if key is None:
        key = _KEYPAIR_CACHE[cache_key] = _generate_keypair_uncached(bits, seed)
    return key


def _pad_digest(digest: Digest, byte_length: int) -> int:
    """Simplified PKCS#1 v1.5 padding: 0x00 0x01 FF..FF 0x00 digest."""
    if byte_length < len(digest.value) + 11:
        raise ValueError("modulus too small for digest padding")
    padding_len = byte_length - len(digest.value) - 3
    padded = b"\x00\x01" + b"\xff" * padding_len + b"\x00" + digest.value
    return int.from_bytes(padded, "big")


def sign_digest(key: PrivateKey, digest: Digest) -> bytes:
    """Sign a digest: ``pad(digest)^d mod n``, encoded big-endian.

    Uses the CRT decomposition when the key carries it: two modexps
    with half-size moduli and exponents instead of one full-size one.
    """
    byte_length = key.public.byte_length
    message = _pad_digest(digest, byte_length)
    if key.has_crt:
        sp = pow(message % key.p, key.dp, key.p)
        sq = pow(message % key.q, key.dq, key.q)
        signature = sq + key.q * ((key.qinv * (sp - sq)) % key.p)
    else:
        signature = pow(message, key.exponent, key.public.modulus)
    return signature.to_bytes(byte_length, "big")


@lru_cache(maxsize=_VERIFY_CACHE_SIZE)
def _verify_cached(modulus: int, exponent: int, digest: Digest, signature: bytes) -> bool:
    value = int.from_bytes(signature, "big")
    if value >= modulus:
        return False
    recovered = pow(value, exponent, modulus)
    byte_length = (modulus.bit_length() + 7) // 8
    try:
        expected = _pad_digest(digest, byte_length)
    except ValueError:
        return False
    return recovered == expected


def verify_digest(key: PublicKey, digest: Digest, signature: bytes) -> bool:
    """Check a signature produced by :func:`sign_digest`.

    Returns ``True`` on success; never raises for malformed input, so a
    malicious server handing back garbage is simply "not legitimate".
    The verdict is memoised on ``(key, digest, signature)`` -- it is a
    pure function of those inputs, and the protocols re-verify the same
    signatures during syncs and audits.
    """
    if len(signature) != key.byte_length:
        return False
    return _verify_cached(key.modulus, key.exponent, digest, bytes(signature))
