"""Textbook RSA, implemented from scratch for the Protocol I PKI.

The paper assumes "a public key infrastructure, for example as in
[RFC 2459]; it is used to verify digital signatures".  We build the
signature primitive from first principles: Miller--Rabin primality
testing, deterministic seeded key generation, and hash-then-sign with a
fixed-pattern padding (a simplified PKCS#1 v1.5).

This module is *not* hardened cryptography -- no constant-time
arithmetic, no blinding -- but it is a real trapdoor-permutation
signature scheme: signatures are unforgeable to the simulated untrusted
server, which is exactly the property Protocol I's proof (Theorem 4.1)
relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import Digest

DEFAULT_KEY_BITS = 1024

# Witness rounds for Miller--Rabin.  40 rounds bound the error
# probability by 2^-80, far below any chance event in our simulations.
_MILLER_RABIN_ROUNDS = 40

# Small primes used to cheaply reject most composite candidates before
# running Miller--Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

_PUBLIC_EXPONENT = 65537


class SignatureError(Exception):
    """Raised when a signature fails verification."""


def is_probable_prime(n: int, rng: random.Random) -> bool:
    """Miller--Rabin primality test with a trial-division pre-filter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate


def _modular_inverse(a: int, m: int) -> int:
    """Inverse of ``a`` modulo ``m`` via the extended Euclidean algorithm."""
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x === gcd(a, b) (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    return old_r, old_x


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    modulus: int
    exponent: int

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short stable identifier for the key, for directories and logs."""
        from repro.crypto.hashing import hash_bytes

        encoded = self.modulus.to_bytes(self.byte_length, "big")
        return hash_bytes(encoded).short()


@dataclass(frozen=True)
class PrivateKey:
    """An RSA private key; carries the matching public half."""

    public: PublicKey
    exponent: int


def generate_keypair(bits: int = DEFAULT_KEY_BITS, seed: int | None = None) -> PrivateKey:
    """Generate an RSA keypair.

    ``seed`` makes generation deterministic, which keeps simulations
    reproducible; omit it for an OS-entropy-seeded key.
    """
    if bits < 512:
        raise ValueError("RSA modulus must be at least 512 bits")
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = _modular_inverse(_PUBLIC_EXPONENT, phi)
        return PrivateKey(public=PublicKey(modulus=n, exponent=_PUBLIC_EXPONENT), exponent=d)


def _pad_digest(digest: Digest, byte_length: int) -> int:
    """Simplified PKCS#1 v1.5 padding: 0x00 0x01 FF..FF 0x00 digest."""
    if byte_length < len(digest.value) + 11:
        raise ValueError("modulus too small for digest padding")
    padding_len = byte_length - len(digest.value) - 3
    padded = b"\x00\x01" + b"\xff" * padding_len + b"\x00" + digest.value
    return int.from_bytes(padded, "big")


def sign_digest(key: PrivateKey, digest: Digest) -> bytes:
    """Sign a digest: ``pad(digest)^d mod n``, encoded big-endian."""
    byte_length = key.public.byte_length
    message = _pad_digest(digest, byte_length)
    signature = pow(message, key.exponent, key.public.modulus)
    return signature.to_bytes(byte_length, "big")


def verify_digest(key: PublicKey, digest: Digest, signature: bytes) -> bool:
    """Check a signature produced by :func:`sign_digest`.

    Returns ``True`` on success; never raises for malformed input, so a
    malicious server handing back garbage is simply "not legitimate".
    """
    if len(signature) != key.byte_length:
        return False
    value = int.from_bytes(signature, "big")
    if value >= key.modulus:
        return False
    recovered = pow(value, key.exponent, key.modulus)
    try:
        expected = _pad_digest(digest, key.byte_length)
    except ValueError:
        return False
    return recovered == expected
