"""The token-passing strawman (paper Section 2.2.3).

"The protocol forces users to update the data only at pre-specified
time points (say, on the hour) and only in a pre-specified order. ...
This goes on in a token passing style cycling through the users.  If a
user does not have an operation, a signature of a null message is
stored."

It detects deviation (it literally simulates the single-user verified
database), but it fails *bounded workload preservation*: a user with
two back-to-back operations must wait for a full cycle of everyone
else's null records between them.  Benchmark E7 measures exactly this.

Time is sliced into fixed-length slots; slot s belongs to user
``s mod n``.  In its slot a user performs its next pending operation
(or a null operation), verifies the previous holder's signature over
the current state, and signs the new state.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest, hash_state
from repro.crypto.signatures import Signature, Signer, Verifier
from repro.mtree.database import Query, QueryResult
from repro.mtree.proofs import ProofError
from repro.protocols.base import (
    ClientContext,
    DeviationDetected,
    Followup,
    ProtocolClient,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.protocols.verify import derive_outcome

META_SIG = "tp.sig"
META_TURN = "tp.turn"
META_AWAITING = "tp.awaiting_sig"


def bootstrap_server_state(state: ServerState, elected: Signer) -> None:
    """The elected user signs the initial state for turn 0."""
    state.meta[META_SIG] = elected.sign(hash_state(state.database.root_digest(), 0))
    state.meta[META_TURN] = 0
    state.meta[META_AWAITING] = False


class TokenPassServer(ServerProtocol):
    """Returns the stored signature and turn; accepts the next signature.

    Like Protocol I, the server blocks between a response and the
    client's returned signature -- in token passing the chain of
    custody must never fork.
    """

    responses_commit_state = True

    def blocked(self, state: ServerState) -> bool:
        return bool(state.meta.get(META_AWAITING))

    def handle_request(self, user_id: str, request: Request, state: ServerState, round_no: int) -> Response:
        extras = {"turn": state.meta[META_TURN], "sig": state.meta[META_SIG]}
        state.meta[META_AWAITING] = True
        if request.query is None:
            # Null operation: nothing executes; the state is unchanged.
            extras["root"] = state.database.root_digest()
            return Response(result=QueryResult(answer=None, proof=None), extras=extras)
        result = state.database.execute(request.query)
        state.ctr += 1
        return Response(result=result, extras=extras)

    def handle_followup(self, user_id: str, followup: Followup, state: ServerState, round_no: int) -> None:
        signature = followup.extras.get("sig")
        if isinstance(signature, Signature):
            state.meta[META_SIG] = signature
            state.meta[META_TURN] = followup.extras.get("turn", state.meta[META_TURN] + 1)
        state.meta[META_AWAITING] = False


class TokenPassClient(ProtocolClient):
    """Operates only in its own time slots, passing the signed state."""

    def __init__(
        self,
        user_id: str,
        user_ids: list[str],
        signer: Signer,
        verifier: Verifier,
        slot_length: int = 4,
        order: int = 8,
        quiet_after: int | None = None,
    ) -> None:
        super().__init__(user_id)
        self.user_ids = sorted(user_ids)
        self._my_index = self.user_ids.index(user_id)
        self._signer = signer
        self._verifier = verifier
        self.slot_length = slot_length
        self._order = order
        self._turn_done: set[int] = set()
        self._last_issue_slot: int | None = None
        self.null_operations = 0
        # After this round the client stops emitting null records -- a
        # simulation convenience so runs can quiesce; None = forever.
        self.quiet_after = quiet_after

    def _slot(self, round_no: int) -> int:
        return round_no // self.slot_length

    def _is_my_slot(self, round_no: int) -> bool:
        return self._slot(round_no) % len(self.user_ids) == self._my_index

    def may_start_transaction(self, ctx: ClientContext) -> bool:
        slot = self._slot(ctx.round)
        return self._is_my_slot(ctx.round) and slot not in self._turn_done

    def on_round(self, ctx: ClientContext) -> None:
        """Issue a null operation if this is our slot and the workload has
        nothing to do -- the token must keep moving."""
        slot = self._slot(ctx.round)
        if not self._is_my_slot(ctx.round) or slot in self._turn_done:
            return
        if self.quiet_after is not None and ctx.round > self.quiet_after:
            return
        # Give the workload the first few rounds of the slot; then null-op.
        if ctx.round % self.slot_length < self.slot_length - 2:
            return
        if getattr(ctx, "has_pending", None) is not None and ctx.has_pending():
            return
        self._turn_done.add(slot)
        self._last_issue_slot = slot
        self.null_operations += 1
        ctx.issue_internal(Request(query=None, extras={"null": True}))

    def make_request(self, query: Query) -> Request:
        return Request(query=query)

    def on_issue(self, ctx: ClientContext) -> None:
        """A real workload operation was just issued in this slot."""
        slot = self._slot(ctx.round)
        self._turn_done.add(slot)
        self._last_issue_slot = slot

    def handle_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        try:
            turn = int(response.extras["turn"])
            signature = response.extras["sig"]
        except (KeyError, TypeError, ValueError):
            raise DeviationDetected(self.user_id, "malformed token-pass response") from None

        # The pre-specified schedule: slot s carries exactly one signed
        # record, so an operation issued in slot s must observe turn == s.
        # A lagging turn means some earlier user's record never made it
        # into this history -- the server dropped or forked it.
        if self._last_issue_slot is not None and turn != self._last_issue_slot:
            raise DeviationDetected(
                self.user_id,
                f"token schedule violated: operating in slot {self._last_issue_slot} "
                f"but the server's chain holds {turn} records",
            )

        if query is None:
            # Null operation: verify the current signed state, re-sign it.
            root = response.extras.get("root")
            if not isinstance(root, Digest):
                raise DeviationDetected(self.user_id, "null-op response lacks the current root")
            old_root = new_root = root
            answer = None
        else:
            try:
                outcome = derive_outcome(query, response.result, self._order)
            except ProofError as exc:
                raise DeviationDetected(self.user_id, f"verification object rejected: {exc}") from exc
            old_root, new_root, answer = outcome.old_root, outcome.new_root, outcome.answer
            self.completed_transactions += 1

        expected = hash_state(old_root, turn)
        if not isinstance(signature, Signature) or not self._verifier.verify(signature, expected):
            raise DeviationDetected(
                self.user_id,
                "token-pass chain broken: stored signature does not cover the presented state",
            )
        new_sig = self._signer.sign(hash_state(new_root, turn + 1))
        ctx.send_to_server(Followup(extras={"sig": new_sig, "turn": turn + 1}))
        return answer

    def state_size(self) -> int:
        return 3
