"""Tree-aggregated synchronisation -- the paper's future-work item (2).

"(2) to find protocols where the clients do only constant amount of
work as compared to proportional to the number of users in the system."

Protocol II's flat sync is all-to-all: each user receives n register
broadcasts and n verdicts, so per-sync client work is Theta(n).  This
variant arranges the users in a static binary tree (over the sorted
user list) and aggregates instead:

1. the initiating user broadcasts a sync-up (as before);
2. each user, after finishing its current transaction, XORs its sigma
   into its subtree aggregate; once a node holds contributions from
   both children it forwards the subtree aggregate *point-to-point* to
   its parent;
3. the root ends up with ``XOR_k sigma_k`` and broadcasts it;
4. every user evaluates its own predicate ``S0 ^ last_i == total`` and
   sends its verdict up the tree, OR-aggregated the same way;
5. the root broadcasts the outcome; failure means the server deviated.

Per sync a user now touches O(degree) = O(1) point-to-point messages
plus the three broadcasts -- constant work regardless of n, with the
same detection power (the total XOR and the existential verdict are
exactly the flat protocol's quantities).
"""

from __future__ import annotations

from repro.crypto.hashing import Digest
from repro.protocols.base import ClientContext, DeviationDetected, Response
from repro.protocols.protocol2 import Protocol2Client
from repro.mtree.database import Query


class AggregatedProtocol2Client(Protocol2Client):
    """Protocol II with tree-aggregated synchronisation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._my_index = self.user_ids.index(self.user_id)
        # Per active sync tag:
        self._agg_sigma: dict[str, Digest] = {}       # subtree XOR so far
        self._agg_children_left: dict[str, int] = {}  # contributions awaited
        self._agg_verdict: dict[str, bool] = {}
        self._verdict_children_left: dict[str, int] = {}
        self._self_contributed: set[str] = set()
        self._deferred_tags: set[str] = set()
        self._seen_totals: set[str] = set()
        # Stragglers from completed syncs must not resurrect them.
        self._finished: set[str] = set()
        self.sync_messages_received = 0

    # -- tree topology -----------------------------------------------------

    def _parent(self) -> str | None:
        if self._my_index == 0:
            return None
        return self.user_ids[(self._my_index - 1) // 2]

    def _children(self) -> list[str]:
        n = len(self.user_ids)
        kids = []
        for child_index in (2 * self._my_index + 1, 2 * self._my_index + 2):
            if child_index < n:
                kids.append(self.user_ids[child_index])
        return kids

    # -- choreography --------------------------------------------------------

    def announce_sync(self, ctx: ClientContext) -> None:
        self._sync_seq += 1
        tag = f"{self.user_id}#{self._sync_seq}"
        ctx.broadcast({"type": "agg-sync-request", "tag": tag})
        self._enter(tag, ctx)

    def may_start_transaction(self, ctx: ClientContext) -> bool:
        return not self._agg_sigma

    def handle_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        answer = self._verify_response(query, response, ctx)
        if query is not None:
            self.completed_transactions += 1
            self.ops_since_sync += 1
        for tag in sorted(self._deferred_tags):
            self._contribute_self(tag, ctx)
        self._deferred_tags.clear()
        return answer

    def wants_sync(self) -> bool:
        return self.ops_since_sync >= self.k and not self._agg_sigma

    def handle_broadcast(self, sender: str, payload: dict, ctx: ClientContext) -> None:
        kind = payload.get("type")
        if kind == "agg-sync-request":
            self.sync_messages_received += 1
            self._enter(payload["tag"], ctx)
        elif kind == "agg-data":
            self.sync_messages_received += 1
            self._enter(payload["tag"], ctx)
            self._absorb_child_sigma(payload["tag"], payload["sigma"], ctx)
        elif kind == "agg-total":
            self.sync_messages_received += 1
            # A total implies the root saw our contribution, but with
            # out-of-order delivery the original sync-up may still be
            # in flight -- join defensively before evaluating.
            self._enter(payload["tag"], ctx)
            self._evaluate(payload["tag"], payload["total"], ctx)
        elif kind == "agg-verdict":
            self.sync_messages_received += 1
            self._absorb_child_verdict(payload["tag"], payload["success"], ctx)
        elif kind == "agg-outcome":
            self.sync_messages_received += 1
            self._finish(payload["tag"], payload["ok"])

    def _enter(self, tag: str, ctx: ClientContext) -> None:
        if tag in self._agg_sigma or tag in self._finished:
            return
        self._agg_sigma[tag] = Digest.zero()
        self._agg_children_left[tag] = len(self._children())
        self._agg_verdict[tag] = False
        self._verdict_children_left[tag] = len(self._children())
        if getattr(ctx, "has_pending", None) is not None and ctx.has_pending():
            self._deferred_tags.add(tag)
        else:
            self._contribute_self(tag, ctx)

    def _contribute_self(self, tag: str, ctx: ClientContext) -> None:
        if tag in self._self_contributed or tag not in self._agg_sigma:
            return
        self._self_contributed.add(tag)
        self._agg_sigma[tag] = self._agg_sigma[tag] ^ self.sigma
        self._maybe_forward_sigma(tag, ctx)

    def _absorb_child_sigma(self, tag: str, sigma: Digest, ctx: ClientContext) -> None:
        self._agg_sigma[tag] = self._agg_sigma[tag] ^ sigma
        self._agg_children_left[tag] -= 1
        self._maybe_forward_sigma(tag, ctx)

    def _maybe_forward_sigma(self, tag: str, ctx: ClientContext) -> None:
        if tag in self._self_contributed and self._agg_children_left.get(tag) == 0:
            parent = self._parent()
            if parent is None:
                # Root: the subtree aggregate is the global total.
                ctx.broadcast({"type": "agg-total", "tag": tag,
                               "total": self._agg_sigma[tag]})
                self._evaluate(tag, self._agg_sigma[tag], ctx)
            else:
                ctx.send_to_user(parent, {"type": "agg-data", "tag": tag,
                                          "sigma": self._agg_sigma[tag]})

    def _evaluate(self, tag: str, total: Digest, ctx: ClientContext) -> None:
        if tag not in self._agg_verdict:
            return
        self._seen_totals.add(tag)
        if self.last:
            mine = (self._initial_tag ^ total) == self.last
        else:
            mine = total == Digest.zero()
        self._agg_verdict[tag] = self._agg_verdict[tag] or mine
        self._maybe_forward_verdict(tag, ctx)

    def _absorb_child_verdict(self, tag: str, success: bool, ctx: ClientContext) -> None:
        if tag not in self._agg_verdict:
            return
        self._agg_verdict[tag] = self._agg_verdict[tag] or success
        self._verdict_children_left[tag] -= 1
        self._maybe_forward_verdict(tag, ctx)

    def _maybe_forward_verdict(self, tag: str, ctx: ClientContext) -> None:
        # Leaves evaluate then forward; internal nodes wait for children.
        if self._verdict_children_left.get(tag) != 0:
            return
        if not self._evaluated(tag):
            return
        parent = self._parent()
        if parent is None:
            ok = self._agg_verdict[tag]
            ctx.broadcast({"type": "agg-outcome", "tag": tag, "ok": ok})
            self._finish(tag, ok)
        else:
            ctx.send_to_user(parent, {"type": "agg-verdict", "tag": tag,
                                      "success": self._agg_verdict[tag]})
            # Mark so a late child verdict cannot double-send.
            self._verdict_children_left[tag] = -1

    def _evaluated(self, tag: str) -> bool:
        """Whether our own predicate has been folded in (happens inside
        :meth:`_evaluate`, which requires the root's total)."""
        return tag in self._seen_totals

    def _finish(self, tag: str, ok: bool) -> None:
        if tag in self._finished:
            return
        self._finished.add(tag)
        for table in (self._agg_sigma, self._agg_children_left,
                      self._agg_verdict, self._verdict_children_left):
            table.pop(tag, None)
        self._self_contributed.discard(tag)
        self._deferred_tags.discard(tag)
        self._seen_totals.discard(tag)
        if not ok:
            raise DeviationDetected(
                self.user_id,
                "aggregated synchronisation failed: no user's registers are "
                "consistent with a single serial execution",
            )
        self.ops_since_sync = 0
