"""The paper's protocols (Section 4) and the baselines they improve on.

* :mod:`repro.protocols.protocol1` -- signed roots + counter sync
  (needs a PKI, one extra blocking message per operation).
* :mod:`repro.protocols.protocol2` -- tagged-state XOR registers
  (no signatures, no blocking message).
* :mod:`repro.protocols.protocol3` -- epoch deposits audited through
  the server (no broadcast channel; restricted workload).
* :mod:`repro.protocols.tokenpass` -- the Section 2.2.3 strawman that
  fails bounded workload preservation.
* :mod:`repro.protocols.naive` -- today's trusting CVS client.
* :mod:`repro.protocols.graph` -- the Lemma 4.1 seen-state graph.
"""

from repro.protocols.aggregation import AggregatedProtocol2Client
from repro.protocols.base import (
    ClientContext,
    DeviationDetected,
    Followup,
    ProtocolClient,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.protocols.localization import (
    Checkpoint,
    CheckpointRing,
    FaultLocalization,
    localize_fault,
    prefix_consistent,
)
from repro.protocols.graph import StateGraph, Transition, lemma41_path_theorem
from repro.protocols.naive import NaiveClient, NaiveServer
from repro.protocols.protocol1 import Protocol1Client, Protocol1Server
from repro.protocols.protocol2 import Protocol2Client, Protocol2Server, initial_state_tag
from repro.protocols.protocol3 import EpochDeposit, Protocol3Client, Protocol3Server
from repro.protocols.syncbase import SyncingClient
from repro.protocols.tokenpass import TokenPassClient, TokenPassServer
from repro.protocols.verify import VerifiedOutcome, derive_outcome

__all__ = [
    "AggregatedProtocol2Client",
    "Checkpoint",
    "CheckpointRing",
    "FaultLocalization",
    "localize_fault",
    "prefix_consistent",
    "ClientContext",
    "DeviationDetected",
    "Followup",
    "ProtocolClient",
    "Request",
    "Response",
    "ServerProtocol",
    "ServerState",
    "StateGraph",
    "Transition",
    "lemma41_path_theorem",
    "NaiveClient",
    "NaiveServer",
    "Protocol1Client",
    "Protocol1Server",
    "Protocol2Client",
    "Protocol2Server",
    "initial_state_tag",
    "EpochDeposit",
    "Protocol3Client",
    "Protocol3Server",
    "SyncingClient",
    "TokenPassClient",
    "TokenPassServer",
    "VerifiedOutcome",
    "derive_outcome",
]
