"""Broadcast-channel synchronisation shared by Protocols I and II.

Both protocols run the same sync choreography (Section 4.2/4.3):

1. the first user to complete k operations since the last successful
   sync announces a *sync-up* on the broadcast channel;
2. every user, after completing its current transaction (issuing no
   new ones meanwhile), broadcasts its protocol registers;
3. once a user holds everyone's registers it evaluates its own success
   predicate and broadcasts the verdict;
4. if *no* user's predicate holds, everyone terminates and reports an
   error -- the server deviated.

Subclasses provide only the payload (:meth:`_sync_payload`) and the
predicate (:meth:`_evaluate_sync`); Protocol I contributes operation
counts, Protocol II contributes XOR registers.
"""

from __future__ import annotations

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import ClientContext, DeviationDetected, ProtocolClient, Response
from repro.mtree.database import Query

_SYNCS_STARTED = _registry.counter(
    "protocol.syncs_started", "sync-ups announced on the broadcast channel")
_SYNCS_PASSED = _registry.counter(
    "protocol.syncs_passed", "completed syncs where some user's predicate held")
_SYNCS_FAILED = _registry.counter(
    "protocol.syncs_failed", "completed syncs with no satisfiable predicate (deviation)")


class SyncingClient(ProtocolClient):
    """A protocol client with the k-operation broadcast sync machinery."""

    def __init__(self, user_id: str, user_ids: list[str], k: int) -> None:
        super().__init__(user_id)
        if k < 1:
            raise ValueError("sync period k must be at least 1")
        self.user_ids = sorted(user_ids)
        if user_id not in self.user_ids:
            raise ValueError(f"{user_id!r} missing from the user list")
        self.k = k
        self.ops_since_sync = 0
        self._sync_seq = 0
        # Per active sync tag: who sent data / verdicts.  ``_entered``
        # tracks which syncs we have joined (contributed or deferred):
        # with out-of-order delivery another user's sync-data can arrive
        # before the sync-request, so bucket existence alone must not be
        # mistaken for having joined.
        self._sync_data: dict[str, dict[str, dict]] = {}
        self._sync_verdicts: dict[str, dict[str, bool]] = {}
        self._entered: set[str] = set()
        self._deferred_data: set[str] = set()
        # Tags of completed syncs: with out-of-order delivery, stragglers
        # from a finished sync must not resurrect it as a ghost that can
        # never complete.
        self._finished: set[str] = set()

    # -- hooks for subclasses ------------------------------------------------

    def _verify_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        """Protocol-specific response verification; returns the answer."""
        raise NotImplementedError

    def _sync_payload(self) -> dict:
        """The registers this user contributes to a sync."""
        raise NotImplementedError

    def _evaluate_sync(self, data: dict[str, dict]) -> bool:
        """This user's success predicate over everyone's registers."""
        raise NotImplementedError

    # -- transaction lifecycle --------------------------------------------

    def handle_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        answer = self._verify_response(query, response, ctx)
        if query is not None:
            self.completed_transactions += 1
            self.ops_since_sync += 1
        # "after completing their current transactions": flush any sync
        # data we owed while the transaction was in flight.
        for tag in sorted(self._deferred_data):
            self._send_sync_data(tag, ctx)
        self._deferred_data.clear()
        return answer

    def wants_sync(self) -> bool:
        return self.ops_since_sync >= self.k and not self._sync_data

    def may_start_transaction(self, ctx: ClientContext) -> bool:
        """No new transactions between a sync-up and our data broadcast."""
        return not self._sync_data

    # -- sync choreography ----------------------------------------------------

    def announce_sync(self, ctx: ClientContext) -> None:
        self._sync_seq += 1
        if _obs.enabled:
            _SYNCS_STARTED.inc(user=self.user_id)
        tag = f"{self.user_id}#{self._sync_seq}"
        ctx.broadcast({"type": "sync-request", "tag": tag})
        self._enter_sync(tag, ctx)

    def handle_broadcast(self, sender: str, payload: dict, ctx: ClientContext) -> None:
        kind = payload.get("type")
        if kind == "sync-request":
            self._enter_sync(payload["tag"], ctx)
        elif kind == "sync-data":
            self._receive_sync_data(payload["tag"], sender, payload["data"], ctx)
        elif kind == "sync-verdict":
            self._receive_sync_verdict(payload["tag"], sender, payload["success"], ctx)

    def _enter_sync(self, tag: str, ctx: ClientContext) -> None:
        if tag in self._entered or tag in self._finished:
            return
        self._entered.add(tag)
        self._sync_data.setdefault(tag, {})
        self._sync_verdicts.setdefault(tag, {})
        if getattr(ctx, "has_pending", None) is not None and ctx.has_pending():
            self._deferred_data.add(tag)
        else:
            self._send_sync_data(tag, ctx)

    def _send_sync_data(self, tag: str, ctx: ClientContext) -> None:
        payload = self._sync_payload()
        ctx.broadcast({"type": "sync-data", "tag": tag, "data": payload})
        self._receive_sync_data(tag, self.user_id, payload, ctx)

    def _receive_sync_data(self, tag: str, sender: str, data: dict, ctx: ClientContext) -> None:
        if tag in self._finished:
            return
        if sender != self.user_id:
            # A data message is also an implicit sync-up (the request
            # may still be in flight behind it).
            self._enter_sync(tag, ctx)
        bucket = self._sync_data.setdefault(tag, {})
        self._sync_verdicts.setdefault(tag, {})
        bucket[sender] = data
        if len(bucket) == len(self.user_ids) and self.user_id in bucket:
            success = self._evaluate_sync(bucket)
            ctx.broadcast({"type": "sync-verdict", "tag": tag, "success": success})
            self._receive_sync_verdict(tag, self.user_id, success, ctx)

    def _receive_sync_verdict(self, tag: str, sender: str, success: bool, ctx: ClientContext) -> None:
        if tag in self._finished:
            return
        if sender != self.user_id:
            self._enter_sync(tag, ctx)
        verdicts = self._sync_verdicts.setdefault(tag, {})
        verdicts[sender] = success
        if len(verdicts) < len(self.user_ids):
            return
        all_verdicts = list(verdicts.values())
        self._finished.add(tag)
        self._sync_data.pop(tag, None)
        self._sync_verdicts.pop(tag, None)
        self._entered.discard(tag)
        self._deferred_data.discard(tag)
        if not any(all_verdicts):
            if _obs.enabled:
                _SYNCS_FAILED.inc(user=self.user_id)
            raise DeviationDetected(
                self.user_id,
                "synchronisation failed: no user's registers are consistent "
                "with a single serial execution",
            )
        if _obs.enabled:
            _SYNCS_PASSED.inc(user=self.user_id)
        self.ops_since_sync = 0

    def state_size(self) -> int:
        # Registers + counters; sync buffers are transient and bounded
        # by the (fixed) number of users.
        return 4
