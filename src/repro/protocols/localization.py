"""Fault localisation -- the paper's future-work item (1).

"Possible future directions are (1) to extend these protocols to
detect exactly when the fault occurred."

Protocol II's sync check is all-or-nothing: it says *that* the server
deviated, not *when*.  This module adds the natural extension the
paper gestures at: clients additionally keep a bounded ring of
*register checkpoints* -- snapshots of (gctr, sigma, last) taken every
``interval`` operations.  After an alarm, the users pool their
checkpoint logs (out-of-band; at this point they are off the server
anyway) and replay the prefix-consistency predicate at every recorded
global-counter cutoff:

    prefix up to cutoff c is consistent iff for the registers truncated
    at c,  S0 XOR last_i == XOR_k sigma_k  for some user i.

An honest prefix telescopes exactly as in Theorem 4.2; the first cutoff
where no user's predicate holds brackets the fault:

    last consistent cutoff  <  fault  <=  first inconsistent cutoff.

The bracket width is the checkpoint interval (per user), so the
operator tunes memory vs localisation precision; the ring keeps local
state bounded (the Section 2.2.5 desideratum), at the cost of only
localising faults within the retained window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, xor_all


@dataclass(frozen=True)
class Checkpoint:
    """A user's registers right after the operation that set ``gctr``."""

    gctr: int
    sigma: Digest
    last: Digest


@dataclass(frozen=True)
class FaultLocalization:
    """The bracket around the first fault.

    ``consistent_upto`` is the largest examined cutoff whose prefix
    still telescopes (0 if none); ``inconsistent_at`` is the first
    cutoff that fails (None if every examined prefix is consistent --
    either no fault, or the fault predates the retained window).
    """

    consistent_upto: int
    inconsistent_at: int | None
    examined_cutoffs: tuple[int, ...]

    @property
    def fault_found(self) -> bool:
        return self.inconsistent_at is not None

    def bracket(self) -> tuple[int, int] | None:
        """(exclusive lower, inclusive upper) bound on the fault's
        global operation counter, or None."""
        if self.inconsistent_at is None:
            return None
        return (self.consistent_upto, self.inconsistent_at)


class CheckpointRing:
    """A bounded ring of checkpoints (keeps the newest ``capacity``)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 2:
            raise ValueError("checkpoint ring needs capacity >= 2")
        self.capacity = capacity
        self._items: list[Checkpoint] = []

    def record(self, gctr: int, sigma: Digest, last: Digest) -> None:
        self._items.append(Checkpoint(gctr=gctr, sigma=sigma, last=last))
        if len(self._items) > self.capacity:
            self._items.pop(0)

    def items(self) -> list[Checkpoint]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


def _registers_at(log: list[Checkpoint], cutoff: int) -> Checkpoint | None:
    """The newest checkpoint at or before ``cutoff`` (None = no ops yet)."""
    best = None
    for checkpoint in log:
        if checkpoint.gctr <= cutoff:
            if best is None or checkpoint.gctr > best.gctr:
                best = checkpoint
    return best


def prefix_consistent(
    initial_tag: Digest,
    logs: dict[str, list[Checkpoint]],
    cutoff: int,
) -> bool:
    """The Theorem 4.2 telescoping predicate over a prefix.

    Valid when every user has checkpointed at its last operation before
    ``cutoff`` -- which holds at any cutoff drawn from the union of the
    users' own checkpoint counters when the interval is 1, and holds up
    to interval-sized slack otherwise.
    """
    sigmas = []
    candidates = []
    for log in logs.values():
        checkpoint = _registers_at(log, cutoff)
        if checkpoint is None:
            continue
        sigmas.append(checkpoint.sigma)
        candidates.append(checkpoint.last)
    total = xor_all(sigmas)
    if not candidates:
        return total == Digest.zero()
    # (initial ^ last) == total  <=>  last == initial ^ total, so one
    # XOR up front replaces a fold per candidate.
    target = initial_tag ^ total
    return target in candidates


def localize_fault(initial_tag: Digest, logs: dict[str, list[Checkpoint]]) -> FaultLocalization:
    """Scan the pooled checkpoint logs for the first inconsistent prefix."""
    cutoffs = sorted({cp.gctr for log in logs.values() for cp in log})
    consistent_upto = 0
    inconsistent_at = None
    for cutoff in cutoffs:
        if prefix_consistent(initial_tag, logs, cutoff):
            # Only advance the lower bound while we have seen no failure:
            # after the fault, later prefixes may coincidentally pass.
            if inconsistent_at is None:
                consistent_upto = cutoff
        elif inconsistent_at is None:
            inconsistent_at = cutoff
    return FaultLocalization(
        consistent_upto=consistent_upto,
        inconsistent_at=inconsistent_at,
        examined_cutoffs=tuple(cutoffs),
    )
