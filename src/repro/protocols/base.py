"""Protocol framework: the client/server interfaces all three protocols
(and the baselines) implement, plus the shared message vocabulary.

A protocol has two halves:

* a :class:`ProtocolClient` per user -- wraps each database query with
  verification state (root digests, counters, XOR registers,
  signatures) and raises :class:`DeviationDetected` the moment the
  server's behaviour is inconsistent with *every* trusted run;
* a :class:`ServerProtocol` -- the per-request server-side logic
  (what to return alongside ``Q(D)`` and ``v(Q, D)``), operating on a
  :class:`ServerState` that attacks may clone and swap underneath it.

The simulator (:mod:`repro.simulation.runner`) is protocol-agnostic: it
moves envelopes between agents and lets these objects do the thinking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

from repro.mtree.database import Query, QueryResult, VerifiedDatabase


def _copy_meta(value):
    """Recursive copy of the ``meta`` container skeleton.

    Protocol metadata is plain containers (dict/list/set/tuple) over
    immutable leaves -- strings, ints, digests, frozen dataclasses such
    as signatures and epoch deposits.  Copying the containers and
    sharing the leaves gives the same isolation as ``copy.deepcopy`` at
    a fraction of the cost.
    """
    if isinstance(value, dict):
        return {key: _copy_meta(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_meta(item) for item in value]
    if isinstance(value, set):
        return {_copy_meta(item) for item in value}
    if isinstance(value, tuple):
        return tuple(_copy_meta(item) for item in value)
    return value


class DeviationDetected(Exception):
    """Raised by a client the moment it can prove the server deviated.

    Carries the detecting user, the round (filled by the agent), and a
    human-readable reason used in reports and tests.
    """

    def __init__(self, user_id: str, reason: str) -> None:
        super().__init__(f"user {user_id}: {reason}")
        self.user_id = user_id
        self.reason = reason


@dataclass
class ServerState:
    """Everything the server knows: the database plus protocol metadata.

    ``meta`` is a per-protocol scratch space (last signature, operation
    counter, deposited epoch snapshots, ...).  Attacks fork a server by
    deep-copying this object, which is exactly the power an untrusted
    server has: presenting different histories to different users.
    """

    database: VerifiedDatabase
    ctr: int = 0
    meta: dict = field(default_factory=dict)

    def clone(self) -> "ServerState":
        """Independent snapshot: structural tree copy + meta skeleton copy."""
        return ServerState(
            database=self.database.clone(),
            ctr=self.ctr,
            meta=_copy_meta(self.meta),
        )


#: ``extras`` key carrying a request's idempotency token.  A client
#: that may retry an operation stamps each *logical* operation with one
#: id (``"<user>:<sequence>"``) and reuses it verbatim on every retry;
#: the server keeps its latest (id, response) per user and answers a
#: replayed id from that table instead of executing the query again.
RID_KEY = "rid"

#: ``extras`` key naming the requesting user on the wire.
USER_KEY = "user"


def request_id(message: "Request") -> str | None:
    """The idempotency token of a request, if its sender set one."""
    rid = message.extras.get(RID_KEY)
    return rid if isinstance(rid, str) else None


@dataclass(frozen=True)
class Request:
    """A client->server message carrying one query plus protocol extras."""

    query: Query
    extras: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """A server->client message: the answer, the VO, protocol extras."""

    result: QueryResult
    extras: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Followup:
    """A client->server message sent *after* verifying a response
    (Protocol I's signed new root digest; Protocol III's deposited
    epoch snapshot piggybacks similarly)."""

    extras: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorReply:
    """A server->client failure notice carrying no answer.

    Sent in place of a :class:`Response` when the server cannot serve
    the request at all -- e.g. the Protocol I handler timing out while
    waiting for another client's follow-up signature.  An explicit
    frame lets the requester distinguish "server gave up" from a hung
    connection; under the paper's b*-bounded transaction time
    assumption, a trusted server never emits one under honest load.
    """

    reason: str = ""
    extras: dict = field(default_factory=dict)


class ClientContext(TypingProtocol):
    """What a protocol client may do while handling an event.

    Implemented by the simulator's user agent; a thin fake suffices in
    unit tests.
    """

    @property
    def round(self) -> int: ...

    def send_to_server(self, message: Followup) -> None: ...

    def broadcast(self, payload: dict) -> None: ...

    def send_to_user(self, user_id: str, payload: dict) -> None: ...


class ProtocolClient:
    """Base class for per-user protocol state machines.

    Subclasses override the hooks they need; the defaults implement a
    protocol with no verification at all (the naive baseline).
    """

    def __init__(self, user_id: str) -> None:
        self.user_id = user_id
        self.completed_transactions = 0

    # -- transaction lifecycle -------------------------------------------

    def make_request(self, query: Query) -> Request:
        """Wrap a query into the protocol's request message."""
        return Request(query=query)

    def on_issue(self, ctx: ClientContext) -> None:
        """Called by the agent right after a workload query was sent."""

    def handle_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        """Verify a response; return the (trustworthy) answer.

        Raises :class:`DeviationDetected` on any inconsistency.  May
        send a follow-up message or a broadcast through ``ctx``.
        """
        self.completed_transactions += 1
        return response.result.answer

    # -- synchronisation --------------------------------------------------

    def wants_sync(self) -> bool:
        """Whether this client should announce a sync-up now (checked
        after each completed transaction)."""
        return False

    def announce_sync(self, ctx: ClientContext) -> None:
        """Kick off a synchronisation (Protocol I/II sync-up message)."""

    def may_start_transaction(self, ctx: ClientContext) -> bool:
        """Whether the user may issue a new operation now.

        Protocols return ``False`` mid-sync ("users do not start a new
        transaction between the sync-up message and broadcast") or,
        for the token-passing baseline, while it is not their turn.
        """
        return True

    def handle_broadcast(self, sender: str, payload: dict, ctx: ClientContext) -> None:
        """Process a broadcast-channel message from another user."""

    def on_round(self, ctx: ClientContext) -> None:
        """Called once per simulation round (epoch bookkeeping etc.)."""

    # -- introspection ------------------------------------------------------

    def state_size(self) -> int:
        """Approximate local state footprint in *items* (digests,
        counters), used to check the bounded-local-state desideratum."""
        return 0


class ServerProtocol:
    """Base class for the server half of a protocol."""

    #: Whether responses commit to the database state (root digests,
    #: counters).  Used by the simulator's ground-truth oracle: for
    #: committing protocols, serving from a diverged state is itself a
    #: differing response action per Definition 2.1.
    responses_commit_state = True

    #: Whether ``handle_request`` leaves the state blocked until a
    #: follow-up arrives (Protocol I).  Servers that batch use this to
    #: plan signing runs; the simulator keeps using :meth:`blocked`.
    blocks_after_request = False

    #: Whether the protocol understands the defer-followup request
    #: marker (see :mod:`repro.protocols.protocol1`): requests so
    #: stamped do not block the state, letting one follow-up signature
    #: cover a whole batch from the same user.
    supports_deferred_followup = False

    def initialize(self, state: ServerState) -> None:
        """One-time setup of protocol metadata in ``state.meta``."""

    def blocked(self, state: ServerState) -> bool:
        """Whether the server must wait before answering the next query
        on this state (Protocol I waits for the client's signature)."""
        return False

    def handle_request(self, user_id: str, request: Request, state: ServerState, round_no: int) -> Response:
        """Execute the query on ``state`` and build the response."""
        result = state.database.execute(request.query)
        state.ctr += 1
        return Response(result=result)

    def handle_followup(self, user_id: str, followup: Followup, state: ServerState, round_no: int) -> None:
        """Absorb a client follow-up message into server state."""
