"""The no-verification baseline: today's CVS, fully trusting the server.

Clients accept every answer at face value.  Used as the control in the
attack-gallery experiments: every attack succeeds silently against it,
which is the status quo the paper sets out to fix.
"""

from __future__ import annotations

from repro.mtree.database import Query
from repro.protocols.base import (
    ClientContext,
    ProtocolClient,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)


class NaiveServer(ServerProtocol):
    """Executes queries and returns bare answers (VO included but unused)."""

    # Responses carry no state commitment the client checks, so only
    # answer-content divergence counts as a differing response action.
    responses_commit_state = False

    def handle_request(self, user_id: str, request: Request, state: ServerState, round_no: int) -> Response:
        if request.query is None:
            raise ValueError("naive protocol has no internal requests")
        result = state.database.execute(request.query)
        state.ctr += 1
        return Response(result=result)


class NaiveClient(ProtocolClient):
    """Believes everything; never detects anything."""

    def handle_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        self.completed_transactions += 1
        return response.result.answer
