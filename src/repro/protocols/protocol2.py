"""Protocol II (paper Section 4.3): XOR state registers, no signatures.

The server returns ``(Q(D), v(Q, D), ctr, j)`` -- no signature, no
blocking follow-up message.  Each client keeps two registers:

* ``sigma_i`` -- the XOR of the *tagged* states it has seen, where a
  state is ``h(M(D) || ctr || j)`` and ``j`` is the user that validated
  the transition *into* that state;
* ``last_i`` -- the tagged state its own latest operation produced.

Tagging states with the validating user is the crucial refinement over
a plain XOR of ``h(M(D) || ctr)`` values: it forces in-degree <= 1 in
the seen-state graph, which together with the per-user counter
regression check makes Lemma 4.1 applicable -- at a successful sync the
graph must be one directed path, so the server executed a single serial
history (Theorem 4.2).  Without the tag, the Figure 3 replay makes all
intermediate states cancel and the XOR check passes despite a fork; see
:mod:`repro.protocols.graph` and benchmark E3.

At sync, users broadcast ``sigma_i`` and the check succeeds iff for
some user ``i``: ``S0 XOR last_i == XOR_k sigma_k`` where ``S0`` is the
tagged initial state.

Indexing convention (the paper is loose here): ``ctr`` counts completed
operations; the state after n operations carries counter field n and
owner = the user whose operation produced it, with the initial state
owned by the empty user id.  The server returns the pre-operation
counter ``ctr = n`` and ``j`` = owner of the current state.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest, hash_tagged_state, xor_all
from repro.mtree.database import Query
from repro.mtree.proofs import ProofError
from repro.protocols.base import (
    ClientContext,
    DeviationDetected,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.protocols.localization import CheckpointRing
from repro.protocols.syncbase import SyncingClient
from repro.protocols.verify import derive_outcome

META_LAST_USER = "p2.last_user"
INITIAL_OWNER = ""


def initial_state_tag(initial_root: Digest) -> Digest:
    """The tagged initial state S0 (common knowledge among users)."""
    return hash_tagged_state(initial_root, 0, INITIAL_OWNER)


class Protocol2Server(ServerProtocol):
    """Server half: return (answer, VO, ctr, last user); no blocking."""

    responses_commit_state = True

    def initialize(self, state: ServerState) -> None:
        state.meta.setdefault(META_LAST_USER, INITIAL_OWNER)
        state.ctr = 0

    def handle_request(self, user_id: str, request: Request, state: ServerState, round_no: int) -> Response:
        if request.query is None:
            raise ValueError("Protocol II has no internal requests")
        result = state.database.execute(request.query)
        response = Response(
            result=result,
            extras={"ctr": state.ctr, "last_user": state.meta[META_LAST_USER]},
        )
        state.ctr += 1
        state.meta[META_LAST_USER] = user_id
        return response


class Protocol2Client(SyncingClient):
    """Client half: accumulate tagged states; sync via XOR telescoping."""

    def __init__(
        self,
        user_id: str,
        user_ids: list[str],
        k: int,
        initial_root: Digest,
        order: int = 8,
        keep_checkpoints: bool = False,
        checkpoint_capacity: int = 64,
        enforce_counter_check: bool = True,
    ) -> None:
        super().__init__(user_id, user_ids, k)
        # Ablation switch (benchmarks only): disabling the step-4
        # regression check re-opens the same-user double-counter hole
        # in Lemma 4.1's in-degree argument.
        self._enforce_counter_check = enforce_counter_check
        self._order = order
        self._initial_tag = initial_state_tag(initial_root)
        self.sigma = Digest.zero()
        self.last = Digest.zero()  # zero means "no operation yet"
        self.gctr = 0
        # Optional fault-localisation support (future-work item (1)):
        # snapshot the registers after every operation into a bounded
        # ring; see repro.protocols.localization.  The capacity bounds
        # both memory and how far back a fault can be localised.
        self.checkpoints = CheckpointRing(checkpoint_capacity) if keep_checkpoints else None

    def _verify_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        try:
            ctr = int(response.extras["ctr"])
            last_user = response.extras["last_user"]
        except (KeyError, TypeError, ValueError):
            raise DeviationDetected(self.user_id, "malformed Protocol II response") from None

        # Step 4: the per-user counter regression check.  Without it two
        # transitions out of the same (state, ctr) could be validated by
        # the *same* user, breaking the in-degree argument of Lemma 4.1.
        if self._enforce_counter_check and ctr < self.gctr:
            raise DeviationDetected(
                self.user_id,
                f"operation counter regressed: ctr={ctr} after this user "
                f"already advanced it to {self.gctr}",
            )
        if ctr == 0 and last_user != INITIAL_OWNER:
            raise DeviationDetected(self.user_id, "initial state attributed to a user")

        try:
            outcome = derive_outcome(query, response.result, self._order)
        except ProofError as exc:
            raise DeviationDetected(self.user_id, f"verification object rejected: {exc}") from exc

        old_tag = hash_tagged_state(outcome.old_root, ctr, last_user)
        new_tag = hash_tagged_state(outcome.new_root, ctr + 1, self.user_id)
        self.sigma = self.sigma ^ old_tag ^ new_tag
        self.last = new_tag
        self.gctr = ctr + 1
        if self.checkpoints is not None:
            self.checkpoints.record(self.gctr, self.sigma, self.last)
        return outcome.answer

    # -- sync ------------------------------------------------------------------

    def _sync_payload(self) -> dict:
        return {"sigma": self.sigma, "last": self.last}

    def _evaluate_sync(self, data: dict[str, dict]) -> bool:
        total = xor_all(entry["sigma"] for entry in data.values())
        if not self.last:
            # A user that never operated succeeds only on the pristine
            # system (nobody operated, total XOR is zero).
            return total == Digest.zero()
        return (self._initial_tag ^ total) == self.last

    def state_size(self) -> int:
        # sigma, last, gctr: constant regardless of history length.
        return super().state_size() + 3


class Protocol2StrongClient(Protocol2Client):
    """The *stronger* bound the paper mentions but does not construct
    (Section 2.2.1): "the protocol should enable deviation detection
    before any k further operations are performed on the data, and not
    k operations per user".

    Observation: the server's counter is global, and every response
    reveals it.  A client therefore knows the total operation count
    whenever it completes an operation -- so instead of counting its
    *own* operations since the last sync, it announces a sync as soon
    as the *global* counter has advanced k past the last synchronised
    point.  Any active user notices the threshold crossing, whichever
    users performed the operations, so at most k total operations (plus
    the in-flight slack of concurrently issued ones) separate a
    deviation from the next sync.

    The residual caveat is inherent: if *no* user operates, nothing is
    learned -- but then no operations are lost either.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._last_sync_gctr = 0

    def wants_sync(self) -> bool:
        return (self.gctr - self._last_sync_gctr) >= self.k and not self._sync_data

    def _receive_sync_verdict(self, tag, sender, success, ctx) -> None:
        super()._receive_sync_verdict(tag, sender, success, ctx)
        if tag not in self._sync_verdicts:  # the sync just completed
            self._last_sync_gctr = max(self._last_sync_gctr, self.gctr)
