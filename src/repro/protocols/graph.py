"""The seen-state transition graph and Lemma 4.1 (paper Section 4.3).

Protocol II's correctness argument visualises the states users saw as a
directed multigraph: nodes are tagged states ``h(M(D) || ctr || user)``
and each verified operation contributes one edge from the state it
consumed to the state it produced.  Lemma 4.1 says that a graph with

* P1: no isolated vertices,
* P2: in-degree at most 1 everywhere,
* P3: no directed cycles,
* P4: exactly two odd-total-degree vertices, one of in-degree 0,

is a single directed path -- i.e. the server executed one serial
history.  This module provides the graph, the property checks, and the
path decision both for tests of the lemma itself and for the Figure 3
analysis (where *untagged* states violate nothing XOR-visible yet are
not a path).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.crypto.hashing import Digest, xor_all


@dataclass(frozen=True)
class Transition:
    """One verified operation: consumed ``old`` state, produced ``new``."""

    old: Digest
    new: Digest


@dataclass
class StateGraph:
    """A directed multigraph over state digests."""

    transitions: list[Transition] = field(default_factory=list)

    def add(self, old: Digest, new: Digest) -> None:
        self.transitions.append(Transition(old=old, new=new))

    # -- degree bookkeeping ---------------------------------------------------

    def nodes(self) -> set[Digest]:
        found: set[Digest] = set()
        for transition in self.transitions:
            found.add(transition.old)
            found.add(transition.new)
        return found

    def in_degrees(self) -> Counter:
        return Counter(t.new for t in self.transitions)

    def out_degrees(self) -> Counter:
        return Counter(t.old for t in self.transitions)

    def total_degrees(self) -> Counter:
        degrees = Counter()
        for transition in self.transitions:
            degrees[transition.old] += 1
            degrees[transition.new] += 1
        return degrees

    # -- Lemma 4.1 property checks ---------------------------------------------

    def p1_no_isolated_vertices(self) -> bool:
        """Trivially true for a graph built from transitions: every node
        is an endpoint of some edge.  Present for completeness."""
        return True

    def p2_indegree_at_most_one(self) -> bool:
        return all(count <= 1 for count in self.in_degrees().values())

    def p3_acyclic(self) -> bool:
        adjacency: dict[Digest, list[Digest]] = {}
        for transition in self.transitions:
            adjacency.setdefault(transition.old, []).append(transition.new)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Digest, int] = {}

        for start in list(adjacency):
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[Digest, int]] = [(start, 0)]
            colour[start] = GREY
            while stack:
                node, child_index = stack[-1]
                children = adjacency.get(node, [])
                if child_index >= len(children):
                    colour[node] = BLACK
                    stack.pop()
                    continue
                stack[-1] = (node, child_index + 1)
                child = children[child_index]
                state = colour.get(child, WHITE)
                if state == GREY:
                    return False
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
        return True

    def p4_two_odd_vertices_one_source(self) -> bool:
        odd = [node for node, degree in self.total_degrees().items() if degree % 2 == 1]
        if len(odd) != 2:
            return False
        in_degrees = self.in_degrees()
        return any(in_degrees.get(node, 0) == 0 for node in odd)

    def lemma41_properties(self) -> dict[str, bool]:
        return {
            "P1": self.p1_no_isolated_vertices(),
            "P2": self.p2_indegree_at_most_one(),
            "P3": self.p3_acyclic(),
            "P4": self.p4_two_odd_vertices_one_source(),
        }

    def is_directed_path(self) -> bool:
        """Direct decision: do the edges form one simple directed path
        covering every node?"""
        if not self.transitions:
            return False
        in_degrees = self.in_degrees()
        out_degrees = self.out_degrees()
        nodes = self.nodes()
        sources = [n for n in nodes if in_degrees.get(n, 0) == 0]
        if len(sources) != 1:
            return False
        if any(count > 1 for count in in_degrees.values()):
            return False
        if any(count > 1 for count in out_degrees.values()):
            return False
        # Walk from the unique source; must traverse every edge.
        next_hop = {t.old: t.new for t in self.transitions}
        if len(next_hop) != len(self.transitions):
            return False  # duplicate out-edges collapsed => multigraph fan-out
        current = sources[0]
        visited = 1
        seen = {current}
        while current in next_hop:
            current = next_hop[current]
            if current in seen:
                return False
            seen.add(current)
            visited += 1
        return visited == len(nodes)

    # -- the XOR view ------------------------------------------------------------

    def xor_of_transitions(self) -> Digest:
        """XOR over all edges of (old XOR new) -- what the union of all
        sigma registers computes.

        XOR is associative, so instead of materialising a per-edge
        ``old ^ new`` digest this folds both endpoints of every edge in
        a single :func:`xor_all` pass.
        """
        return xor_all(d for t in self.transitions for d in (t.old, t.new))

    def xor_check_passes(self, initial: Digest, last: Digest) -> bool:
        """The Protocol II sync predicate for a candidate (initial, last)."""
        return (initial ^ last) == self.xor_of_transitions()


def lemma41_path_theorem(graph: StateGraph) -> bool:
    """Lemma 4.1 as a decision: properties P1-P4 imply a directed path.

    Returns whether the *conclusion* matches the direct path check --
    used by the property-based tests to validate the lemma over random
    graphs (the implication, not the converse)."""
    properties = graph.lemma41_properties()
    if all(properties.values()):
        return graph.is_directed_path()
    return True  # lemma says nothing when a hypothesis fails
