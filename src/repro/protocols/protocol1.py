"""Protocol I (paper Section 4.2): signed root digests + counter sync.

Per operation, the server returns ``(Q(D), v(Q, D), ctr, j, sig)``
where ``sig = sign_j(h(M(D) || ctr))`` was produced by the last user
to operate.  The client

1. derives ``M(D)`` from the VO and checks ``sig`` is a legitimate
   signature of ``h(M(D) || ctr)`` by ``j`` (unforgeable by the
   server);
2. derives the post-operation root ``M(D')`` itself and returns
   ``sign_i(h(M(D') || ctr + 1))`` to the server -- the extra,
   *blocking* message: the server may not answer the next query until
   it holds this signature.

Every k operations the users sync over the broadcast channel: each
broadcasts its total operation count ``lctr_i``, and the check
succeeds iff some user's ``gctr_i`` equals ``sum_k lctr_k``
(Theorem 4.1).

Notes on the paper text: the paper maintains ``gctr_i = ctr + 1`` but
never states the per-response regression check explicitly; we apply
``ctr >= gctr_i`` (reject a counter older than one we have already
seen), which Protocols II/III state outright ("reports error if
ctr <= gctr_i" is a typo -- with ``gctr_i = ctr + 1`` a user's own
back-to-back operations would trip it; the intended check is a strict
regression test).
"""

from __future__ import annotations

from repro.crypto.hashing import hash_state
from repro.crypto.signatures import Signature, Signer, Verifier
from repro.mtree.database import Query
from repro.mtree.proofs import ProofError
from repro.protocols.base import (
    ClientContext,
    DeviationDetected,
    Followup,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.protocols.syncbase import SyncingClient
from repro.protocols.verify import derive_outcome

META_SIG = "p1.sig"
META_LAST_USER = "p1.last_user"
META_AWAITING = "p1.awaiting_sig"

#: Request ``extras`` marker a *batching server* stamps on every request
#: of a single-user signing run except the last: the state does not
#: block after a deferred request, so one follow-up signature -- over
#: the batch-final root -- covers the whole run.  The marker is written
#: into the request before it is WAL-logged (replay reconstructs the
#: identical run) and is stripped from wire-received requests by the
#: server, so a client cannot smuggle it in to skip its signing duty.
DEFER_FOLLOWUP_KEY = "p1.defer_followup"

#: Response ``extras`` flag telling the client whether this response
#: closes a signing run (sign and send the follow-up) or sits inside
#: one (verify, but do not sign).  Absent means final -- the unbatched
#: servers never set it, and their every response expects a signature.
BATCH_FINAL_KEY = "batch_final"


def bootstrap_server_state(state: ServerState, elected: Signer) -> None:
    """Initialisation step: the elected user signs ``h(M(D0) || 0)`` and
    deposits it with the server."""
    initial = hash_state(state.database.root_digest(), 0)
    state.meta[META_SIG] = elected.sign(initial)
    state.meta[META_LAST_USER] = elected.signer_id
    state.meta[META_AWAITING] = False
    state.ctr = 0


class Protocol1Server(ServerProtocol):
    """Server half: attach counter + last signature, then block until the
    operating user returns a signature over the new state."""

    responses_commit_state = True
    blocks_after_request = True
    supports_deferred_followup = True

    def blocked(self, state: ServerState) -> bool:
        return bool(state.meta.get(META_AWAITING))

    def handle_request(self, user_id: str, request: Request, state: ServerState, round_no: int) -> Response:
        if request.query is None:
            raise ValueError("Protocol I has no internal requests")
        result = state.database.execute(request.query)
        final = not request.extras.get(DEFER_FOLLOWUP_KEY)
        response = Response(
            result=result,
            extras={
                "ctr": state.ctr,
                "last_user": state.meta[META_LAST_USER],
                "sig": state.meta[META_SIG],
                BATCH_FINAL_KEY: final,
            },
        )
        state.ctr += 1
        state.meta[META_AWAITING] = final
        return response

    def handle_followup(self, user_id: str, followup: Followup, state: ServerState, round_no: int) -> None:
        signature = followup.extras.get("sig")
        if isinstance(signature, Signature):
            state.meta[META_SIG] = signature
            state.meta[META_LAST_USER] = user_id
        state.meta[META_AWAITING] = False


class Protocol1Client(SyncingClient):
    """Client half: verify the chain of signed states; sync on counts."""

    def __init__(
        self,
        user_id: str,
        user_ids: list[str],
        k: int,
        signer: Signer,
        verifier: Verifier,
        order: int = 8,
    ) -> None:
        super().__init__(user_id, user_ids, k)
        if signer.signer_id != user_id:
            raise ValueError("signer identity must match the user id")
        self._signer = signer
        self._verifier = verifier
        self._order = order
        self.lctr = 0  # total operations performed by this user
        self.gctr = 0  # ctr value the *next* response must meet or exceed

    def _verify_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        try:
            ctr = int(response.extras["ctr"])
            last_user = response.extras["last_user"]
            signature = response.extras["sig"]
        except (KeyError, TypeError, ValueError):
            raise DeviationDetected(self.user_id, "malformed Protocol I response") from None

        if ctr < self.gctr:
            raise DeviationDetected(
                self.user_id,
                f"operation counter regressed: server presented ctr={ctr} "
                f"after this user already advanced it to {self.gctr}",
            )

        try:
            outcome = derive_outcome(query, response.result, self._order)
        except ProofError as exc:
            raise DeviationDetected(self.user_id, f"verification object rejected: {exc}") from exc

        expected_state = hash_state(outcome.old_root, ctr)
        if not isinstance(signature, Signature) or signature.signer_id != last_user:
            raise DeviationDetected(self.user_id, "state signature does not name the claimed last user")
        if not self._verifier.verify(signature, expected_state):
            raise DeviationDetected(
                self.user_id,
                "illegitimate state signature: the presented root digest and "
                "counter were never signed by the claimed user",
            )

        self.lctr += 1
        self.gctr = ctr + 1
        new_state = hash_state(outcome.new_root, ctr + 1)
        ctx.send_to_server(Followup(extras={"sig": self._signer.sign(new_state)}))
        return outcome.answer

    # -- sync ------------------------------------------------------------------

    def _sync_payload(self) -> dict:
        return {"lctr": self.lctr}

    def _evaluate_sync(self, data: dict[str, dict]) -> bool:
        total = sum(entry["lctr"] for entry in data.values())
        return self.gctr == total

    def state_size(self) -> int:
        # lctr, gctr, signer key, sync counters: constant.
        return super().state_size() + 2
