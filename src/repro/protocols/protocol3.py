"""Protocol III (paper Section 4.4): epoch audits, no broadcast channel.

The broadcast channel of Protocols I/II is simulated *through the
untrusted server*, which works because the permitted workload is
restricted: every user performs at least two operations every epoch
(t rounds).  Per epoch e:

* on its **first** operation in epoch e+1, a user learns from the
  server that the epoch advanced; it backs up its (sigma, last)
  registers -- their values as of the end of epoch e -- and resets
  sigma for the new epoch;
* on its **second** operation in e+1, the user deposits the backup on
  the server, *signed*, so the server cannot forge or alter it;
* in epoch e+2, the designated auditor (round-robin: user e mod n)
  fetches every user's signed epoch-e deposit plus the epoch-(e-1)
  deposits, and runs the Protocol II telescoping check per epoch:
  ``start_e XOR last_i^e == XOR_k sigma_k^e`` for some user i, where
  ``start_e`` is the closing state of epoch e-1 (one of the deposited
  ``last_j^{e-1}`` values; ``S0`` for epoch 0).

A fault is detected within two epochs (Theorem 4.3): any fork makes
some user's epoch deposit missing, stale, or inconsistent with the
chain the auditor reconstructs.

Clients also keep a p-partially-synchronous local clock and reject
epoch announcements that are implausible under the drift bound, so the
server cannot stretch or shrink epochs arbitrarily.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_epoch_snapshot, hash_tagged_state, xor_all
from repro.crypto.signatures import Signature, Signer, Verifier
from repro.mtree.database import Query, QueryResult
from repro.mtree.proofs import ProofError
from repro.protocols.base import (
    ClientContext,
    DeviationDetected,
    ProtocolClient,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.protocols.protocol2 import INITIAL_OWNER, initial_state_tag
from repro.protocols.verify import derive_outcome
from repro.simulation.clock import LocalClock

META_LAST_USER = "p3.last_user"
META_DEPOSITS = "p3.deposits"  # {epoch: {user_id: EpochDeposit}}


@dataclass(frozen=True)
class EpochDeposit:
    """A user's signed end-of-epoch snapshot of (sigma, last)."""

    user_id: str
    epoch: int
    sigma: Digest
    last: Digest
    signature: Signature

    def digest(self) -> Digest:
        return hash_epoch_snapshot(self.sigma, self.last, self.epoch, self.user_id)


class Protocol3Server(ServerProtocol):
    """Server half: Protocol II responses plus epoch numbers, deposit
    storage, and deposit retrieval for auditors."""

    responses_commit_state = True

    def __init__(self, epoch_length: int) -> None:
        if epoch_length < 4:
            raise ValueError("epoch length must be at least 4 rounds")
        self.epoch_length = epoch_length

    def initialize(self, state: ServerState) -> None:
        state.meta.setdefault(META_LAST_USER, INITIAL_OWNER)
        state.meta.setdefault(META_DEPOSITS, {})
        state.ctr = 0

    def current_epoch(self, round_no: int) -> int:
        return round_no // self.epoch_length

    def handle_request(self, user_id: str, request: Request, state: ServerState, round_no: int) -> Response:
        epoch = self.current_epoch(round_no)
        deposit = request.extras.get("deposit")
        if isinstance(deposit, EpochDeposit):
            state.meta[META_DEPOSITS].setdefault(deposit.epoch, {})[deposit.user_id] = deposit

        if request.query is None:
            # Auditor fetch: return the deposits for the requested epochs.
            wanted = request.extras.get("fetch_epochs", [])
            deposits = {
                e: dict(state.meta[META_DEPOSITS].get(e, {}))
                for e in wanted
            }
            return Response(
                result=QueryResult(answer=None, proof=None),
                extras={"epoch": epoch, "deposits": deposits},
            )

        result = state.database.execute(request.query)
        response = Response(
            result=result,
            extras={
                "ctr": state.ctr,
                "last_user": state.meta[META_LAST_USER],
                "epoch": epoch,
            },
        )
        state.ctr += 1
        state.meta[META_LAST_USER] = user_id
        return response


class Protocol3Client(ProtocolClient):
    """Client half: Protocol II registers + epoch deposits + audits."""

    def __init__(
        self,
        user_id: str,
        user_ids: list[str],
        epoch_length: int,
        initial_root: Digest,
        signer: Signer,
        verifier: Verifier,
        order: int = 8,
        p: int = 1,
        clock_seed: int = 0,
    ) -> None:
        super().__init__(user_id)
        self.user_ids = sorted(user_ids)
        self.epoch_length = epoch_length
        self._order = order
        self._initial_tag = initial_state_tag(initial_root)
        self._signer = signer
        self._verifier = verifier
        self.sigma = Digest.zero()
        self.last = Digest.zero()
        self.gctr = 0
        self.current_epoch = 0
        self._pending_deposit: EpochDeposit | None = None
        self._clock = LocalClock(p=p, tick_probability=1.0 if p == 1 else 0.7, seed=clock_seed)
        # Audit bookkeeping.
        self._audited_epochs: set[int] = set()
        self._audit_in_flight: int | None = None
        self._verified_epoch_ends: dict[int, Digest] = {-1: self._initial_tag}

    # -- epoch / audit scheduling -------------------------------------------

    def auditor_of(self, epoch: int) -> str:
        """Round-robin epoch-auditor assignment."""
        return self.user_ids[epoch % len(self.user_ids)]

    def on_round(self, ctx: ClientContext) -> None:
        self._clock.advance()
        if self._audit_in_flight is not None:
            return
        due = self._next_audit_due()
        if due is None:
            return
        if getattr(ctx, "has_pending", None) is not None and ctx.has_pending():
            return
        self._audit_in_flight = due
        request = Request(
            query=None,
            extras={"fetch_epochs": [due - 1, due] if due > 0 else [due], "audit_epoch": due},
        )
        ctx.issue_internal(request)

    def _next_audit_due(self) -> int | None:
        """The oldest epoch assigned to us that is ready for audit."""
        for epoch in range(0, self.current_epoch - 1):
            if epoch in self._audited_epochs:
                continue
            if self.auditor_of(epoch) != self.user_id:
                self._audited_epochs.add(epoch)  # someone else's job
                continue
            return epoch
        return None

    # -- request / response -----------------------------------------------

    def make_request(self, query: Query) -> Request:
        extras = {}
        if self._pending_deposit is not None:
            # Second operation of the new epoch: deposit the signed
            # snapshot of the previous epoch on the server.
            extras["deposit"] = self._pending_deposit
            self._pending_deposit = None
        return Request(query=query, extras=extras)

    def handle_response(self, query: Query, response: Response, ctx: ClientContext) -> object:
        if query is None:
            answer = self._handle_audit_response(response)
            return answer
        self._observe_epoch(response)
        answer = self._verify_operation(query, response)
        self.completed_transactions += 1
        return answer

    def _observe_epoch(self, response: Response) -> None:
        epoch = response.extras.get("epoch")
        if not isinstance(epoch, int):
            raise DeviationDetected(self.user_id, "response lacks an epoch number")
        lo, hi = self._clock.plausible_epochs(self.epoch_length)
        if not (lo - 1 <= epoch <= hi + 1):
            raise DeviationDetected(
                self.user_id,
                f"implausible epoch announcement {epoch}: local clock admits "
                f"only [{lo - 1}, {hi + 1}]",
            )
        if epoch < self.current_epoch:
            raise DeviationDetected(self.user_id, f"epoch went backwards: {self.current_epoch} -> {epoch}")
        if epoch == self.current_epoch:
            return
        if epoch > self.current_epoch + 1 and self.completed_transactions > 0:
            # With >= 2 operations per epoch a user can never skip a
            # whole epoch between consecutive operations.
            raise DeviationDetected(
                self.user_id,
                f"epoch skipped: {self.current_epoch} -> {epoch} between consecutive operations",
            )
        # First operation of a new epoch: back up the registers as they
        # stood at the end of the previous epoch, reset sigma.
        closed = self.current_epoch
        snapshot_digest = hash_epoch_snapshot(self.sigma, self.last, closed, self.user_id)
        self._pending_deposit = EpochDeposit(
            user_id=self.user_id,
            epoch=closed,
            sigma=self.sigma,
            last=self.last,
            signature=self._signer.sign(snapshot_digest),
        )
        self.sigma = Digest.zero()
        self.current_epoch = epoch

    def _verify_operation(self, query: Query, response: Response) -> object:
        try:
            ctr = int(response.extras["ctr"])
            last_user = response.extras["last_user"]
        except (KeyError, TypeError, ValueError):
            raise DeviationDetected(self.user_id, "malformed Protocol III response") from None
        if ctr < self.gctr:
            raise DeviationDetected(
                self.user_id,
                f"operation counter regressed: ctr={ctr} after this user "
                f"already advanced it to {self.gctr}",
            )
        if ctr == 0 and last_user != INITIAL_OWNER:
            raise DeviationDetected(self.user_id, "initial state attributed to a user")
        try:
            outcome = derive_outcome(query, response.result, self._order)
        except ProofError as exc:
            raise DeviationDetected(self.user_id, f"verification object rejected: {exc}") from exc
        old_tag = hash_tagged_state(outcome.old_root, ctr, last_user)
        new_tag = hash_tagged_state(outcome.new_root, ctr + 1, self.user_id)
        self.sigma = self.sigma ^ old_tag ^ new_tag
        self.last = new_tag
        self.gctr = ctr + 1
        return outcome.answer

    # -- the audit itself ---------------------------------------------------

    def _handle_audit_response(self, response: Response) -> None:
        epoch = self._audit_in_flight
        self._audit_in_flight = None
        if epoch is None:
            raise DeviationDetected(self.user_id, "unsolicited audit response")
        deposits = response.extras.get("deposits", {})
        current = self._checked_deposits(deposits.get(epoch, {}), epoch)
        if epoch == 0:
            start_candidates = [self._initial_tag]
        else:
            previous = self._checked_deposits(deposits.get(epoch - 1, {}), epoch - 1)
            start_candidates = [deposit.last for deposit in previous.values()]

        sigma_total = xor_all(deposit.sigma for deposit in current.values())
        # (start ^ last) == total  <=>  last == start ^ total: one XOR
        # per start candidate, then set membership over the deposits.
        targets = {start ^ sigma_total for start in start_candidates}
        for deposit in current.values():
            if deposit.last in targets:
                self._audited_epochs.add(epoch)
                self._verified_epoch_ends[epoch] = deposit.last
                return None
        raise DeviationDetected(
            self.user_id,
            f"epoch {epoch} audit failed: deposited registers are "
            "inconsistent with a single serial execution",
        )

    def _checked_deposits(self, raw: dict, epoch: int) -> dict[str, EpochDeposit]:
        """Require a correctly signed deposit from *every* user."""
        checked: dict[str, EpochDeposit] = {}
        for user_id in self.user_ids:
            deposit = raw.get(user_id)
            if not isinstance(deposit, EpochDeposit):
                raise DeviationDetected(
                    self.user_id,
                    f"epoch {epoch} audit: user {user_id!r} has no deposit "
                    "(every user performs two operations per epoch, so one must exist)",
                )
            if deposit.epoch != epoch or deposit.user_id != user_id:
                raise DeviationDetected(self.user_id, f"epoch {epoch} audit: mislabelled deposit for {user_id!r}")
            if not self._verifier.verify(deposit.signature, deposit.digest()):
                raise DeviationDetected(self.user_id, f"epoch {epoch} audit: forged deposit signature for {user_id!r}")
            checked[user_id] = deposit
        return checked

    def state_size(self) -> int:
        # sigma, last, gctr, epoch, one pending deposit: constant.
        return 5
