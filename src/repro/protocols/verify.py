"""Shared response-verification logic used by all protocol clients.

Every protocol's query step boils down to: take the server's answer and
verification object, derive the (old, new) root digests that the VO
vouches for, and authenticate the old root through protocol state
(Protocol I: the previous user's signature; Protocols II/III: the XOR
register algebra).  This module implements the first half -- deriving
roots and the trustworthy answer from ``v(Q, D)`` -- once, so the
protocols only differ in how they authenticate roots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest
from repro.mtree.database import (
    DeleteQuery,
    Query,
    QueryResult,
    RangeQuery,
    ReadQuery,
    WriteQuery,
)
from repro.mtree.forest import (
    ForestRangeProof,
    ForestReadProof,
    ForestUpdateProof,
    StoreSpec,
    derive_forest_update_roots,
    implied_root_for_forest_range,
    implied_root_for_forest_read,
)
from repro.mtree.proofs import (
    ProofError,
    RangeProof,
    ReadProof,
    UpdateProof,
    derive_update_roots,
    implied_root_for_range,
    implied_root_for_read,
)
from repro.obs import runtime as _obs
from repro.obs.metrics import BYTE_BUCKETS, REGISTRY as _registry
from repro.obs.tracing import TRACER as _tracer

_OPS_VERIFIED = _registry.counter(
    "protocol.ops_verified", "responses whose VO checked out, by query kind")
_VERIFY_FAILURES = _registry.counter(
    "protocol.verify_failures", "responses rejected by VO verification")
_VO_BYTES = _registry.histogram(
    "protocol.vo_bytes", "verification object size on the wire",
    buckets=BYTE_BUCKETS)


@dataclass(frozen=True)
class VerifiedOutcome:
    """What a VO plus answer, checked for internal consistency, yields."""

    old_root: Digest
    new_root: Digest
    answer: object

    @property
    def is_update(self) -> bool:
        return self.old_root != self.new_root


def derive_outcome(
    query: Query, result: QueryResult, order: int | StoreSpec
) -> VerifiedOutcome:
    """Derive roots and answer from a response, or raise ProofError.

    For reads the old and new roots coincide; for updates the new root
    is *recomputed by the client* from the pre-update VO, never taken
    from the server.  ``order`` may be a bare B+-tree order (single
    tree) or a full :class:`StoreSpec`; in sharded mode the proofs must
    be the two-level forest kinds and the derived roots are top roots.
    """
    if not _obs.enabled:
        return _derive_outcome(query, result, order)
    kind = type(query).__name__
    with _tracer.span("protocol.verify_vo"):
        try:
            outcome = _derive_outcome(query, result, order)
        except ProofError:
            _VERIFY_FAILURES.inc(kind=kind)
            raise
    _OPS_VERIFIED.inc(kind=kind)
    # Lazy import: repro.wire reaches back into the protocol modules.
    from repro.wire import WireError, wire_size

    try:
        _VO_BYTES.observe(wire_size(result.proof), kind=kind)
    except WireError:  # pragma: no cover - test-local proof stand-ins
        pass
    return outcome


def _derive_outcome(
    query: Query, result: QueryResult, order: int | StoreSpec
) -> VerifiedOutcome:
    spec = StoreSpec.coerce(order)
    if spec.sharded:
        return _derive_forest_outcome(query, result, spec)
    order = spec.order
    proof = result.proof
    if isinstance(query, ReadQuery):
        if not isinstance(proof, ReadProof):
            raise ProofError("read query answered with a non-read proof")
        root = implied_root_for_read(proof, query.key)
        if result.answer != proof.value:
            raise ProofError("server answer disagrees with its own proof")
        return VerifiedOutcome(old_root=root, new_root=root, answer=proof.value)
    if isinstance(query, RangeQuery):
        if not isinstance(proof, RangeProof):
            raise ProofError("range query answered with a non-range proof")
        if (proof.low, proof.high) != (query.low, query.high):
            raise ProofError("range proof covers a different range")
        root = implied_root_for_range(proof)
        if tuple(result.answer) != proof.entries:
            raise ProofError("server answer disagrees with its own proof")
        return VerifiedOutcome(old_root=root, new_root=root, answer=proof.entries)
    if isinstance(query, WriteQuery):
        if not isinstance(proof, UpdateProof) or proof.operation != "insert":
            raise ProofError("write query answered with a non-insert proof")
        old_root, new_root = derive_update_roots(proof, order, query.key, query.value)
        return VerifiedOutcome(old_root=old_root, new_root=new_root, answer=None)
    if isinstance(query, DeleteQuery):
        if not isinstance(proof, UpdateProof) or proof.operation != "delete":
            raise ProofError("delete query answered with a non-delete proof")
        old_root, new_root = derive_update_roots(proof, order, query.key)
        return VerifiedOutcome(old_root=old_root, new_root=new_root, answer=None)
    raise ProofError(f"unknown query type {type(query).__name__}")


def _derive_forest_outcome(
    query: Query, result: QueryResult, spec: StoreSpec
) -> VerifiedOutcome:
    """Sharded stores answer with two-level proofs; roots are top roots."""
    proof = result.proof
    if isinstance(query, ReadQuery):
        if not isinstance(proof, ForestReadProof):
            raise ProofError("read query answered with a non-read proof")
        root = implied_root_for_forest_read(proof, query.key, spec)
        if result.answer != proof.inner.value:
            raise ProofError("server answer disagrees with its own proof")
        return VerifiedOutcome(old_root=root, new_root=root, answer=proof.inner.value)
    if isinstance(query, RangeQuery):
        if not isinstance(proof, ForestRangeProof):
            raise ProofError("range query answered with a non-range proof")
        if (proof.low, proof.high) != (query.low, query.high):
            raise ProofError("range proof covers a different range")
        root = implied_root_for_forest_range(proof, spec)
        if tuple(result.answer) != proof.entries:
            raise ProofError("server answer disagrees with its own proof")
        return VerifiedOutcome(old_root=root, new_root=root, answer=proof.entries)
    if isinstance(query, WriteQuery):
        if not isinstance(proof, ForestUpdateProof) or proof.operation != "insert":
            raise ProofError("write query answered with a non-insert proof")
        old_root, new_root = derive_forest_update_roots(
            proof, spec, query.key, query.value)
        return VerifiedOutcome(old_root=old_root, new_root=new_root, answer=None)
    if isinstance(query, DeleteQuery):
        if not isinstance(proof, ForestUpdateProof) or proof.operation != "delete":
            raise ProofError("delete query answered with a non-delete proof")
        old_root, new_root = derive_forest_update_roots(proof, spec, query.key)
        return VerifiedOutcome(old_root=old_root, new_root=new_root, answer=None)
    raise ProofError(f"unknown query type {type(query).__name__}")
