"""A command-line Trusted CVS client over a file-backed repository.

Usage (also via ``python -m repro``)::

    repro init REPO                                create a repository
    repro -R REPO commit PATH -m MSG [-a AUTHOR]   commit stdin/--file
    repro -R REPO checkout PATH [-r REV] [--expand] print a revision
    repro -R REPO log PATH                         revision history
    repro -R REPO diff PATH -r REV [--to REV2]     unified diff
    repro -R REPO annotate PATH [-r REV]           per-line blame
    repro -R REPO ls [PREFIX]                      list live files
    repro -R REPO remove PATH [-m MSG]             cvs remove
    repro -R REPO branch PATH [-r REV | --list]    create/list branches
    repro -R REPO bcommit PATH -b BRANCH            commit onto a branch
    repro -R REPO merge PATH -b BRANCH              merge a branch to trunk
    repro -R REPO update PATH -r BASE --file F      merge head into a working file
    repro -R REPO trust                            show the trust anchor
    repro -R REPO serve [-p PORT] [--durable] [--async] [--workers N]
                                                   host the repository over TCP
    repro --remote HOST:PORT ...                   run any command against a server
    repro obs-report [--protocol P] [--json]       simulate a workload, print obs metrics

Layout of a repository directory::

    REPO/db.snapshot         the server's Merkle tree (exact shape)
    REPO/trust/AUTHOR.digest each author's verified root digest

The trust anchor is the whole point: every command verifies the
server's answers against the author's *persisted* digest and advances
it only through verified updates.  Tamper with ``db.snapshot`` offline
and the next command fails with an integrity error instead of showing
you corrupted data.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.facade import CvsClient, CvsServer
from repro.crypto.hashing import Digest
from repro.mtree.persistence import dump_database, load_database
from repro.mtree.proofs import ProofError

DB_FILE = "db.snapshot"
TRUST_DIR = "trust"
SERVER_DIR = "server"


class CliError(Exception):
    """User-facing command failure (bad args, unknown repo, ...)."""


class RemoteServerAdapter:
    """Adapts a TCP connection to the ``CvsServer`` surface the facade
    client expects (``execute``, ``order``, ``root_digest``).

    The facade's :class:`~repro.mtree.database.ClientVerifier` does all
    the checking; this adapter just moves frames.  ``root_digest`` (used
    only for trust-on-first-use) derives the current root from a probe
    read's verification object rather than trusting any claim.
    """

    def __init__(self, host: str, port: int, order: int = 8) -> None:
        import socket as _socket

        from repro.mtree.forest import StoreSpec
        from repro.net.framing import recv_message, send_message
        from repro.protocols.base import Request, Response

        self._send, self._recv = send_message, recv_message
        self._request_cls, self._response_cls = Request, Response
        self.spec = StoreSpec.coerce(order)
        self.order = self.spec.order
        try:
            self._sock = _socket.create_connection((host, port), timeout=10)
        except OSError as exc:
            raise CliError(f"cannot reach remote server {host}:{port}: {exc}") from exc

    def execute(self, query):
        self._send(self._sock, self._request_cls(query=query, extras={"user": "cli"}))
        response = self._recv(self._sock)
        if not isinstance(response, self._response_cls):
            raise CliError("remote server closed the connection")
        return response.result

    def root_digest(self) -> Digest:
        from repro.mtree.database import ReadQuery
        from repro.mtree.proofs import implied_root_for_read

        result = self.execute(ReadQuery(b"\x00__root_probe__"))
        return implied_root_for_read(result.proof, b"\x00__root_probe__")

    def close(self) -> None:
        self._sock.close()


class Workspace:
    """A repository (local directory or remote server) plus one author's
    trust anchor."""

    def __init__(self, repo_dir: str, author: str, remote: str | None = None) -> None:
        self.repo_dir = repo_dir
        self.author = author
        self.remote = remote
        if remote:
            host, _, port_text = remote.rpartition(":")
            if not host or not port_text.isdigit():
                raise CliError(f"--remote expects HOST:PORT, got {remote!r}")
            os.makedirs(os.path.join(repo_dir, TRUST_DIR), exist_ok=True)
            self.server = RemoteServerAdapter(host, int(port_text))
        else:
            db_path = os.path.join(repo_dir, DB_FILE)
            if not os.path.isfile(db_path):
                raise CliError(f"{repo_dir!r} is not a repository (run 'repro init' first)")
            with open(db_path, "rb") as handle:
                database = load_database(handle.read())
            self.server = CvsServer(order=database.order)
            self.server._database = database
        anchor = self._load_anchor()
        if anchor is None:
            # Trust on first use for this author.
            anchor = self.server.root_digest()
        self.client = CvsClient(self.server, author=author, trusted_root=anchor)

    # -- anchor persistence --------------------------------------------------

    def _anchor_path(self) -> str:
        suffix = f"@{self.remote.replace(':', '_')}" if self.remote else ""
        return os.path.join(self.repo_dir, TRUST_DIR, f"{self.author}{suffix}.digest")

    def _load_anchor(self) -> Digest | None:
        path = self._anchor_path()
        if not os.path.isfile(path):
            return None
        with open(path, "r", encoding="ascii") as handle:
            return Digest.from_hex(handle.read().strip())

    def save(self) -> None:
        """Persist the database snapshot (local mode) and the advanced
        trust anchor."""
        if not self.remote:
            with open(os.path.join(self.repo_dir, DB_FILE), "wb") as handle:
                handle.write(dump_database(self.server._database))
        os.makedirs(os.path.join(self.repo_dir, TRUST_DIR), exist_ok=True)
        with open(self._anchor_path(), "w", encoding="ascii") as handle:
            handle.write(self.client.root_digest.hex() + "\n")


# -- commands -------------------------------------------------------------


def cmd_init(args, out) -> int:
    os.makedirs(args.repo, exist_ok=True)
    db_path = os.path.join(args.repo, DB_FILE)
    if os.path.exists(db_path):
        raise CliError(f"repository already exists at {args.repo!r}")
    server = CvsServer()
    with open(db_path, "wb") as handle:
        handle.write(dump_database(server._database))
    os.makedirs(os.path.join(args.repo, TRUST_DIR), exist_ok=True)
    print(f"initialised empty trusted repository in {args.repo}", file=out)
    print(f"root digest: {server.root_digest().hex()}", file=out)
    return 0


def cmd_commit(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    revision = workspace.client.commit(args.path, lines, args.message)
    workspace.save()
    print(f"committed {args.path} {revision.number}", file=out)
    return 0


def cmd_checkout(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    lines = workspace.client.checkout(args.path, args.revision,
                                      expand=args.expand)
    workspace.save()
    for line in lines:
        print(line, file=out)
    return 0


def cmd_log(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    for revision in workspace.client.log(args.path):
        flags = " (dead)" if revision.dead else ""
        print(f"{revision.number}  {revision.author:12s} {revision.log_message}{flags}", file=out)
    workspace.save()
    return 0


def cmd_diff(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    text = workspace.client.diff(args.path, args.revision, args.to)
    workspace.save()
    print(text, end="", file=out)
    return 0


def cmd_ls(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    for path in workspace.client.paths(args.prefix):
        print(path, file=out)
    workspace.save()
    return 0


def cmd_remove(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    revision = workspace.client.remove(args.path, args.message)
    workspace.save()
    print(f"removed {args.path} ({revision.number})", file=out)
    return 0


def cmd_branch(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    if args.list:
        for branch_id in workspace.client.branches(args.path):
            print(branch_id, file=out)
        workspace.save()
        return 0
    branch_id = workspace.client.branch(args.path, args.revision)
    workspace.save()
    print(f"created branch {branch_id} on {args.path}", file=out)
    return 0


def cmd_bcommit(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    revision = workspace.client.commit_on_branch(args.path, args.branch, lines, args.message)
    workspace.save()
    print(f"committed {args.path} {revision.number}", file=out)
    return 0


def cmd_merge(args, out) -> int:
    from repro.storage.merge import render_with_markers

    workspace = Workspace(args.repo, args.author, remote=args.remote)
    result = workspace.client.merge_branch(args.path, args.branch, args.message)
    if result.has_conflicts:
        print(f"CONFLICTS merging {args.branch} into trunk of {args.path}:", file=out)
        for line in render_with_markers(result, "trunk", args.branch):
            print(line, file=out)
        workspace.save()
        return 1
    workspace.save()
    print(f"merged {args.branch} into trunk of {args.path}", file=out)
    return 0


def cmd_update(args, out) -> int:
    from repro.storage.merge import render_with_markers

    workspace = Workspace(args.repo, args.author, remote=args.remote)
    with open(args.file, "r", encoding="utf-8") as handle:
        working = handle.read().splitlines()
    result = workspace.client.update(args.path, working, args.revision)
    merged = (render_with_markers(result, "working copy", "repository")
              if result.has_conflicts else result.lines())
    with open(args.file, "w", encoding="utf-8") as handle:
        handle.write("\n".join(merged) + ("\n" if merged else ""))
    workspace.save()
    if result.has_conflicts:
        print(f"U {args.file}: {len(result.conflicts())} conflict(s) -- markers written", file=out)
        return 1
    print(f"U {args.file}: merged cleanly", file=out)
    return 0


def _parse_endpoints(text: str) -> list[tuple[str, int]]:
    """Parse ``HOST:PORT[,HOST:PORT...]`` into endpoint tuples."""
    endpoints = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        host, _, port_text = chunk.rpartition(":")
        if not host or not port_text.isdigit():
            raise CliError(f"expected HOST:PORT, got {chunk!r}")
        endpoints.append((host, int(port_text)))
    if not endpoints:
        raise CliError("no endpoints given")
    return endpoints


def cmd_serve(args, out) -> int:
    """Host a local repository over TCP (SIGTERM/Ctrl-C to stop).

    With ``--durable`` the server keeps a write-ahead log + periodic
    snapshots under ``REPO/server/``: a crash (power cut, SIGKILL)
    loses no acknowledged write, and the next ``serve`` replays to the
    identical root digest so clients' trust anchors still verify.

    Shutdown is graceful: SIGTERM and SIGINT quiesce in-flight work,
    flush the replicator (if any), fsync the WAL, and write a final
    snapshot before exiting -- never dying mid-batch.

    Replication: ``--replicas N --key-seed S`` fixes a deterministic
    keyring shared by the whole deployment.  A primary adds
    ``--replicate-to H:P,...`` to deposit every signed root with the
    witnesses; each witness runs ``serve --witness I`` (no repository
    needed -- it banks deposits, not the tree, in its own durable store
    under ``REPO/witness-wI/``).
    """
    import signal
    import threading

    from repro.mtree.persistence import load_database as _load
    from repro.net.aserver import serve_async_in_thread
    from repro.net.server import serve_in_thread
    from repro.storage.atomic import LockError

    keys = None
    if args.replicas:
        from repro.net.replication import make_replica_keys

        keys = make_replica_keys(args.replicas, args.key_seed)
    database = None
    db_path = None
    protocol = None
    replicator = None
    if args.witness is not None:
        from repro.net.replication import WitnessProtocol, witness_name

        if keys is None:
            raise CliError("--witness requires --replicas N (the witness count)")
        if not 0 <= args.witness < args.replicas:
            raise CliError(f"--witness must be in [0, {args.replicas})")
        wid = witness_name(args.witness)
        protocol = WitnessProtocol(wid, keys.witnesses[args.witness],
                                   keys.verifier)
        data_dir = (os.path.join(args.repo, f"witness-{wid}")
                    if args.durable else None)
        role = f"witness {wid} (1 of {args.replicas})"
    else:
        db_path = os.path.join(args.repo, DB_FILE)
        if not os.path.isfile(db_path):
            raise CliError(f"{args.repo!r} is not a repository (run 'repro init' first)")
        with open(db_path, "rb") as handle:
            database = _load(handle.read())
        data_dir = os.path.join(args.repo, SERVER_DIR) if args.durable else None
        role = "standalone"
        if args.replicate_to:
            from repro.net.replication import Replicator

            if keys is None:
                raise CliError("--replicate-to requires --replicas N "
                               "(and the deployment's --key-seed)")
            endpoints = _parse_endpoints(args.replicate_to)
            replicator = Replicator(keys.primary, witnesses=endpoints)
            role = f"primary depositing to {len(endpoints)} witness(es)"
    if args.backend != "file" and not args.durable:
        raise CliError("--backend sqlite requires --durable")
    # The flock guard only matters when a data directory is in play; it
    # stops a second `serve` pointed at the same REPO from interleaving
    # WAL appends with this one.
    lock = data_dir is not None
    try:
        if args.use_async:
            server = serve_async_in_thread(database=database,
                                           protocol=protocol,
                                           port=args.port, data_dir=data_dir,
                                           snapshot_every=args.snapshot_every,
                                           batch_max=args.batch_max,
                                           replicator=replicator,
                                           backend=args.backend, lock=lock)
            core = f"async event loop, batches <= {args.batch_max}"
        else:
            server = serve_in_thread(database=database, protocol=protocol,
                                     port=args.port, data_dir=data_dir,
                                     snapshot_every=args.snapshot_every,
                                     max_workers=args.workers,
                                     replicator=replicator,
                                     backend=args.backend, lock=lock)
            core = "threaded" + (f", <= {args.workers} workers"
                                 if args.workers else "")
    except LockError as exc:
        raise CliError(str(exc)) from exc
    host, port = server.address
    mode = ("in-memory" if not args.durable
            else f"durable (WAL + snapshots, {args.backend} backend)")
    print(f"serving {args.repo} on {host}:{port}, {mode}, {core}, {role} "
          "(SIGTERM/Ctrl-C to stop)", file=out)
    if args.durable and server.replayed_records:
        print(f"recovered: replayed {server.replayed_records} WAL record(s)", file=out)
    out.flush()
    stop = threading.Event()
    # Signal handlers are only legal on the main thread; test harnesses
    # that call cli_main from a worker thread set args.stop_event
    # instead (or rely on KeyboardInterrupt injection).
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop.set())
    external = getattr(args, "stop_event", None)
    try:
        if external is not None:
            external.wait()
        else:
            stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        # Graceful: quiesce, flush replication, fsync WAL, final
        # snapshot -- identical sequence for both cores.
        clean = server.graceful_stop()
        if db_path is not None:
            if args.use_async:
                snapshot = dump_database(server.core.state.database)
            else:
                with server.state_lock:
                    snapshot = dump_database(server.state.database)
            with open(db_path, "wb") as handle:
                handle.write(snapshot)
        suffix = "" if clean else " (quiesce timed out)"
        print(f"persisted and stopped{suffix}", file=out)
    return 0


def cmd_store_inspect(args, out) -> int:
    """Describe a server data directory without starting a server.

    For the sqlite backend, decodes the checkpoint manifest and prints
    the per-shard generation/page layout plus the retained WAL
    segments; for the file backend, summarises the snapshot and WAL.
    Read-only: safe to run against a live server's directory.
    """
    from repro.net.wal import (
        SEGMENT_PREFIX,
        SEGMENT_SUFFIX,
        SNAPSHOT_FILE,
        WAL_FILE,
        _MANIFEST_KEY,
        _parse_records,
    )
    from repro.storage.pagestore import SqlitePageStore, open_page_store
    from repro.wire import decode as _decode

    data_dir = args.data_dir
    if not os.path.isdir(data_dir):
        raise CliError(f"{data_dir!r} is not a directory")

    def _file_size(name: str) -> int | None:
        path = os.path.join(data_dir, name)
        return os.path.getsize(path) if os.path.isfile(path) else None

    wal_size = _file_size(WAL_FILE)
    if wal_size is not None:
        with open(os.path.join(data_dir, WAL_FILE), "rb") as handle:
            records, good_end = _parse_records(handle.read())
        torn = "" if good_end == wal_size else \
            f" + {wal_size - good_end} torn tail byte(s)"
        print(f"wal.log: {wal_size} bytes, {len(records)} record(s){torn}",
              file=out)

    if os.path.isfile(os.path.join(data_dir, SqlitePageStore.FILE)):
        store = open_page_store(data_dir, readonly=True)
        try:
            blob = store.get_meta(_MANIFEST_KEY)
            if blob is None:
                print("backend: sqlite (no checkpoint committed yet)",
                      file=out)
                return 0
            manifest = _decode(blob)
            print("backend: sqlite", file=out)
            print(f"checkpoint generation: {manifest['gen']}", file=out)
            print(f"top root: {manifest['root'].hex()}", file=out)
            print(f"spec: {manifest['spec']}", file=out)
            print(f"ops counter: {manifest['ctr']}", file=out)
            for record in manifest["shards"]:
                shard = int(record["shard"])
                gen = int(record["gen"])
                pages = sum(store.page_count(kind, shard, gen)
                            for kind in ("nodes", "entries"))
                size = sum(store.page_bytes(kind, shard, gen)
                           for kind in ("nodes", "entries"))
                prev = int(record["prev_gen"])
                prev_note = "none" if prev < 0 else str(prev)
                print(f"shard {shard}: gen {gen} ({pages} pages, "
                      f"{size} bytes), prev gen {prev_note}, "
                      f"root {record['root'].short()}...", file=out)
            for gen_key in sorted(manifest["segments"], key=int):
                size = _file_size(
                    f"{SEGMENT_PREFIX}{gen_key}{SEGMENT_SUFFIX}")
                state = "missing" if size is None else f"{size} bytes"
                print(f"segment {gen_key}: {state}", file=out)
        finally:
            store.close()
        return 0

    snap_size = _file_size(SNAPSHOT_FILE)
    if snap_size is None:
        raise CliError(f"{data_dir!r} holds no snapshot or page store")
    print("backend: file", file=out)
    print(f"state.snapshot: {snap_size} bytes", file=out)
    return 0


def cmd_obs_report(args, out) -> int:
    """Run a simulated workload with observability on; print the metrics.

    Exercises the full protocol stack (Merkle VOs, signatures, sync
    broadcasts) under the round simulator and renders every counter,
    histogram, and span aggregate the run produced, plus a
    reconciliation table proving the obs counters agree exactly with
    the simulator's own report.
    """
    from repro import obs
    from repro.analysis.metrics import obs_reconciliation
    from repro.core.scenarios import build_simulation
    from repro.simulation.workload import steady_workload

    obs.reset()
    obs.enable()
    try:
        workload = steady_workload(
            args.users, args.ops, spacing=6, keyspace=32,
            write_ratio=0.6, scan_ratio=0.1, seed=args.seed)
        simulation = build_simulation(args.protocol, workload, k=args.k,
                                      shards=args.shards, seed=args.seed)
        report = simulation.execute()
        snap = obs.snapshot()
    finally:
        obs.disable()
    reconciliation = obs_reconciliation(report, snap)
    consistent = all(entry["ok"] for entry in reconciliation.values())
    if args.json:
        snap["reconciliation"] = reconciliation
        snap["reconciliation_ok"] = consistent
        print(obs.render_json(snap), file=out)
        return 0 if consistent else 1
    print(f"# obs-report: {args.protocol}, {args.users} users x {args.ops} ops, "
          f"k={args.k}, seed={args.seed}", file=out)
    print(obs.render_text(snap), file=out)
    print("reconciliation (obs counters vs simulation report)", file=out)
    for check, entry in reconciliation.items():
        verdict = "ok" if entry["ok"] else "MISMATCH"
        print(f"  {check:<16s} obs={entry['obs']:<8d} report={entry['report']:<8d} "
              f"{verdict}", file=out)
    return 0 if consistent else 1


def cmd_evidence_inspect(args, out) -> int:
    """Decode a forensic evidence bundle and re-verify it offline.

    Exit 0 iff the bundle proves a genuine deviation: the captured
    frames fail verification against the recorded pre-operation client
    state (or the recorded registers/counts fail their sync predicate),
    exactly as they did live.  A bundle whose material verifies cleanly
    exits 1 -- it does not implicate the server.
    """
    from repro.net import evidence

    try:
        bundle = evidence.read_bundle(args.bundle)
    except (OSError, evidence.EvidenceError) as exc:
        raise CliError(str(exc)) from exc
    genuine, why = evidence.reverify(bundle)
    print(f"bundle   : {args.bundle}", file=out)
    print(f"kind     : {bundle['kind']} (protocol {bundle.get('protocol', '?')})",
          file=out)
    print(f"user     : {bundle.get('user', '?')}", file=out)
    if "op_index" in bundle:
        print(f"op index : {bundle['op_index']}", file=out)
    print(f"reported : {bundle.get('reason', '?')}", file=out)
    if bundle["kind"] == "response":
        print(f"frames   : request {len(bundle['request_frame'])} B, "
              f"response {len(bundle['response_frame'])} B", file=out)
        anchor = bundle.get("anchor") or {}
        if anchor.get("anchor_path"):
            print(f"anchor   : {anchor['anchor_path']}", file=out)
    elif bundle["kind"] == "replication":
        print(f"mode     : {bundle.get('mode', '?')}", file=out)
        print(f"deviant  : {bundle.get('deviant', '?')}", file=out)
        print(f"counter  : {bundle.get('ctr', '?')}", file=out)
        frames = bundle.get("attestation_frames", [])
        sizes = ", ".join(f"{len(frame)} B" for frame in frames)
        print(f"frames   : {len(frames)} attestation(s) ({sizes})", file=out)
    verdict = "GENUINE DEVIATION" if genuine else "verifies cleanly (NOT evidence)"
    print(f"re-verify: {verdict} -- {why}", file=out)
    return 0 if genuine else 1


def cmd_annotate(args, out) -> int:
    from repro.storage.annotate import format_annotations

    workspace = Workspace(args.repo, args.author, remote=args.remote)
    lines = workspace.client.annotate(args.path, args.revision)
    workspace.save()
    for rendered in format_annotations(lines):
        print(rendered, file=out)
    return 0


def cmd_trust(args, out) -> int:
    workspace = Workspace(args.repo, args.author, remote=args.remote)
    print(f"author      : {args.author}", file=out)
    print(f"trust anchor: {workspace.client.root_digest.hex()}", file=out)
    print(f"server root : {workspace.server.root_digest().hex()}", file=out)
    match = workspace.client.root_digest == workspace.server.root_digest()
    print(f"in sync     : {'yes' if match else 'NO - verify before trusting new data'}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-R", "--repo", default=".", help="repository directory")
    parser.add_argument("-a", "--author", default=os.environ.get("USER", "anon"),
                        help="author identity (owns a trust anchor)")
    parser.add_argument("--remote", default=None, metavar="HOST:PORT",
                        help="operate against a TCP server instead of the local snapshot")
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser("init", help="create a repository")
    init.add_argument("repo_positional", nargs="?", default=None)
    init.set_defaults(handler=cmd_init)

    commit = commands.add_parser("commit", help="commit a file")
    commit.add_argument("path")
    commit.add_argument("-m", "--message", default="")
    commit.add_argument("--file", help="read content from a file instead of stdin")
    commit.set_defaults(handler=cmd_commit)

    checkout = commands.add_parser("checkout", help="print a revision")
    checkout.add_argument("path")
    checkout.add_argument("-r", "--revision", default=None)
    checkout.add_argument("--expand", action="store_true",
                          help="expand RCS keywords ($Id$, $Revision$, ...)")
    checkout.set_defaults(handler=cmd_checkout)

    log = commands.add_parser("log", help="revision history")
    log.add_argument("path")
    log.set_defaults(handler=cmd_log)

    diff = commands.add_parser("diff", help="diff two revisions")
    diff.add_argument("path")
    diff.add_argument("-r", "--revision", required=True)
    diff.add_argument("--to", default=None)
    diff.set_defaults(handler=cmd_diff)

    ls = commands.add_parser("ls", help="list live files")
    ls.add_argument("prefix", nargs="?", default="")
    ls.set_defaults(handler=cmd_ls)

    remove = commands.add_parser("remove", help="cvs remove")
    remove.add_argument("path")
    remove.add_argument("-m", "--message", default="")
    remove.set_defaults(handler=cmd_remove)

    branch = commands.add_parser("branch", help="create or list branches")
    branch.add_argument("path")
    branch.add_argument("-r", "--revision", default=None, help="branch point (default head)")
    branch.add_argument("-l", "--list", action="store_true")
    branch.set_defaults(handler=cmd_branch)

    bcommit = commands.add_parser("bcommit", help="commit onto a branch")
    bcommit.add_argument("path")
    bcommit.add_argument("-b", "--branch", required=True)
    bcommit.add_argument("-m", "--message", default="")
    bcommit.add_argument("--file", help="read content from a file instead of stdin")
    bcommit.set_defaults(handler=cmd_bcommit)

    merge = commands.add_parser("merge", help="merge a branch into the trunk")
    merge.add_argument("path")
    merge.add_argument("-b", "--branch", required=True)
    merge.add_argument("-m", "--message", default="")
    merge.set_defaults(handler=cmd_merge)

    update = commands.add_parser("update", help="merge the repository head into a working file")
    update.add_argument("path")
    update.add_argument("-r", "--revision", required=True,
                        help="the revision the working file was based on")
    update.add_argument("--file", required=True, help="the working file (rewritten in place)")
    update.set_defaults(handler=cmd_update)

    trust = commands.add_parser("trust", help="show the trust anchor")
    trust.set_defaults(handler=cmd_trust)

    annotate = commands.add_parser("annotate", help="per-line blame")
    annotate.add_argument("path")
    annotate.add_argument("-r", "--revision", default=None)
    annotate.set_defaults(handler=cmd_annotate)

    serve = commands.add_parser("serve", help="host the repository over TCP")
    serve.add_argument("-p", "--port", type=int, default=7117)
    serve.add_argument("--durable", action="store_true",
                       help="write-ahead log + snapshots under REPO/server/: "
                            "crashes lose no acknowledged write")
    serve.add_argument("--snapshot-every", type=int, default=256,
                       help="ops between snapshots in --durable mode")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve on the asyncio core (batched root "
                            "recomputes and signing runs)")
    serve.add_argument("--batch-max", type=int, default=64,
                       help="max ops per drainer batch with --async")
    serve.add_argument("--workers", type=int, default=None,
                       help="cap concurrent handler threads (threaded core)")
    serve.add_argument("--replicas", type=int, default=0, metavar="N",
                       help="witness count of the replicated deployment "
                            "(fixes the shared keyring with --key-seed)")
    serve.add_argument("--key-seed", type=int, default=4096,
                       help="deterministic seed for the deployment keyring")
    serve.add_argument("--witness", type=int, default=None, metavar="I",
                       help="serve as witness index I (banks root deposits; "
                            "requires --replicas)")
    serve.add_argument("--replicate-to", default=None, metavar="H:P,...",
                       help="primary mode: deposit every signed root with "
                            "these witness endpoints")
    serve.add_argument("--backend", choices=("file", "sqlite"),
                       default="file",
                       help="durable store engine: 'file' rewrites one "
                            "snapshot file; 'sqlite' keeps checksummed "
                            "shard pages and checkpoints incrementally "
                            "(requires --durable)")
    serve.set_defaults(handler=cmd_serve)

    store_inspect = commands.add_parser(
        "store-inspect",
        help="describe a server data directory (checkpoint manifest, "
             "shard pages, WAL segments) without starting a server")
    store_inspect.add_argument("data_dir",
                               help="the server/witness data directory")
    store_inspect.set_defaults(handler=cmd_store_inspect)

    obs_report = commands.add_parser(
        "obs-report",
        help="run a simulated workload with observability on; print metrics")
    obs_report.add_argument("--protocol", default="protocol2",
                            help="protocol to simulate (default: protocol2)")
    obs_report.add_argument("--users", type=int, default=6)
    obs_report.add_argument("--ops", type=int, default=8,
                            help="operations per user")
    obs_report.add_argument("--shards", type=int, default=1,
                            help="shard the store into a Merkle forest")
    obs_report.add_argument("-k", type=int, default=4, help="sync period")
    obs_report.add_argument("--seed", type=int, default=9)
    obs_report.add_argument("--json", action="store_true",
                            help="emit the snapshot as JSON")
    obs_report.set_defaults(handler=cmd_obs_report)

    evidence_inspect = commands.add_parser(
        "evidence-inspect",
        help="decode a forensic evidence bundle and re-verify it offline")
    evidence_inspect.add_argument("bundle", help="path to a .evidence file")
    evidence_inspect.set_defaults(handler=cmd_evidence_inspect)
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "init" and getattr(args, "repo_positional", None):
        args.repo = args.repo_positional
    try:
        return args.handler(args, out)
    except CliError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except ProofError as exc:
        print("INTEGRITY VIOLATION: the repository does not verify against "
              f"your trust anchor: {exc}", file=out)
        return 3
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
