"""Metrics over simulation reports: the quantities the paper's
desiderata are stated in.

* detection delay, in rounds and in per-user operations initiated
  after the deviation (k-bounded deviation detection, Section 2.2.1);
* workload preservation factor: how much a protocol stretches the
  gaps between a user's operations relative to the naive baseline
  (c-workload preservation, Section 2.2.3);
* message overhead per operation (Protocol I's extra blocking message
  vs Protocol II's none, Section 4.3);
* throughput in completed operations per round.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.simulation.runner import SimulationReport


@dataclass(frozen=True)
class DetectionMetrics:
    """Detection outcome of one adversarial run."""

    deviated: bool
    detected: bool
    false_alarm: bool
    detection_delay_rounds: int | None
    ops_after_deviation: int | None
    detecting_users: tuple[str, ...]
    reasons: tuple[str, ...]


def detection_metrics(report: SimulationReport) -> DetectionMetrics:
    return DetectionMetrics(
        deviated=report.first_deviation_round is not None,
        detected=report.detected,
        false_alarm=report.false_alarm,
        detection_delay_rounds=report.detection_delay_rounds(),
        ops_after_deviation=report.max_ops_after_deviation(),
        detecting_users=tuple(sorted(report.alarms)),
        reasons=tuple(alarm.reason for _, alarm in sorted(report.alarms.items())),
    )


@dataclass(frozen=True)
class OverheadMetrics:
    """Cost profile of one (usually honest) run."""

    operations: int
    rounds: int
    messages: int
    broadcasts: int
    messages_per_operation: float
    throughput_ops_per_round: float
    completion_makespan: int


def overhead_metrics(report: SimulationReport) -> OverheadMetrics:
    operations = sum(report.operations_completed.values())
    completions = [r for rounds in report.completion_rounds.values() for r in rounds]
    makespan = (max(completions) - min(completions) + 1) if completions else 0
    return OverheadMetrics(
        operations=operations,
        rounds=report.rounds_executed,
        messages=report.messages_sent,
        broadcasts=report.broadcasts_sent,
        messages_per_operation=(report.messages_sent / operations) if operations else 0.0,
        throughput_ops_per_round=(operations / makespan) if makespan else 0.0,
        completion_makespan=makespan,
    )


def user_gaps(report: SimulationReport, user_id: str) -> list[int]:
    """Rounds between consecutive completed operations of one user."""
    rounds = report.completion_rounds.get(user_id, [])
    return [b - a for a, b in zip(rounds, rounds[1:])]


def preservation_factor(report: SimulationReport, baseline: SimulationReport, user_id: str) -> float:
    """How much a protocol stretches one user's operation gaps relative
    to a baseline run of the same workload (Section 2.2.3's ``c``,
    measured rather than proved)."""
    ours = user_gaps(report, user_id)
    reference = user_gaps(baseline, user_id)
    if not ours or not reference:
        return 1.0
    return statistics.mean(ours) / max(statistics.mean(reference), 1e-9)


def obs_reconciliation(report: SimulationReport, snap: dict | None = None) -> dict[str, dict]:
    """Cross-check the obs counters against a :class:`SimulationReport`.

    The simulator counts everything twice: once in its own report fields
    and once through the obs registry.  When observability was enabled
    (and ``repro.obs.reset()`` ran immediately before the execution, so
    no earlier run's counts bleed in) the two bookkeepers must agree
    *exactly* -- any drift means an instrumentation hook is missing or
    double-firing.

    ``snap`` is an :func:`repro.obs.snapshot` dict; omit it to read the
    live registry.  Returns ``{check: {"obs": int, "report": int,
    "ok": bool}}``.
    """

    def counter_total(name: str) -> int:
        if snap is not None:
            entry = snap.get("counters", {}).get(name)
            return int(entry["total"]) if entry else 0
        from repro.obs.metrics import REGISTRY

        return int(REGISTRY.counter(name).total())

    expected = {
        "rounds": ("sim.rounds", report.rounds_executed),
        "envelopes_sent": ("sim.envelopes_sent", report.messages_sent),
        "broadcasts": ("sim.broadcasts", report.broadcasts_sent),
        "ops_issued": ("sim.ops_issued",
                       sum(len(rounds) for rounds in report.issue_rounds.values())),
        "ops_completed": ("sim.ops_completed",
                          sum(report.operations_completed.values())),
        "alarms": ("sim.alarms", len(report.alarms)),
        "server_ops": ("sim.server_ops", report.server_operations),
    }
    checks: dict[str, dict] = {}
    for check, (counter_name, reported) in expected.items():
        observed = counter_total(counter_name)
        checks[check] = {"obs": observed, "report": int(reported),
                         "ok": observed == int(reported)}
    return checks
