"""Campaign runner: sweep protocols x attacks x seeds, aggregate stats.

The research-tool layer on top of single simulations: define a matrix,
run it, and get per-cell aggregates (detection rate, false-alarm rate,
delay percentiles) suitable for tables and regressions.  Used by the
soundness benches and available to downstream users for their own
parameter studies.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable

from repro.core.scenarios import build_simulation
from repro.simulation.runner import SimulationReport
from repro.simulation.workload import Workload


@dataclass(frozen=True)
class CellResult:
    """Aggregates for one (protocol, attack) cell across seeds."""

    protocol: str
    attack_name: str
    runs: int
    deviated: int
    detected: int
    false_alarms: int
    delay_rounds: tuple[int, ...]
    ops_after_deviation: tuple[int, ...]

    @property
    def detection_rate(self) -> float:
        return self.detected / self.deviated if self.deviated else 1.0

    @property
    def mean_delay(self) -> float | None:
        return statistics.mean(self.delay_rounds) if self.delay_rounds else None

    def delay_percentile(self, fraction: float) -> float | None:
        if not self.delay_rounds:
            return None
        ordered = sorted(self.delay_rounds)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return float(ordered[index])

    @property
    def worst_ops_after(self) -> int | None:
        return max(self.ops_after_deviation) if self.ops_after_deviation else None


@dataclass
class Campaign:
    """A sweep definition: factories keyed by name.

    ``workload_factory(protocol, seed)`` builds the workload;
    ``attack_factories`` maps attack names to
    ``factory(workload, seed) -> Attack | None`` (None = honest).
    """

    protocols: list[str]
    seeds: list[int]
    workload_factory: Callable[[str, int], Workload]
    attack_factories: dict[str, Callable[[Workload, int], object]]
    build_kwargs: dict = field(default_factory=dict)

    def run(self, max_rounds: int = 6000) -> list[CellResult]:
        results: list[CellResult] = []
        for protocol in self.protocols:
            for attack_name, attack_factory in self.attack_factories.items():
                reports: list[SimulationReport] = []
                for seed in self.seeds:
                    workload = self.workload_factory(protocol, seed)
                    attack = attack_factory(workload, seed)
                    simulation = build_simulation(protocol, workload, attack=attack,
                                                  seed=seed, **self.build_kwargs)
                    reports.append(simulation.execute(max_rounds=max_rounds))
                results.append(_aggregate(protocol, attack_name, reports))
        return results


def _aggregate(protocol: str, attack_name: str, reports: list[SimulationReport]) -> CellResult:
    deviated = [r for r in reports if r.first_deviation_round is not None]
    detected = [r for r in deviated if r.detected]
    delays = tuple(r.detection_delay_rounds() for r in detected
                   if r.detection_delay_rounds() is not None)
    ops_after = tuple(r.max_ops_after_deviation() for r in deviated
                      if r.max_ops_after_deviation() is not None)
    return CellResult(
        protocol=protocol,
        attack_name=attack_name,
        runs=len(reports),
        deviated=len(deviated),
        detected=len(detected),
        false_alarms=sum(1 for r in reports if r.false_alarm),
        delay_rounds=delays,
        ops_after_deviation=ops_after,
    )


def campaign_table(results: list[CellResult]) -> list[list[object]]:
    """Rows for :func:`repro.analysis.tables.format_table`."""
    rows = []
    for cell in results:
        rows.append([
            cell.protocol,
            cell.attack_name,
            f"{cell.detected}/{cell.deviated}" if cell.deviated else "n/a",
            cell.false_alarms,
            round(cell.mean_delay, 1) if cell.mean_delay is not None else None,
            cell.delay_percentile(0.9),
            cell.worst_ops_after,
        ])
    return rows


CAMPAIGN_HEADERS = ["protocol", "attack", "caught/fired", "false alarms",
                    "mean delay (r)", "p90 delay (r)", "worst ops-after"]
