"""Analysis helpers: metrics for the paper's desiderata and table
rendering for the benchmark harness."""

from repro.analysis.metrics import (
    DetectionMetrics,
    OverheadMetrics,
    detection_metrics,
    overhead_metrics,
    preservation_factor,
    user_gaps,
)
from repro.analysis.tables import format_series, format_table
from repro.analysis.timeline import render_timeline

__all__ = [
    "DetectionMetrics",
    "OverheadMetrics",
    "detection_metrics",
    "overhead_metrics",
    "preservation_factor",
    "user_gaps",
    "format_series",
    "format_table",
    "render_timeline",
]
