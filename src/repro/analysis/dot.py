"""DOT (Graphviz) rendering of seen-state graphs.

Debugging aid for the Lemma 4.1 machinery: dump a
:class:`~repro.protocols.graph.StateGraph` as DOT text, with the
Lemma's property verdicts in the graph label.  No Graphviz dependency
-- the output is plain text you can paste into any renderer.
"""

from __future__ import annotations

from repro.protocols.graph import StateGraph


def state_graph_to_dot(graph: StateGraph, name: str = "states",
                       labels: dict | None = None) -> str:
    """Render the graph; ``labels`` optionally maps digests to names."""
    labels = labels or {}
    properties = graph.lemma41_properties()
    verdict = "directed path" if graph.is_directed_path() else "NOT a path"
    caption = ", ".join(f"{key}={'ok' if value else 'FAIL'}"
                        for key, value in properties.items())
    lines = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        f'  label="{verdict} | {caption}";',
        "  node [shape=box, fontname=monospace];",
    ]
    in_degrees = graph.in_degrees()
    for node in sorted(graph.nodes(), key=lambda d: d.hex()):
        display = labels.get(node, node.short())
        colour = ""
        if in_degrees.get(node, 0) > 1:
            colour = ', style=filled, fillcolor="#f4cccc"'  # Lemma violation
        lines.append(f'  "{node.short()}" [label="{display}"{colour}];')
    for transition in graph.transitions:
        lines.append(f'  "{transition.old.short()}" -> "{transition.new.short()}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
