"""Textual timelines of simulation runs -- the debugging lens.

Renders a :class:`~repro.simulation.runner.SimulationReport` as an
ordered, per-round narrative: operations issued and completed, the
ground-truth deviation onset, and every alarm.  Invaluable when a
protocol test fails and you need to see *what the users saw, when*.
"""

from __future__ import annotations

from repro.simulation.runner import SimulationReport


def render_timeline(
    report: SimulationReport,
    max_events: int = 200,
    around_deviation: int | None = None,
) -> str:
    """A round-ordered event listing.

    ``around_deviation`` (rounds) windows the output to that many rounds
    either side of the deviation onset -- the part that matters when
    debugging a detection failure.
    """
    events: list[tuple[int, int, str]] = []  # (round, sort-rank, text)

    for timed in report.run.actions:
        action = timed.action
        if action.kind == "query":
            text = f"{action.user_id} issues #{action.txn_id} ({action.description})"
            rank = 0
        else:
            text = f"{action.user_id} completes #{action.txn_id}"
            rank = 1
        events.append((timed.round, rank, text))

    if report.first_deviation_round is not None:
        events.append((report.first_deviation_round, 2,
                       ">>> SERVER DEVIATES (ground truth) <<<"))
    for user_id, alarm in sorted(report.alarms.items()):
        events.append((alarm.round, 3, f"!!! {user_id} ALARMS: {alarm.reason}"))

    events.sort(key=lambda item: (item[0], item[1]))

    if around_deviation is not None and report.first_deviation_round is not None:
        lo = report.first_deviation_round - around_deviation
        hi = report.first_deviation_round + around_deviation
        events = [e for e in events if lo <= e[0] <= hi]

    lines = [f"timeline: {len(events)} events over {report.rounds_executed} rounds"]
    truncated = len(events) > max_events
    for round_no, _rank, text in events[:max_events]:
        lines.append(f"  r{round_no:05d}  {text}")
    if truncated:
        lines.append(f"  ... {len(events) - max_events} more events truncated")
    summary = "detected" if report.detected else "no alarm"
    if report.first_deviation_round is None:
        summary += ", no deviation"
    lines.append(f"outcome: {summary}")
    return "\n".join(lines)
