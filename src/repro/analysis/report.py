"""Collect saved benchmark results into one report.

``python -m repro.analysis.report [results_dir]`` concatenates the
tables every benchmark saved under ``benchmarks/results/`` (in
experiment order) into a single text report -- the quick way to refresh
the numbers quoted in EXPERIMENTS.md after a re-run.
"""

from __future__ import annotations

import os
import sys

DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")


def collect_report(results_dir: str = DEFAULT_RESULTS_DIR) -> str:
    """All saved experiment tables, ordered by experiment id."""
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            f"no results at {results_dir!r} -- run "
            "'pytest benchmarks/ --benchmark-only' first")
    sections = []
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".txt"):
            continue
        path = os.path.join(results_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            body = handle.read().rstrip()
        sections.append(f"[{name[:-4]}]\n{body}")
    if not sections:
        raise FileNotFoundError(f"no .txt results in {results_dir!r}")
    header = "Trusted CVS -- measured experiment results\n" + "=" * 44
    return header + "\n\n" + "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    argv = argv if argv is not None else sys.argv[1:]
    results_dir = argv[0] if argv else DEFAULT_RESULTS_DIR
    try:
        print(collect_report(results_dir), file=out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
