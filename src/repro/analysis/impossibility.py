"""Theorem 3.1, executable: the partition attack is *indistinguishable*.

The paper's impossibility proof constructs, for a partitionable
workload, two honest runs rA and rB with a common prefix, and shows the
untrusted server can weave them into a single run r where every user in
group A sees exactly what it would see in rA, and every user in group B
exactly what it would see in rB.  Since a (deterministic) client's
behaviour is a function of its view, no client that communicates only
with the server can behave differently in r than in the corresponding
honest run -- so none can detect the fork, for *any* client strategy.

This module builds that triple of runs concretely and checks view
equality message-for-message:

* :func:`demonstrate_partition` -- run rA, rB (honest) and r (forked)
  for a given protocol, compare every user's message transcript.
  For server-only protocols the transcripts match exactly: QED, the
  attack is undetectable.  For protocols that use the broadcast channel
  (sync enabled), the B users' transcripts *diverge* -- external
  communication is precisely what breaks the indistinguishability,
  which is the constructive content of Section 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.scenarios import build_simulation
from repro.mtree.database import ReadQuery, WriteQuery
from repro.server.attacks import ForkAttack
from repro.simulation.workload import Intent, Workload

NO_SYNC = 10 ** 9  # a sync period no run ever reaches


@dataclass(frozen=True)
class PartitionSpec:
    """The Figure 1 timeline: groups, fork point, per-group suffixes."""

    group_a: tuple[str, ...]
    group_b: tuple[str, ...]
    fork_round: int
    prefix: dict[str, list[Intent]]
    suffix_a: dict[str, list[Intent]]
    suffix_b: dict[str, list[Intent]]

    def workload(self, include_a: bool, include_b: bool) -> Workload:
        schedules: dict[str, list[Intent]] = {}
        for user in (*self.group_a, *self.group_b):
            schedule = list(self.prefix.get(user, []))
            if include_a:
                schedule += self.suffix_a.get(user, [])
            if include_b:
                schedule += self.suffix_b.get(user, [])
            schedules[user] = sorted(schedule, key=lambda intent: intent.round)
        return Workload(name="partition-spec", schedules=schedules)


def make_partition_spec(
    group_a_size: int = 1,
    group_b_size: int = 2,
    prefix_ops: int = 3,
    suffix_ops: int = 4,
    keyspace: int = 8,
    seed: int = 0,
) -> PartitionSpec:
    """Build a partitionable timeline with a quiescent gap at the fork
    (so the clone lands on a deterministic state in every run)."""
    rng = random.Random(seed)
    group_a = tuple(f"a{i}" for i in range(group_a_size))
    group_b = tuple(f"b{i}" for i in range(group_b_size))

    def key() -> bytes:
        return f"file{rng.randrange(keyspace):03d}".encode()

    prefix: dict[str, list[Intent]] = {}
    round_no = 2
    for _ in range(prefix_ops):
        for user in (*group_a, *group_b):
            query = WriteQuery(key(), f"{user}@{round_no}".encode()) \
                if rng.random() < 0.5 else ReadQuery(key())
            prefix.setdefault(user, []).append(Intent(round=round_no, query=query))
            round_no += 3
    fork_round = round_no + 6  # quiescent gap

    def suffix(users: tuple[str, ...]) -> dict[str, list[Intent]]:
        schedules: dict[str, list[Intent]] = {}
        r = fork_round + 4
        for _ in range(suffix_ops):
            for user in users:
                query = WriteQuery(key(), f"{user}@{r}".encode()) \
                    if rng.random() < 0.6 else ReadQuery(key())
                schedules.setdefault(user, []).append(Intent(round=r, query=query))
                r += 3
        return schedules

    return PartitionSpec(
        group_a=group_a,
        group_b=group_b,
        fork_round=fork_round,
        prefix=prefix,
        suffix_a=suffix(group_a),
        suffix_b=suffix(group_b),
    )


@dataclass(frozen=True)
class IndistinguishabilityReport:
    """Outcome of the three-run construction."""

    protocol: str
    views_match_a: bool      # A-users: view in r == view in rA
    views_match_b: bool      # B-users: view in r == view in rB
    attack_detected: bool    # did anyone alarm in r?
    honest_runs_clean: bool  # rA and rB must be alarm-free
    server_forked: bool      # ground truth: r really did deviate

    @property
    def theorem_holds(self) -> bool:
        """The Theorem 3.1 conclusion for this client: views identical
        and (necessarily) no detection."""
        return (self.views_match_a and self.views_match_b
                and not self.attack_detected and self.server_forked)


def _transcripts(simulation) -> dict[str, list]:
    return {user.user_id: list(user.view_transcript) for user in simulation.users}


def demonstrate_partition(
    protocol: str,
    spec: PartitionSpec | None = None,
    k: int = NO_SYNC,
    seed: int = 0,
    **build_kwargs,
) -> IndistinguishabilityReport:
    """Run the rA / rB / r construction and compare views."""
    spec = spec or make_partition_spec(seed=seed)
    combined = spec.workload(True, True)

    run_a = build_simulation(protocol, spec.workload(True, False), k=k,
                             seed=seed, populate_from=combined, **build_kwargs)
    report_a = run_a.execute()
    run_b = build_simulation(protocol, spec.workload(False, True), k=k,
                             seed=seed, populate_from=combined, **build_kwargs)
    report_b = run_b.execute()

    attack = ForkAttack(victims=list(spec.group_b), fork_round=spec.fork_round)
    run_r = build_simulation(protocol, combined, k=k,
                             seed=seed, attack=attack, **build_kwargs)
    report_r = run_r.execute()

    views_a = _transcripts(run_a)
    views_b = _transcripts(run_b)
    views_r = _transcripts(run_r)

    match_a = all(views_r[user] == views_a[user] for user in spec.group_a)
    match_b = all(views_r[user] == views_b[user] for user in spec.group_b)

    return IndistinguishabilityReport(
        protocol=protocol,
        views_match_a=match_a,
        views_match_b=match_b,
        attack_detected=report_r.detected,
        honest_runs_clean=not report_a.detected and not report_b.detected,
        server_forked=report_r.first_deviation_round is not None,
    )
