"""Exhaustive small-model checking of Protocol II (Theorem 4.2).

Benchmarks sample the adversary space; this module *enumerates* it.
Within a bounded model -- n users, m operations -- the server's entire
freedom under Protocol II is:

* which previously created state to serve each operation from (the VO
  binds everything else: the client recomputes roots itself, so the
  server cannot invent transitions, only replay/fork real ones);
* which owner ``j`` to claim for the served state (the one field the VO
  does not bind).

We enumerate every combination of (operating-user sequence, serve-state
picks, claimed owners) and check, for each behaviour:

* ground truth: the behaviour is *honest* iff every operation was
  served from the current tip with the true owner -- anything else
  produces a run no serial execution matches;
* the protocol's verdict: immediate rejection (the per-op counter /
  initial-owner checks) or the end-of-run sync predicate.

The theorem, in miniature: honest behaviours are always accepted, and
every deviating behaviour is rejected by the end.  Exhaustiveness is
what the randomized campaigns cannot give.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.crypto.hashing import Digest, hash_bytes, hash_tagged_state, xor_all


@dataclass(frozen=True)
class _State:
    """One database state in the model: root, counter, true owner."""

    root: Digest
    ctr: int
    owner: str


@dataclass(frozen=True)
class BehaviourResult:
    """Outcome of one enumerated server behaviour."""

    users: tuple[str, ...]
    picks: tuple[int, ...]
    claimed_owners: tuple[str, ...]
    honest: bool
    rejected_immediately: bool
    sync_passes: bool

    @property
    def accepted(self) -> bool:
        return not self.rejected_immediately and self.sync_passes


def _fresh_root(parent: _State, op_index: int) -> Digest:
    """A deterministic distinct root for the state an operation creates."""
    return hash_bytes(parent.root.value + bytes([op_index]))


def run_behaviour(
    user_sequence: tuple[str, ...],
    picks: tuple[int, ...],
    claimed_owners: tuple[str, ...],
    all_users: tuple[str, ...],
) -> BehaviourResult:
    """Execute one fully specified server behaviour against Protocol II
    clients and return ground truth plus the protocol verdict."""
    initial = _State(root=hash_bytes(b"genesis"), ctr=0, owner="")
    states: list[_State] = [initial]
    sigma = {u: Digest.zero() for u in all_users}
    last = {u: Digest.zero() for u in all_users}
    gctr = {u: 0 for u in all_users}
    tip = 0
    honest = True
    rejected = False

    for op_index, (user, pick, claimed) in enumerate(
            zip(user_sequence, picks, claimed_owners)):
        served = states[pick]
        if pick != tip or claimed != served.owner:
            honest = False

        # --- client-side per-operation checks (Protocol II step 4) ---
        if served.ctr < gctr[user]:
            rejected = True
            break
        if served.ctr == 0 and claimed != "":
            rejected = True
            break

        old_tag = hash_tagged_state(served.root, served.ctr, claimed)
        new_state = _State(root=_fresh_root(served, op_index),
                           ctr=served.ctr + 1, owner=user)
        new_tag = hash_tagged_state(new_state.root, new_state.ctr, user)
        sigma[user] = sigma[user] ^ old_tag ^ new_tag
        last[user] = new_tag
        gctr[user] = served.ctr + 1
        states.append(new_state)
        tip = len(states) - 1

    if rejected:
        sync_passes = False
    else:
        total = xor_all(sigma.values())
        s0 = hash_tagged_state(initial.root, 0, "")
        candidates = [l for l in last.values() if l]
        if candidates:
            sync_passes = any((s0 ^ l) == total for l in candidates)
        else:
            sync_passes = total == Digest.zero()

    return BehaviourResult(
        users=user_sequence,
        picks=picks,
        claimed_owners=claimed_owners,
        honest=honest,
        rejected_immediately=rejected,
        sync_passes=sync_passes,
    )


@dataclass(frozen=True)
class ModelCheckReport:
    """Aggregate verdict over the exhaustive behaviour space."""

    behaviours: int
    honest_accepted: int
    honest_rejected: int        # completeness violations (must be 0)
    deviating_rejected: int
    deviating_accepted: int     # soundness violations (must be 0)
    counterexamples: tuple[BehaviourResult, ...]

    @property
    def theorem_holds(self) -> bool:
        return self.honest_rejected == 0 and self.deviating_accepted == 0


def model_check(
    n_users: int = 2,
    n_ops: int = 4,
    enumerate_owner_lies: bool = True,
    max_counterexamples: int = 5,
) -> ModelCheckReport:
    """Enumerate every server behaviour in the bounded model."""
    users = tuple(f"u{i}" for i in range(n_users))
    owner_choices = users + ("",) if enumerate_owner_lies else None

    behaviours = honest_accepted = honest_rejected = 0
    deviating_rejected = deviating_accepted = 0
    counterexamples: list[BehaviourResult] = []

    pick_spaces = [range(i + 1) for i in range(n_ops)]
    for user_sequence in product(users, repeat=n_ops):
        for picks in product(*pick_spaces):
            if enumerate_owner_lies:
                owner_space = product(owner_choices, repeat=n_ops)
            else:
                owner_space = [None]
            for owners in owner_space:
                if owners is None:
                    # honest owner claims, derived on the fly
                    owners = _true_owners(user_sequence, picks)
                result = run_behaviour(user_sequence, picks, tuple(owners), users)
                behaviours += 1
                if result.honest:
                    if result.accepted:
                        honest_accepted += 1
                    else:
                        honest_rejected += 1
                        if len(counterexamples) < max_counterexamples:
                            counterexamples.append(result)
                else:
                    if result.accepted:
                        deviating_accepted += 1
                        if len(counterexamples) < max_counterexamples:
                            counterexamples.append(result)
                    else:
                        deviating_rejected += 1

    return ModelCheckReport(
        behaviours=behaviours,
        honest_accepted=honest_accepted,
        honest_rejected=honest_rejected,
        deviating_rejected=deviating_rejected,
        deviating_accepted=deviating_accepted,
        counterexamples=tuple(counterexamples),
    )


def _true_owners(user_sequence: tuple[str, ...], picks: tuple[int, ...]) -> list[str]:
    """The honest owner claims for a given pick sequence."""
    owners_of_states = [""]
    claims = []
    for user, pick in zip(user_sequence, picks):
        claims.append(owners_of_states[pick])
        owners_of_states.append(user)
    return claims


# ---------------------------------------------------------------------------
# Protocol I (Theorem 4.1) in the same bounded model
# ---------------------------------------------------------------------------


def run_behaviour_protocol1(
    user_sequence: tuple[str, ...],
    picks: tuple[int, ...],
    all_users: tuple[str, ...],
) -> BehaviourResult:
    """Protocol I against one fully specified server behaviour.

    Signatures bind states completely (the client recomputes the root
    from the VO and verifies the signature over exactly that root and
    counter), so the server's only freedom is *which* signed state to
    serve each operation from.  Client checks: counter non-regression
    per user.  Sync predicate: exists i with gctr_i == sum_k lctr_k.
    """
    states: list[_State] = [_State(root=hash_bytes(b"genesis"), ctr=0, owner="")]
    lctr = {u: 0 for u in all_users}
    gctr = {u: 0 for u in all_users}
    tip = 0
    honest = True
    rejected = False

    for op_index, (user, pick) in enumerate(zip(user_sequence, picks)):
        served = states[pick]
        if pick != tip:
            honest = False
        if served.ctr < gctr[user]:
            rejected = True
            break
        new_state = _State(root=_fresh_root(served, op_index),
                           ctr=served.ctr + 1, owner=user)
        lctr[user] += 1
        gctr[user] = served.ctr + 1
        states.append(new_state)
        tip = len(states) - 1

    if rejected:
        sync_passes = False
    else:
        total = sum(lctr.values())
        operated = [u for u in all_users if lctr[u] > 0]
        if operated:
            sync_passes = any(gctr[u] == total for u in operated)
        else:
            sync_passes = total == 0

    return BehaviourResult(
        users=user_sequence,
        picks=picks,
        claimed_owners=(),
        honest=honest,
        rejected_immediately=rejected,
        sync_passes=sync_passes,
    )


def model_check_protocol1(
    n_users: int = 2,
    n_ops: int = 5,
    max_counterexamples: int = 5,
) -> ModelCheckReport:
    """Enumerate every Protocol I server behaviour in the bounded model."""
    users = tuple(f"u{i}" for i in range(n_users))
    behaviours = honest_accepted = honest_rejected = 0
    deviating_rejected = deviating_accepted = 0
    counterexamples: list[BehaviourResult] = []

    pick_spaces = [range(i + 1) for i in range(n_ops)]
    for user_sequence in product(users, repeat=n_ops):
        for picks in product(*pick_spaces):
            result = run_behaviour_protocol1(user_sequence, picks, users)
            behaviours += 1
            if result.honest:
                if result.accepted:
                    honest_accepted += 1
                else:
                    honest_rejected += 1
                    if len(counterexamples) < max_counterexamples:
                        counterexamples.append(result)
            elif result.accepted:
                deviating_accepted += 1
                if len(counterexamples) < max_counterexamples:
                    counterexamples.append(result)
            else:
                deviating_rejected += 1

    return ModelCheckReport(
        behaviours=behaviours,
        honest_accepted=honest_accepted,
        honest_rejected=honest_rejected,
        deviating_rejected=deviating_rejected,
        deviating_accepted=deviating_accepted,
        counterexamples=tuple(counterexamples),
    )
