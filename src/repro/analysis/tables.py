"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series its paper artifact reports;
this module keeps the formatting uniform and dependency-free.
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def format_series(name: str, xs: list[object], ys: list[object], x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure series as aligned columns (shape over absolutes)."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)
