"""Trusted CVS (ICDE 2006) -- a full reproduction.

A multi-user versioning system on an *untrusted* server, with protocols
that let mutually trusting users detect any integrity or availability
violation by the server:

* the Merkle B+-tree substrate with O(log n) verification objects
  (:mod:`repro.mtree`);
* the CVS storage substrate -- Myers diff, RCS revision chains,
  repositories (:mod:`repro.storage`);
* the round-based multi-agent model of the paper
  (:mod:`repro.simulation`);
* Protocols I, II, III and the baselines (:mod:`repro.protocols`);
* malicious-server attack strategies (:mod:`repro.server`);
* the developer-facing facade and scenario builders
  (:mod:`repro.core`).

Quickstart::

    from repro.core import CvsServer, CvsClient

    server = CvsServer()
    alice = CvsClient(server, author="alice")
    alice.commit("src/main.c", ["int main() { return 0; }"], "initial")
    print(alice.checkout("src/main.c"))

Every response from the server is verified against a single tracked
root digest; a compromised server raises
:class:`~repro.mtree.proofs.ProofError` /
:class:`~repro.protocols.DeviationDetected` instead of corrupting your
checkout.
"""

__version__ = "1.0.0"

from repro.core import CvsClient, CvsServer, build_simulation
from repro.protocols import DeviationDetected

__all__ = ["CvsClient", "CvsServer", "build_simulation", "DeviationDetected", "__version__"]
