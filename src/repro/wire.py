"""A binary wire format for every message the system exchanges.

The simulator passes Python objects between agents; this module gives
them a real byte-level encoding, for two reasons:

* **bandwidth accounting** -- verification objects are the protocols'
  dominant cost, and "O(log n) digests" only means something once it is
  measured in bytes on the wire (benchmark E13);
* **fidelity** -- a deployable client/server pair needs a codec; this
  one covers the full closed universe of message types: queries,
  read/range/update proofs (including the recursive range fringe),
  signatures, epoch deposits, and the protocol envelopes with their
  extras dictionaries.

Format: a tagged, length-prefixed TLV encoding.  Every value is
``tag(1B) || payload``; variable-length payloads carry a 4-byte
big-endian length.  Deterministic: equal objects encode identically.
"""

from __future__ import annotations

import struct

from repro.crypto.hashing import DIGEST_SIZE, Digest
from repro.crypto.signatures import Signature
from repro.mtree.database import (
    DeleteQuery,
    QueryResult,
    RangeQuery,
    ReadQuery,
    WriteQuery,
)
from repro.mtree.forest import (
    ForestRangeProof,
    ForestReadProof,
    ForestUpdateProof,
)
from repro.mtree.proofs import (
    FringeNode,
    InternalSnapshot,
    LeafSnapshot,
    RangeProof,
    ReadProof,
    SiblingPair,
    UpdateProof,
)
from repro.protocols.base import ErrorReply, Followup, Request, Response
from repro.protocols.protocol3 import EpochDeposit


class WireError(Exception):
    """Raised on malformed or truncated wire data."""


#: codec revision, recorded in persisted artefacts (evidence bundles)
#: so a future decoder can refuse bytes written by an incompatible one.
CODEC_VERSION = 1


# One tag byte per type in the closed universe.
_TAGS = {
    "none": 0x00, "false": 0x01, "true": 0x02, "int": 0x03, "str": 0x04,
    "bytes": 0x05, "digest": 0x06, "list": 0x07, "dict": 0x08,
    "float": 0x09,
    "read_query": 0x10, "range_query": 0x11, "write_query": 0x12,
    "delete_query": 0x13,
    "leaf_snapshot": 0x20, "internal_snapshot": 0x21, "read_proof": 0x22,
    "range_proof": 0x23, "fringe_node": 0x24, "update_proof": 0x25,
    "sibling_pair": 0x26, "query_result": 0x27,
    "forest_read_proof": 0x28, "forest_update_proof": 0x29,
    "forest_range_proof": 0x2A,
    "signature": 0x30, "epoch_deposit": 0x31,
    "root_deposit": 0x32, "root_attestation": 0x33,
    "request": 0x40, "response": 0x41, "followup": 0x42,
    "error_reply": 0x43,
}
_NAMES = {tag: name for name, tag in _TAGS.items()}


def _pack_length(n: int) -> bytes:
    return struct.pack(">I", n)


# Single-byte tag frames, prebuilt so the encoder appends constants
# into one growing bytearray instead of assembling throwaway objects.
_TAG_BYTES = {name: bytes([tag]) for name, tag in _TAGS.items()}


def _encode_raw(data: bytes, out: bytearray) -> None:
    out += _pack_length(len(data))
    out += data


def _encode_value(value: object, out: bytearray) -> None:
    if value is None:
        out += _TAG_BYTES["none"]
    elif value is True:
        out += _TAG_BYTES["true"]
    elif value is False:
        out += _TAG_BYTES["false"]
    elif isinstance(value, int):
        out += _TAG_BYTES["int"]
        out += struct.pack(">q", value)
    elif isinstance(value, float):
        out += _TAG_BYTES["float"]
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        out += _TAG_BYTES["str"]
        _encode_raw(value.encode("utf-8"), out)
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES["bytes"]
        _encode_raw(bytes(value), out)
    elif isinstance(value, Digest):
        out += _TAG_BYTES["digest"]
        out += value.value
    elif isinstance(value, (list, tuple)):
        out += _TAG_BYTES["list"]
        out += _pack_length(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out += _TAG_BYTES["dict"]
        out += _pack_length(len(value))
        for key in sorted(value, key=repr):
            _encode_value(key, out)
            _encode_value(value[key], out)
    elif isinstance(value, ReadQuery):
        out += _TAG_BYTES["read_query"]
        _encode_raw(value.key, out)
    elif isinstance(value, RangeQuery):
        out += _TAG_BYTES["range_query"]
        _encode_raw(value.low, out)
        _encode_raw(value.high, out)
    elif isinstance(value, WriteQuery):
        out += _TAG_BYTES["write_query"]
        _encode_raw(value.key, out)
        _encode_raw(value.value, out)
    elif isinstance(value, DeleteQuery):
        out += _TAG_BYTES["delete_query"]
        _encode_raw(value.key, out)
    elif isinstance(value, LeafSnapshot):
        out += _TAG_BYTES["leaf_snapshot"]
        _encode_value(list(value.keys), out)
        _encode_value(list(value.entry_digests), out)
    elif isinstance(value, InternalSnapshot):
        out += _TAG_BYTES["internal_snapshot"]
        _encode_value(list(value.keys), out)
        _encode_value(list(value.child_digests), out)
    elif isinstance(value, ReadProof):
        out += _TAG_BYTES["read_proof"]
        _encode_raw(value.key, out)
        _encode_value(value.value, out)
        _encode_value(list(value.internals), out)
        _encode_value(value.leaf, out)
    elif isinstance(value, FringeNode):
        out += _TAG_BYTES["fringe_node"]
        _encode_value(list(value.keys), out)
        _encode_value(list(value.children), out)
    elif isinstance(value, RangeProof):
        out += _TAG_BYTES["range_proof"]
        _encode_raw(value.low, out)
        _encode_raw(value.high, out)
        _encode_value(value.root, out)
        _encode_value([list(entry) for entry in value.entries], out)
    elif isinstance(value, SiblingPair):
        out += _TAG_BYTES["sibling_pair"]
        _encode_value(value.left, out)
        _encode_value(value.right, out)
    elif isinstance(value, UpdateProof):
        out += _TAG_BYTES["update_proof"]
        _encode_value(value.operation, out)
        _encode_raw(value.key, out)
        _encode_value(list(value.internals), out)
        _encode_value(value.leaf, out)
        _encode_value(list(value.siblings), out)
    elif isinstance(value, ForestReadProof):
        out += _TAG_BYTES["forest_read_proof"]
        _encode_value(value.shard, out)
        _encode_value(value.inner, out)
        _encode_value(value.top, out)
    elif isinstance(value, ForestUpdateProof):
        out += _TAG_BYTES["forest_update_proof"]
        _encode_value(value.operation, out)
        _encode_value(value.shard, out)
        _encode_value(value.inner, out)
        _encode_value(value.top, out)
    elif isinstance(value, ForestRangeProof):
        out += _TAG_BYTES["forest_range_proof"]
        _encode_raw(value.low, out)
        _encode_raw(value.high, out)
        _encode_value(list(value.shard_proofs), out)
        _encode_value(value.top, out)
        _encode_value([list(entry) for entry in value.entries], out)
    elif isinstance(value, QueryResult):
        out += _TAG_BYTES["query_result"]
        _encode_value(value.answer, out)
        _encode_value(value.proof, out)
    elif isinstance(value, Signature):
        out += _TAG_BYTES["signature"]
        _encode_value(value.signer_id, out)
        _encode_value(value.digest, out)
        _encode_raw(value.raw, out)
    elif isinstance(value, EpochDeposit):
        out += _TAG_BYTES["epoch_deposit"]
        _encode_value(value.user_id, out)
        _encode_value(value.epoch, out)
        _encode_value(value.sigma, out)
        _encode_value(value.last, out)
        _encode_value(value.signature, out)
    elif isinstance(value, RootDeposit):
        out += _TAG_BYTES["root_deposit"]
        _encode_value(value.primary_id, out)
        _encode_value(value.ctr, out)
        _encode_value(value.root, out)
        _encode_value(value.signature, out)
    elif isinstance(value, RootAttestation):
        out += _TAG_BYTES["root_attestation"]
        _encode_value(value.witness_id, out)
        _encode_value(value.deposit, out)
        _encode_value(value.signature, out)
    elif isinstance(value, Request):
        out += _TAG_BYTES["request"]
        _encode_value(value.query, out)
        _encode_value(value.extras, out)
    elif isinstance(value, Response):
        out += _TAG_BYTES["response"]
        _encode_value(value.result, out)
        _encode_value(value.extras, out)
    elif isinstance(value, Followup):
        out += _TAG_BYTES["followup"]
        _encode_value(value.extras, out)
    elif isinstance(value, ErrorReply):
        out += _TAG_BYTES["error_reply"]
        _encode_value(value.reason, out)
        _encode_value(value.extras, out)
    else:
        raise WireError(f"cannot encode {type(value).__name__}")


def encode(message: object) -> bytes:
    """Serialise any message/value in the closed universe."""
    out = bytearray()
    _encode_value(message, out)
    return bytes(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise WireError("truncated wire data")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def length(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def raw(self) -> bytes:
        return self.take(self.length())


def _decode_value(reader: _Reader) -> object:
    tag = reader.take(1)[0]
    name = _NAMES.get(tag)
    if name is None:
        raise WireError(f"unknown wire tag 0x{tag:02x}")
    if name == "none":
        return None
    if name == "true":
        return True
    if name == "false":
        return False
    if name == "int":
        return struct.unpack(">q", reader.take(8))[0]
    if name == "float":
        return struct.unpack(">d", reader.take(8))[0]
    if name == "str":
        return reader.raw().decode("utf-8")
    if name == "bytes":
        return reader.raw()
    if name == "digest":
        return Digest(reader.take(DIGEST_SIZE))
    if name == "list":
        return tuple(_decode_value(reader) for _ in range(reader.length()))
    if name == "dict":
        count = reader.length()
        return {_decode_value(reader): _decode_value(reader) for _ in range(count)}
    if name == "read_query":
        return ReadQuery(key=reader.raw())
    if name == "range_query":
        return RangeQuery(low=reader.raw(), high=reader.raw())
    if name == "write_query":
        return WriteQuery(key=reader.raw(), value=reader.raw())
    if name == "delete_query":
        return DeleteQuery(key=reader.raw())
    if name == "leaf_snapshot":
        return LeafSnapshot(keys=_decode_value(reader),
                            entry_digests=_decode_value(reader))
    if name == "internal_snapshot":
        return InternalSnapshot(keys=_decode_value(reader),
                                child_digests=_decode_value(reader))
    if name == "read_proof":
        return ReadProof(key=reader.raw(), value=_decode_value(reader),
                         internals=_decode_value(reader), leaf=_decode_value(reader))
    if name == "fringe_node":
        return FringeNode(keys=_decode_value(reader), children=_decode_value(reader))
    if name == "range_proof":
        low, high = reader.raw(), reader.raw()
        root = _decode_value(reader)
        entries = tuple(tuple(entry) for entry in _decode_value(reader))
        return RangeProof(low=low, high=high, root=root, entries=entries)
    if name == "sibling_pair":
        return SiblingPair(left=_decode_value(reader), right=_decode_value(reader))
    if name == "update_proof":
        return UpdateProof(operation=_decode_value(reader), key=reader.raw(),
                           internals=_decode_value(reader), leaf=_decode_value(reader),
                           siblings=_decode_value(reader))
    if name == "forest_read_proof":
        shard = _decode_value(reader)
        inner, top = _decode_value(reader), _decode_value(reader)
        if not isinstance(shard, int) or not isinstance(inner, ReadProof) \
                or not isinstance(top, ReadProof):
            raise WireError("malformed forest read proof")
        return ForestReadProof(shard=shard, inner=inner, top=top)
    if name == "forest_update_proof":
        operation, shard = _decode_value(reader), _decode_value(reader)
        inner, top = _decode_value(reader), _decode_value(reader)
        if not isinstance(shard, int) or not isinstance(inner, UpdateProof) \
                or not isinstance(top, UpdateProof):
            raise WireError("malformed forest update proof")
        return ForestUpdateProof(operation=operation, shard=shard,
                                 inner=inner, top=top)
    if name == "forest_range_proof":
        low, high = reader.raw(), reader.raw()
        shard_proofs = _decode_value(reader)
        top = _decode_value(reader)
        entries = tuple(tuple(entry) for entry in _decode_value(reader))
        if not isinstance(top, RangeProof) or not all(
                isinstance(p, RangeProof) for p in shard_proofs):
            raise WireError("malformed forest range proof")
        return ForestRangeProof(low=low, high=high, shard_proofs=shard_proofs,
                                top=top, entries=entries)
    if name == "query_result":
        return QueryResult(answer=_decode_value(reader), proof=_decode_value(reader))
    if name == "signature":
        return Signature(signer_id=_decode_value(reader),
                         digest=_decode_value(reader), raw=reader.raw())
    if name == "epoch_deposit":
        return EpochDeposit(user_id=_decode_value(reader), epoch=_decode_value(reader),
                            sigma=_decode_value(reader), last=_decode_value(reader),
                            signature=_decode_value(reader))
    if name == "root_deposit":
        primary_id, ctr = _decode_value(reader), _decode_value(reader)
        root, signature = _decode_value(reader), _decode_value(reader)
        if not isinstance(primary_id, str) or not isinstance(ctr, int) \
                or not isinstance(root, Digest) \
                or not isinstance(signature, Signature):
            raise WireError("malformed root deposit")
        return RootDeposit(primary_id=primary_id, ctr=ctr, root=root,
                           signature=signature)
    if name == "root_attestation":
        witness_id, deposit = _decode_value(reader), _decode_value(reader)
        signature = _decode_value(reader)
        if not isinstance(witness_id, str) \
                or not isinstance(deposit, RootDeposit) \
                or not isinstance(signature, Signature):
            raise WireError("malformed root attestation")
        return RootAttestation(witness_id=witness_id, deposit=deposit,
                               signature=signature)
    if name == "request":
        return Request(query=_decode_value(reader), extras=_decode_value(reader))
    if name == "response":
        return Response(result=_decode_value(reader), extras=_decode_value(reader))
    if name == "followup":
        return Followup(extras=_decode_value(reader))
    if name == "error_reply":
        return ErrorReply(reason=_decode_value(reader), extras=_decode_value(reader))
    raise WireError(f"unhandled tag {name!r}")  # pragma: no cover


def decode(data: bytes) -> object:
    """Inverse of :func:`encode`; raises :class:`WireError` on garbage.

    Corrupt frames can put a well-formed value of the *wrong type* into
    a structured field (a digest where a key tuple belongs); the
    dataclass validators then raise -- all such type confusion is a
    wire-format error and is normalised to :class:`WireError`.
    """
    reader = _Reader(data)
    try:
        value = _decode_value(reader)
    except WireError:
        raise
    except (TypeError, ValueError, IndexError, struct.error) as exc:
        raise WireError(f"malformed frame: {exc}") from exc
    except Exception as exc:
        # snapshot/proof constructors validate their own invariants
        # with module-specific error types
        from repro.mtree.proofs import ProofError

        if isinstance(exc, ProofError):
            raise WireError(f"malformed frame: {exc}") from exc
        raise
    if reader.pos != len(data):
        raise WireError("trailing bytes after message")
    return value


def wire_size(message: object) -> int:
    """Bytes this message occupies on the wire."""
    return len(encode(message))


# Imported last: repro.net.replication is reached through the repro.net
# package, whose __init__ imports modules that import *this* module --
# deferring until every name above exists keeps either import order
# (wire first or repro.net first) cycle-safe.  replication itself is
# codec-free at module level for the same reason.
from repro.net.replication import RootAttestation, RootDeposit  # noqa: E402
