"""Verification objects for Merkle B+-tree reads, ranges, and updates.

Paper Section 4.1: "Given an update query Q, the server returns the new
root hash and the digests of the O(log n) nodes required to compute the
old and new root digests.  We call these O(log n) digests the
verification object of update Q, denoted v(Q, D)."

A client that knows only the current root digest ``M(D)`` can:

* :func:`verify_read` -- check a point read (membership *or*
  non-membership) against ``M(D)``;
* :func:`verify_range` -- check a range read, including completeness
  (the server cannot silently drop rows);
* :func:`verify_update` -- *recompute* the post-update root digest from
  the pre-update verification object, by replaying the insert or delete
  (including node splits, borrows, and merges) on a partial "shadow"
  tree built only from verified snapshots.  The client never takes the
  server's word for the new root: it derives the new root itself.

Snapshots are verified bottom-up against the known root digest, so any
tampering with keys, values, or structure is caught as a digest
mismatch and raised as :class:`ProofError`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_internal_node, hash_leaf, hash_leaf_node
from repro.mtree.merkle import MerkleBPlusTree


class ProofError(Exception):
    """Raised when a verification object fails to check out."""


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LeafSnapshot:
    """Immutable image of a leaf node: keys plus per-entry digests."""

    keys: tuple[bytes, ...]
    entry_digests: tuple[Digest, ...]

    def digest(self) -> Digest:
        return hash_leaf_node(list(self.entry_digests))

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.entry_digests):
            raise ProofError("leaf snapshot arity mismatch")


@dataclass(frozen=True)
class InternalSnapshot:
    """Immutable image of an internal node: separator keys + child digests."""

    keys: tuple[bytes, ...]
    child_digests: tuple[Digest, ...]

    def digest(self) -> Digest:
        return hash_internal_node(list(self.keys), list(self.child_digests))

    def __post_init__(self) -> None:
        if len(self.child_digests) != len(self.keys) + 1:
            raise ProofError("internal snapshot arity mismatch")


def route_index(keys, key: bytes) -> int:
    """The child index a B+-tree lookup for ``key`` descends into.

    Must stay in lock-step with ``BPlusTree._child_index`` -- the
    client-side replay re-routes with this rule.
    """
    return bisect_right(keys, key)


def snapshot_leaf(mtree: MerkleBPlusTree, node) -> LeafSnapshot:
    entry_digests = tuple(mtree.leaf_entry_digests(node))
    return LeafSnapshot(keys=tuple(node.keys), entry_digests=entry_digests)


def snapshot_internal(mtree: MerkleBPlusTree, node) -> InternalSnapshot:
    child_digests = tuple(mtree.node_digest(child) for child in node.children)
    return InternalSnapshot(keys=tuple(node.keys), child_digests=child_digests)


# ---------------------------------------------------------------------------
# Point-read proofs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadProof:
    """Membership or non-membership proof for a single key."""

    key: bytes
    value: bytes | None
    internals: tuple[InternalSnapshot, ...]  # root first, leaf's parent last
    leaf: LeafSnapshot

    def size_digests(self) -> int:
        """Number of digests carried -- the paper's O(log n) VO size."""
        return sum(len(s.child_digests) for s in self.internals) + len(self.leaf.entry_digests)


def build_read_proof(mtree: MerkleBPlusTree, key: bytes) -> ReadProof:
    """Server side: assemble the VO for a point read of ``key``."""
    path = mtree.tree.search_path(key)
    internals = tuple(snapshot_internal(mtree, node) for node in path[:-1])
    leaf = snapshot_leaf(mtree, path[-1])
    return ReadProof(key=key, value=mtree.get(key), internals=internals, leaf=leaf)


def _verify_path(
    root_digest: Digest,
    internals: tuple[InternalSnapshot, ...],
    leaf: LeafSnapshot,
    key: bytes,
) -> list[int]:
    """Check the root-to-leaf snapshot chain; returns the route indices.

    Each snapshot must hash to the digest its parent committed to, and
    the chain must follow the deterministic routing rule for ``key`` --
    otherwise a malicious server could prove non-membership using some
    unrelated leaf.
    """
    child_indices: list[int] = []
    expected = root_digest
    for level, snapshot in enumerate(internals):
        if snapshot.digest() != expected:
            raise ProofError(f"internal snapshot at level {level} does not match committed digest")
        if list(snapshot.keys) != sorted(snapshot.keys):
            raise ProofError(f"internal snapshot at level {level} has unsorted separator keys")
        index = route_index(snapshot.keys, key)
        child_indices.append(index)
        expected = snapshot.child_digests[index]
    if leaf.digest() != expected:
        raise ProofError("leaf snapshot does not match committed digest")
    if list(leaf.keys) != sorted(leaf.keys):
        raise ProofError("leaf snapshot has unsorted keys")
    return child_indices


def _implied_path_root(
    internals: tuple[InternalSnapshot, ...],
    leaf: LeafSnapshot,
    key: bytes,
) -> Digest:
    """Fold a path bottom-up and return the root digest it implies.

    Checks internal linkage (each snapshot must be committed by its
    parent at the position the routing rule for ``key`` selects) and
    key ordering, but does *not* compare against a known root -- the
    multi-user protocols obtain the root through signatures or XOR
    registers instead of tracking it locally.
    """
    if list(leaf.keys) != sorted(leaf.keys):
        raise ProofError("leaf snapshot has unsorted keys")
    digest = leaf.digest()
    for level in range(len(internals) - 1, -1, -1):
        snapshot = internals[level]
        if list(snapshot.keys) != sorted(snapshot.keys):
            raise ProofError(f"internal snapshot at level {level} has unsorted separator keys")
        index = route_index(snapshot.keys, key)
        if snapshot.child_digests[index] != digest:
            raise ProofError(f"broken digest chain at level {level}")
        digest = snapshot.digest()
    return digest


def check_read_answer(proof: ReadProof, key: bytes) -> bytes | None:
    """Validate the membership/non-membership claim inside a read proof
    (independent of the root digest)."""
    if proof.key != key:
        raise ProofError("proof is for a different key")
    if proof.value is None:
        if key in proof.leaf.keys:
            raise ProofError("server claimed absence but the leaf contains the key")
        return None
    try:
        position = proof.leaf.keys.index(key)
    except ValueError:
        raise ProofError("server claimed presence but the leaf lacks the key") from None
    if hash_leaf(key, proof.value) != proof.leaf.entry_digests[position]:
        raise ProofError("returned value does not match the committed entry digest")
    return proof.value


def implied_root_for_read(proof: ReadProof, key: bytes) -> Digest:
    """The root digest a read proof vouches for (after internal checks)."""
    check_read_answer(proof, key)
    return _implied_path_root(proof.internals, proof.leaf, key)


def verify_read(root_digest: Digest, proof: ReadProof, key: bytes) -> bytes | None:
    """Client side: validate a read VO against the known root digest.

    Returns the proven value (or ``None`` for proven absence).  Raises
    :class:`ProofError` on any inconsistency.
    """
    if proof.key != key:
        raise ProofError("proof is for a different key")
    _verify_path(root_digest, proof.internals, proof.leaf, key)
    if proof.value is None:
        if key in proof.leaf.keys:
            raise ProofError("server claimed absence but the leaf contains the key")
        return None
    try:
        position = proof.leaf.keys.index(key)
    except ValueError:
        raise ProofError("server claimed presence but the leaf lacks the key") from None
    if hash_leaf(key, proof.value) != proof.leaf.entry_digests[position]:
        raise ProofError("returned value does not match the committed entry digest")
    return proof.value


# ---------------------------------------------------------------------------
# Range proofs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FringeNode:
    """A partially revealed internal node inside a range proof.

    ``children[i]`` is either a bare :class:`Digest` (subtree outside
    the queried range) or a revealed :class:`FringeNode` /
    :class:`LeafSnapshot` (subtree intersecting the range).
    """

    keys: tuple[bytes, ...]
    children: tuple["FringeNode | LeafSnapshot | Digest", ...]


@dataclass(frozen=True)
class RangeProof:
    """Completeness-carrying proof for a range query ``[low, high]``."""

    low: bytes
    high: bytes
    root: FringeNode | LeafSnapshot
    entries: tuple[tuple[bytes, bytes], ...]


def build_range_proof(mtree: MerkleBPlusTree, low: bytes, high: bytes) -> RangeProof:
    """Server side: reveal exactly the subtrees intersecting the range."""
    if low > high:
        raise ValueError("empty range: low > high")

    def reveal(node):
        if node.is_leaf:
            return snapshot_leaf(mtree, node)
        children = []
        for index, child in enumerate(node.children):
            lower = node.keys[index - 1] if index > 0 else None
            upper = node.keys[index] if index < len(node.keys) else None
            if _intersects(lower, upper, low, high):
                children.append(reveal(child))
            else:
                children.append(mtree.node_digest(child))
        return FringeNode(keys=tuple(node.keys), children=tuple(children))

    entries = tuple(mtree.range(low, high))
    return RangeProof(low=low, high=high, root=reveal(mtree.tree.root), entries=entries)


def _intersects(lower: bytes | None, upper: bytes | None, low: bytes, high: bytes) -> bool:
    """Whether subtree key range [lower, upper) intersects query [low, high]."""
    if lower is not None and lower > high:
        return False
    if upper is not None and upper <= low:
        return False
    return True


def verify_range(root_digest: Digest, proof: RangeProof) -> tuple[tuple[bytes, bytes], ...]:
    """Client side: validate a range VO; returns the proven entries.

    Checks (a) every revealed snapshot hashes into the committed root,
    (b) every subtree that could intersect the range *is* revealed (so
    no row can be silently dropped), and (c) the returned entries match
    the revealed leaves exactly.
    """
    if implied_root_for_range(proof) != root_digest:
        raise ProofError("range proof does not match committed root digest")
    return proof.entries


def implied_root_for_range(proof: RangeProof) -> Digest:
    """The root digest a range proof vouches for (after completeness
    and content checks)."""
    low, high = proof.low, proof.high
    if low > high:
        raise ProofError("malformed range proof: low > high")
    revealed: list[tuple[bytes, Digest]] = []

    def check(node, must_reveal_range: bool) -> Digest:
        if isinstance(node, Digest):
            return node
        if isinstance(node, LeafSnapshot):
            if list(node.keys) != sorted(node.keys):
                raise ProofError("revealed leaf has unsorted keys")
            revealed.extend(zip(node.keys, node.entry_digests))
            return node.digest()
        if not isinstance(node, FringeNode):
            raise ProofError(f"unexpected node type in range proof: {type(node).__name__}")
        if list(node.keys) != sorted(node.keys):
            raise ProofError("revealed internal node has unsorted separator keys")
        if len(node.children) != len(node.keys) + 1:
            raise ProofError("revealed internal node arity mismatch")
        child_digests = []
        for index, child in enumerate(node.children):
            lower = node.keys[index - 1] if index > 0 else None
            upper = node.keys[index] if index < len(node.keys) else None
            child_must_reveal = _intersects(lower, upper, low, high)
            if child_must_reveal and isinstance(child, Digest):
                raise ProofError("server hid a subtree that intersects the queried range")
            child_digests.append(check(child, child_must_reveal))
        return hash_internal_node(list(node.keys), child_digests)

    implied_root = check(proof.root, True)

    in_range = [(key, digest) for key, digest in revealed if low <= key <= high]
    if [key for key, _ in in_range] != [key for key, _ in proof.entries]:
        raise ProofError("returned keys disagree with revealed leaves")
    for (key, value), (_proven_key, entry_digest) in zip(proof.entries, in_range):
        if hash_leaf(key, value) != entry_digest:
            raise ProofError(f"returned value for {key!r} does not match committed entry digest")
    return implied_root


# ---------------------------------------------------------------------------
# Update proofs (insert / overwrite / delete) with client-side replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SiblingPair:
    """Adjacent siblings of one path node (needed for delete rebalancing)."""

    left: "LeafSnapshot | InternalSnapshot | None"
    right: "LeafSnapshot | InternalSnapshot | None"


@dataclass(frozen=True)
class UpdateProof:
    """Pre-update VO from which the client derives the new root digest.

    ``siblings[i]`` carries the adjacent siblings of the path node at
    depth ``i + 1`` (the child inside ``internals[i]``); insert proofs
    carry empty pairs since splits never consult siblings.
    """

    operation: str  # "insert" or "delete"
    key: bytes
    internals: tuple[InternalSnapshot, ...]
    leaf: LeafSnapshot
    siblings: tuple[SiblingPair, ...]

    def size_digests(self) -> int:
        total = sum(len(s.child_digests) for s in self.internals)
        total += len(self.leaf.entry_digests)
        for pair in self.siblings:
            for side in (pair.left, pair.right):
                if isinstance(side, LeafSnapshot):
                    total += len(side.entry_digests)
                elif isinstance(side, InternalSnapshot):
                    total += len(side.child_digests)
        return total


def _snapshot_any(mtree: MerkleBPlusTree, node):
    if node.is_leaf:
        return snapshot_leaf(mtree, node)
    return snapshot_internal(mtree, node)


def build_update_proof(mtree: MerkleBPlusTree, operation: str, key: bytes) -> UpdateProof:
    """Server side: snapshot the search path *before* applying the update.

    For deletes, the adjacent siblings at every level are included so
    the client can replay borrow/merge rebalancing.
    """
    if operation not in ("insert", "delete"):
        raise ValueError(f"unknown update operation {operation!r}")
    path = mtree.tree.search_path(key)
    internals = tuple(snapshot_internal(mtree, node) for node in path[:-1])
    leaf = snapshot_leaf(mtree, path[-1])
    siblings: list[SiblingPair] = []
    if operation == "delete":
        for depth, parent in enumerate(path[:-1]):
            child = path[depth + 1]
            index = parent.children.index(child)
            left = _snapshot_any(mtree, parent.children[index - 1]) if index > 0 else None
            right = (
                _snapshot_any(mtree, parent.children[index + 1])
                if index + 1 < len(parent.children)
                else None
            )
            siblings.append(SiblingPair(left=left, right=right))
    else:
        siblings = [SiblingPair(left=None, right=None) for _ in path[:-1]]
    return UpdateProof(
        operation=operation,
        key=key,
        internals=internals,
        leaf=leaf,
        siblings=tuple(siblings),
    )


class _ShadowLeaf:
    """Mutable client-side reconstruction of a leaf during replay."""

    __slots__ = ("keys", "entries")
    is_leaf = True

    def __init__(self, snapshot: LeafSnapshot) -> None:
        self.keys = list(snapshot.keys)
        self.entries = list(snapshot.entry_digests)

    def digest(self) -> Digest:
        return hash_leaf_node(list(self.entries))


class _ShadowInternal:
    """Mutable client-side reconstruction of an internal node.

    Children are either bare digests (unverified-but-committed subtrees
    the replay never touches) or other shadow nodes.
    """

    __slots__ = ("keys", "children")
    is_leaf = False

    def __init__(self, keys, children) -> None:
        self.keys = list(keys)
        self.children = list(children)

    def digest(self) -> Digest:
        child_digests = [
            child if isinstance(child, Digest) else child.digest()
            for child in self.children
        ]
        return hash_internal_node(list(self.keys), child_digests)


def _shadow_from_snapshot(snapshot):
    if isinstance(snapshot, LeafSnapshot):
        return _ShadowLeaf(snapshot)
    return _ShadowInternal(snapshot.keys, snapshot.child_digests)


class _Replay:
    """Replays one insert/delete on the shadow path, mirroring the exact
    split/borrow/merge rules of :class:`repro.mtree.bplus.BPlusTree`."""

    def __init__(self, order: int) -> None:
        if order < 3:
            raise ProofError("order must be at least 3")
        self.order = order
        self.max_entries = order - 1
        self.min_entries = (order - 1) // 2
        self.min_children = (order + 1) // 2

    # -- insert ----------------------------------------------------------

    def insert(self, shadows, indices, key: bytes, entry_digest: Digest):
        """Apply insert/overwrite; returns the new shadow root."""
        leaf = shadows[-1]
        if key in leaf.keys:
            leaf.entries[leaf.keys.index(key)] = entry_digest
            return shadows[0]
        position = route_index(leaf.keys, key)
        leaf.keys.insert(position, key)
        leaf.entries.insert(position, entry_digest)
        if len(leaf.keys) <= self.max_entries:
            return shadows[0]
        return self._split_up(shadows, indices)

    def _split_up(self, shadows, indices):
        node = shadows[-1]
        parents = list(shadows[:-1])
        parent_indices = list(indices)
        while True:
            if node.is_leaf:
                separator, sibling = self._split_leaf(node)
            else:
                separator, sibling = self._split_internal(node)
            if not parents:
                return _ShadowInternal([separator], [node, sibling])
            parent = parents.pop()
            child_pos = parent_indices.pop()
            parent.keys.insert(child_pos, separator)
            parent.children.insert(child_pos + 1, sibling)
            if len(parent.children) <= self.order:
                return (parents[0] if parents else parent)
            node = parent

    def _split_leaf(self, leaf: _ShadowLeaf):
        middle = (len(leaf.keys) + 1) // 2
        sibling = _ShadowLeaf(LeafSnapshot(tuple(leaf.keys[middle:]), tuple(leaf.entries[middle:])))
        leaf.keys = leaf.keys[:middle]
        leaf.entries = leaf.entries[:middle]
        return sibling.keys[0], sibling

    def _split_internal(self, node: _ShadowInternal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        sibling = _ShadowInternal(node.keys[middle + 1:], node.children[middle + 1:])
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, sibling

    # -- delete ----------------------------------------------------------

    def delete(self, shadows, indices, key: bytes):
        """Apply delete; returns the new shadow root (or a bare digest if
        the whole tree collapsed to an untouched subtree)."""
        leaf = shadows[-1]
        if key not in leaf.keys:
            raise ProofError("delete replay: key is not present in the proven leaf")
        position = leaf.keys.index(key)
        del leaf.keys[position]
        del leaf.entries[position]
        return self._rebalance_up(shadows, indices)

    def _rebalance_up(self, shadows, indices):
        node = shadows[-1]
        parents = list(shadows[:-1])
        parent_indices = list(indices)
        root = shadows[0]
        while parents:
            parent = parents[-1]
            if node.is_leaf:
                underfull = len(node.keys) < self.min_entries
            else:
                underfull = len(node.children) < self.min_children
            if not underfull:
                return root
            child_pos = parent_indices[-1]
            left = parent.children[child_pos - 1] if child_pos > 0 else None
            right = parent.children[child_pos + 1] if child_pos + 1 < len(parent.children) else None
            if left is not None and self._can_lend(left):
                self._borrow_from_left(parent, child_pos)
                return root
            if right is not None and self._can_lend(right):
                self._borrow_from_right(parent, child_pos)
                return root
            if child_pos > 0:
                self._merge_children(parent, child_pos - 1)
            else:
                self._merge_children(parent, child_pos)
            node = parents.pop()
            parent_indices.pop()
        # ``node`` is the root.
        if not node.is_leaf and len(node.children) == 1:
            return node.children[0]
        return node

    def _require_shadow(self, node, role: str):
        if isinstance(node, Digest):
            raise ProofError(f"delete replay needs the {role} sibling, but the proof omitted it")
        return node

    def _can_lend(self, node) -> bool:
        node = self._require_shadow(node, "adjacent")
        if node.is_leaf:
            return len(node.keys) > self.min_entries
        return len(node.children) > self.min_children

    def _borrow_from_left(self, parent: _ShadowInternal, child_pos: int) -> None:
        left = self._require_shadow(parent.children[child_pos - 1], "left")
        node = parent.children[child_pos]
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.entries.insert(0, left.entries.pop())
            parent.keys[child_pos - 1] = node.keys[0]
        else:
            node.keys.insert(0, parent.keys[child_pos - 1])
            node.children.insert(0, left.children.pop())
            parent.keys[child_pos - 1] = left.keys.pop()

    def _borrow_from_right(self, parent: _ShadowInternal, child_pos: int) -> None:
        node = parent.children[child_pos]
        right = self._require_shadow(parent.children[child_pos + 1], "right")
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.entries.append(right.entries.pop(0))
            parent.keys[child_pos] = right.keys[0]
        else:
            node.keys.append(parent.keys[child_pos])
            node.children.append(right.children.pop(0))
            parent.keys[child_pos] = right.keys.pop(0)

    def _merge_children(self, parent: _ShadowInternal, left_pos: int) -> None:
        left = self._require_shadow(parent.children[left_pos], "left-merge")
        right = self._require_shadow(parent.children[left_pos + 1], "right-merge")
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.entries.extend(right.entries)
        else:
            left.keys.append(parent.keys[left_pos])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_pos]
        del parent.children[left_pos + 1]


def derive_update_roots(
    proof: UpdateProof,
    order: int,
    key: bytes,
    value: bytes | None = None,
) -> tuple[Digest, Digest]:
    """Derive the (old, new) root digests an update proof vouches for.

    This is the multi-user entry point: the client does not know the
    current root (another user may have moved it) -- it computes the
    old root from the VO and authenticates it via the protocol layer
    (Protocol I: a signature over it; Protocols II/III: the XOR
    register algebra).
    """
    old_root = _implied_path_root(proof.internals, proof.leaf, proof.key)
    new_root = verify_update(old_root, proof, order, key, value)
    return old_root, new_root


def verify_update(
    old_root_digest: Digest,
    proof: UpdateProof,
    order: int,
    key: bytes,
    value: bytes | None = None,
) -> Digest:
    """Client side: validate the pre-update VO and *derive* the new root.

    The returned digest is what the root digest must be after an honest
    server applies exactly this operation; Protocols I--III compare it
    (or sign it) rather than trusting anything the server claims.

    ``value`` is required for inserts and must be ``None`` for deletes.
    """
    if proof.key != key:
        raise ProofError("update proof is for a different key")
    if proof.operation == "insert" and value is None:
        raise ProofError("insert verification requires the new value")
    if proof.operation == "delete" and value is not None:
        raise ProofError("delete verification must not carry a value")
    if len(proof.siblings) != len(proof.internals):
        raise ProofError("sibling list length disagrees with path length")

    indices = _verify_path(old_root_digest, proof.internals, proof.leaf, key)

    # Rebuild the path as mutable shadow nodes.
    shadows: list[_ShadowInternal | _ShadowLeaf] = [
        _ShadowInternal(s.keys, s.child_digests) for s in proof.internals
    ]
    shadows.append(_ShadowLeaf(proof.leaf))
    for depth in range(len(shadows) - 1):
        shadows[depth].children[indices[depth]] = shadows[depth + 1]

    # Splice verified siblings into their parents (delete proofs only).
    for depth, pair in enumerate(proof.siblings):
        parent = shadows[depth]
        index = indices[depth]
        if pair.left is not None:
            if index == 0:
                raise ProofError("left sibling supplied for a leftmost child")
            if pair.left.digest() != proof.internals[depth].child_digests[index - 1]:
                raise ProofError("left sibling snapshot does not match committed digest")
            parent.children[index - 1] = _shadow_from_snapshot(pair.left)
        if pair.right is not None:
            if index + 1 >= len(parent.children):
                raise ProofError("right sibling supplied for a rightmost child")
            if pair.right.digest() != proof.internals[depth].child_digests[index + 1]:
                raise ProofError("right sibling snapshot does not match committed digest")
            parent.children[index + 1] = _shadow_from_snapshot(pair.right)

    replay = _Replay(order)
    if proof.operation == "insert":
        new_root = replay.insert(shadows, indices, key, hash_leaf(key, value))
    else:
        new_root = replay.delete(shadows, indices, key)

    if isinstance(new_root, Digest):
        return new_root
    return new_root.digest()
