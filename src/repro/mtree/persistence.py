"""Exact-shape persistence for the Merkle B+-tree.

Root digests commit to the *tree shape*, not just the entry set: two
trees holding the same entries but built in different orders hash
differently.  A client's persisted trust anchor (its root digest) must
therefore survive a server restart bit-for-bit, which means persistence
has to serialise the structure, not rebuild from entries.

The format is line-oriented with length prefixes (same conventions as
the RCS store serialisation): a preorder walk writing, per node, its
kind, key count, and for leaves the base64 values.  Keys and values are
binary-safe via urlsafe base64.
"""

from __future__ import annotations

import base64

from repro.mtree.bplus import BPlusTree, InternalNode, LeafNode
from repro.mtree.database import VerifiedDatabase
from repro.mtree.forest import MerkleForest
from repro.mtree.merkle import MerkleBPlusTree


class PersistenceError(Exception):
    """Raised on malformed snapshots."""


def dump_tree(tree: BPlusTree) -> bytes:
    """Serialise a B+-tree preserving its exact shape."""
    out: list[str] = [f"bplus-snapshot 1 {tree.order} {len(tree)}"]

    def walk(node) -> None:
        if node.is_leaf:
            out.append(f"leaf {len(node.keys)}")
            for key, value in zip(node.keys, node.values):
                out.append(f"{_b64(key)} {_b64(value)}")
        else:
            out.append(f"internal {len(node.keys)}")
            out.append(" ".join(_b64(key) for key in node.keys) if node.keys else "")
            for child in node.children:
                walk(child)

    walk(tree.root)
    return ("\n".join(out) + "\n").encode("ascii")


def iter_tree_stream(tree: BPlusTree):
    """Stream a tree's exact shape as ``(stream, line)`` pairs.

    The same preorder walk as :func:`dump_tree`, but split into two
    line streams so the page engine can persist them separately:

    * ``"nodes"`` -- the header plus per-node structure lines (kind,
      key count, internal separator keys);
    * ``"entries"`` -- the leaf key/value lines, in leaf order.

    :func:`load_tree_stream` consumes the two streams back and yields
    the identical shape; memory stays bounded by the tree being built
    plus one line per stream.
    """
    yield "nodes", f"bplus-snapshot 1 {tree.order} {len(tree)}"
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            yield "nodes", f"leaf {len(node.keys)}"
            for key, value in zip(node.keys, node.values):
                yield "entries", f"{_b64(key)} {_b64(value)}"
        else:
            yield "nodes", f"internal {len(node.keys)}"
            yield "nodes", (" ".join(_b64(key) for key in node.keys)
                            if node.keys else "")
            stack.extend(reversed(node.children))


def load_tree_stream(nodes_lines, entries_lines) -> BPlusTree:
    """Reconstruct a tree from :func:`iter_tree_stream`'s two streams.

    ``nodes_lines`` and ``entries_lines`` are iterators of text lines;
    they are consumed incrementally (never materialised), so the caller
    can feed them page by page.
    """
    nodes_iter = iter(nodes_lines)
    entries_iter = iter(entries_lines)

    def next_line(source, what: str) -> str:
        try:
            return next(source)
        except StopIteration:
            raise PersistenceError(
                f"unexpected end of snapshot ({what} stream)") from None

    header = next_line(nodes_iter, "nodes").split(" ")
    if len(header) != 4 or header[0] != "bplus-snapshot" or header[1] != "1":
        raise PersistenceError("bad snapshot header")
    try:
        order, size = int(header[2]), int(header[3])
    except ValueError as exc:
        raise PersistenceError(f"bad snapshot header: {exc}") from exc
    if order < 3 or size < 0:
        raise PersistenceError("bad snapshot header: implausible order/size")
    tree = BPlusTree(order=order)

    def read_node():
        parts = next_line(nodes_iter, "nodes").split(" ")
        if parts[0] == "leaf":
            node = LeafNode()
            try:
                count = int(parts[1])
            except (IndexError, ValueError) as exc:
                raise PersistenceError(f"bad leaf line: {exc}") from exc
            for _ in range(count):
                key_text, _, value_text = \
                    next_line(entries_iter, "entries").partition(" ")
                node.keys.append(_unb64(key_text))
                node.values.append(_unb64(value_text))
                node.entry_digests.append(None)
            return node
        if parts[0] == "internal":
            node = InternalNode()
            try:
                key_count = int(parts[1])
            except (IndexError, ValueError) as exc:
                raise PersistenceError(f"bad internal line: {exc}") from exc
            key_line = next_line(nodes_iter, "nodes")
            if key_count:
                encoded = key_line.split(" ")
                if len(encoded) != key_count:
                    raise PersistenceError("internal key count mismatch")
                node.keys = [_unb64(text) for text in encoded]
            elif key_line:
                raise PersistenceError("expected empty key line")
            for _ in range(key_count + 1):
                node.children.append(read_node())
            return node
        raise PersistenceError(f"unknown node kind {parts[0]!r}")

    root = read_node()
    for source, what in ((nodes_iter, "nodes"), (entries_iter, "entries")):
        try:
            next(source)
        except StopIteration:
            pass
        else:
            raise PersistenceError(f"trailing data in snapshot ({what} stream)")

    def count_entries(node) -> int:
        if node.is_leaf:
            return len(node.keys)
        return sum(count_entries(child) for child in node.children)

    actual = count_entries(root)
    if actual != size:
        raise PersistenceError(
            f"snapshot header claims {size} entries but the nodes hold {actual}")
    tree._root = root
    tree._size = size
    _relink_leaves(tree)
    try:
        tree.check_invariants()
    except AssertionError as exc:
        raise PersistenceError(f"snapshot violates tree invariants: {exc}") from exc
    return tree


def load_tree(blob: bytes) -> BPlusTree:
    """Reconstruct a tree serialised by :func:`dump_tree`."""
    try:
        lines = blob.decode("ascii").split("\n")
    except UnicodeDecodeError as exc:
        raise PersistenceError(f"snapshot is not ascii: {exc}") from exc
    if lines and lines[-1] == "":
        lines.pop()
    position = 0

    def next_line() -> str:
        nonlocal position
        if position >= len(lines):
            raise PersistenceError("unexpected end of snapshot")
        line = lines[position]
        position += 1
        return line

    header = next_line().split(" ")
    if len(header) != 4 or header[0] != "bplus-snapshot" or header[1] != "1":
        raise PersistenceError("bad snapshot header")
    try:
        order, size = int(header[2]), int(header[3])
    except ValueError as exc:
        raise PersistenceError(f"bad snapshot header: {exc}") from exc
    if order < 3 or size < 0:
        raise PersistenceError("bad snapshot header: implausible order/size")
    tree = BPlusTree(order=order)

    def read_node():
        parts = next_line().split(" ")
        if parts[0] == "leaf":
            node = LeafNode()
            for _ in range(int(parts[1])):
                key_text, _, value_text = next_line().partition(" ")
                node.keys.append(_unb64(key_text))
                node.values.append(_unb64(value_text))
                node.entry_digests.append(None)
            return node
        if parts[0] == "internal":
            node = InternalNode()
            key_count = int(parts[1])
            key_line = next_line()
            if key_count:
                encoded = key_line.split(" ")
                if len(encoded) != key_count:
                    raise PersistenceError("internal key count mismatch")
                node.keys = [_unb64(text) for text in encoded]
            elif key_line:
                raise PersistenceError("expected empty key line")
            for _ in range(key_count + 1):
                node.children.append(read_node())
            return node
        raise PersistenceError(f"unknown node kind {parts[0]!r}")

    try:
        root = read_node()
    except (IndexError, ValueError) as exc:
        raise PersistenceError(f"malformed snapshot: {exc}") from exc
    if position != len(lines):
        raise PersistenceError("trailing data in snapshot")

    def count_entries(node) -> int:
        if node.is_leaf:
            return len(node.keys)
        return sum(count_entries(child) for child in node.children)

    actual = count_entries(root)
    if actual != size:
        raise PersistenceError(
            f"snapshot header claims {size} entries but the nodes hold {actual}")
    tree._root = root
    tree._size = size
    _relink_leaves(tree)
    try:
        tree.check_invariants()
    except AssertionError as exc:
        raise PersistenceError(f"snapshot violates tree invariants: {exc}") from exc
    return tree


def _relink_leaves(tree: BPlusTree) -> None:
    """Rebuild the leaf chain (next_leaf pointers) after a load."""
    leaves: list[LeafNode] = []

    def collect(node) -> None:
        if node.is_leaf:
            leaves.append(node)
        else:
            for child in node.children:
                collect(child)

    collect(tree.root)
    for left, right in zip(leaves, leaves[1:]):
        left.next_leaf = right
    if leaves:
        leaves[-1].next_leaf = None


def dump_forest(forest: MerkleForest) -> bytes:
    """Serialise a Merkle forest: header plus one shard dump per shard.

    Only the shard trees are serialised.  The top tree's shape is a
    deterministic function of the shard count (keys inserted in
    ascending order, then only overwritten), so a load rebuilds it and
    the top root matches the dumped forest bit-for-bit.
    """
    spec = forest.spec
    header = (f"forest-snapshot 1 {spec.order} {spec.top_order} "
              f"{spec.shards}\n").encode("ascii")
    parts = [header]
    for index in range(spec.shards):
        shard_blob = dump_tree(forest.shard_tree(index).tree)
        parts.append(f"shard {index} {len(shard_blob)}\n".encode("ascii"))
        parts.append(shard_blob)
    return b"".join(parts)


def load_forest(blob: bytes) -> MerkleForest:
    """Reconstruct a forest serialised by :func:`dump_forest`."""
    newline = blob.find(b"\n")
    if newline < 0:
        raise PersistenceError("truncated forest snapshot: no header line")
    header = blob[:newline].decode("ascii", errors="replace").split(" ")
    if len(header) != 5 or header[0] != "forest-snapshot" or header[1] != "1":
        raise PersistenceError("bad forest snapshot header")
    try:
        order, top_order, shards = int(header[2]), int(header[3]), int(header[4])
    except ValueError as exc:
        raise PersistenceError(f"bad forest snapshot header: {exc}") from exc
    if order < 3 or top_order < 3 or shards < 1:
        raise PersistenceError(
            "bad forest snapshot header: implausible order/shard count")

    forest = MerkleForest(order=order, shards=shards, top_order=top_order)
    position = newline + 1
    for expected_index in range(shards):
        line_end = blob.find(b"\n", position)
        if line_end < 0:
            raise PersistenceError(
                f"truncated forest snapshot: expected {shards} shard "
                f"sections, found {expected_index}")
        fields = blob[position:line_end].decode("ascii", errors="replace").split(" ")
        if len(fields) != 3 or fields[0] != "shard":
            raise PersistenceError("bad shard section header")
        try:
            index, size = int(fields[1]), int(fields[2])
        except ValueError as exc:
            raise PersistenceError(f"bad shard section header: {exc}") from exc
        if index != expected_index:
            raise PersistenceError(
                f"shard sections out of order: expected {expected_index}, "
                f"found {index}")
        position = line_end + 1
        if position + size > len(blob):
            raise PersistenceError(
                f"truncated forest snapshot: shard {index} section cut short")
        tree = load_tree(blob[position:position + size])
        if tree.order != order:
            raise PersistenceError(
                f"shard {index} order {tree.order} disagrees with the "
                f"forest header order {order}")
        position += size
        mtree = MerkleBPlusTree(order=order)
        mtree._tree = tree
        forest._shards[index] = mtree
        forest._dirty.add(index)
    if position != len(blob):
        raise PersistenceError("trailing data in forest snapshot")
    # Fold the restored shard roots into the deterministically shaped
    # top tree; the routing invariant rides along for free.
    forest._sync_top()
    try:
        forest.check_invariants()
    except AssertionError as exc:
        raise PersistenceError(f"snapshot violates forest invariants: {exc}") from exc
    return forest


def dump_database(database: VerifiedDatabase) -> bytes:
    """Snapshot a verified database (its Merkle store, shape included)."""
    mtree = database.mtree
    if isinstance(mtree, MerkleForest):
        return dump_forest(mtree)
    return dump_tree(mtree.tree)


def load_database(blob: bytes) -> VerifiedDatabase:
    """Restore a database; the root digest matches the one dumped.

    Dispatches on the snapshot header: plain ``bplus-snapshot`` blobs
    restore a single-tree store, ``forest-snapshot`` blobs a sharded
    one.
    """
    if blob.startswith(b"forest-snapshot "):
        forest = load_forest(blob)
        database = VerifiedDatabase(
            order=forest.order, shards=forest.shard_count,
            top_order=forest.top_order)
        database._mtree = forest
        return database
    tree = load_tree(blob)
    database = VerifiedDatabase(order=tree.order)
    mtree = MerkleBPlusTree(order=tree.order)
    mtree._tree = tree
    database._mtree = mtree
    return database


def _b64(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    try:
        return base64.urlsafe_b64decode(text.encode("ascii"))
    except Exception as exc:  # noqa: BLE001
        raise PersistenceError("bad base64 field") from exc
