"""Merkle B+-tree substrate (paper Section 4.1).

Layers, bottom up:

* :mod:`repro.mtree.bplus` -- the plain B+-tree.
* :mod:`repro.mtree.merkle` -- per-node digests with lazy O(log n)
  recomputation; the root digest ``M(D)``.
* :mod:`repro.mtree.proofs` -- verification objects ``v(Q, D)`` for
  point reads, range reads, and updates, with pure client-side
  verification (update verification replays splits/borrows/merges on a
  shadow tree and derives the new root digest independently).
* :mod:`repro.mtree.forest` -- :class:`MerkleForest`: the store
  partitioned across per-shard Merkle trees whose roots feed a small
  top tree, with two-level verification objects.
* :mod:`repro.mtree.database` -- :class:`VerifiedDatabase` (server) and
  :class:`ClientVerifier` (client) tying queries to proofs.
"""

from repro.mtree.bplus import DEFAULT_ORDER, BPlusTree
from repro.mtree.database import (
    ClientVerifier,
    DeleteQuery,
    Query,
    QueryResult,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.mtree.forest import (
    ForestRangeProof,
    ForestReadProof,
    ForestUpdateProof,
    MerkleForest,
    StoreSpec,
    shard_for_key,
    verify_forest_range,
    verify_forest_read,
    verify_forest_update,
)
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    ProofError,
    RangeProof,
    ReadProof,
    UpdateProof,
    build_range_proof,
    build_read_proof,
    build_update_proof,
    verify_range,
    verify_read,
    verify_update,
)

__all__ = [
    "DEFAULT_ORDER",
    "BPlusTree",
    "ClientVerifier",
    "DeleteQuery",
    "Query",
    "QueryResult",
    "RangeQuery",
    "ReadQuery",
    "VerifiedDatabase",
    "WriteQuery",
    "MerkleBPlusTree",
    "MerkleForest",
    "StoreSpec",
    "ForestRangeProof",
    "ForestReadProof",
    "ForestUpdateProof",
    "shard_for_key",
    "verify_forest_range",
    "verify_forest_read",
    "verify_forest_update",
    "ProofError",
    "RangeProof",
    "ReadProof",
    "UpdateProof",
    "build_range_proof",
    "build_read_proof",
    "build_update_proof",
    "verify_range",
    "verify_read",
    "verify_update",
]
