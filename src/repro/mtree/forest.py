"""A sharded Merkle store: S per-shard B+-trees under one signed top tree.

One global Merkle B+-tree means one global root and one global
dirty-path pass per batch.  The forest partitions keys across ``S``
per-shard :class:`~repro.mtree.merkle.MerkleBPlusTree` instances whose
root digests are the *entries* of a small top Merkle B+-tree keyed by a
fixed-width shard label.  Protocols I--III keep signing and checking
only the top root, so their detection guarantees are untouched, while
refreshes after a batch recompute only the touched shard paths plus the
top tree.

Verification objects become two-level: the proof for a key carries the
ordinary path inside its shard *plus* the shard-root path in the top
tree, and the client folds both -- the inner proof's implied shard root
must be the exact value the top tree commits for that shard.  Routing
is part of the trust base: the client recomputes ``shard_for_key`` and
rejects proofs from any other shard, otherwise a malicious server could
prove non-membership out of a shard the key never routes to.

:class:`StoreSpec` carries ``(order, shards, top_order)`` through every
parameter slot that used to hold a bare B+-tree order, so the protocol
layers stay byte-compatible in single-tree mode (``shards == 1`` wires
as a plain int) and forest-aware everywhere else.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from heapq import merge as _sorted_merge
from typing import Iterator

from repro.crypto.hashing import Digest, hash_leaf
from repro.mtree.bplus import DEFAULT_ORDER
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    ProofError,
    RangeProof,
    ReadProof,
    UpdateProof,
    _implied_path_root,
    build_range_proof,
    build_read_proof,
    build_update_proof,
    check_read_answer,
    derive_update_roots,
    implied_root_for_range,
    implied_root_for_read,
    verify_update,
)
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry

_SHARD_RECOMPUTE = _registry.counter(
    "merkle.recompute", "Merkle nodes re-hashed per refresh, labeled by shard")

#: default branching factor of the top tree; small on purpose so the
#: top-tree half of a VO stays O(log S) digests rather than O(S).
DEFAULT_TOP_ORDER = 8

# Routing hashes get their own domain prefix (next free tag after
# ``\x08internal-node`` in repro.crypto.hashing) so a routing digest can
# never collide with any structural digest role.
_DOMAIN_ROUTE = b"\x09shard-route"


# ---------------------------------------------------------------------------
# Spec + routing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreSpec:
    """Shape of an authenticated store: shard count and tree orders.

    Every client-side verifier needs the same three integers the server
    built the store with; they travel through the parameter slots that
    historically carried the bare B+-tree ``order``.
    """

    order: int = DEFAULT_ORDER
    shards: int = 1
    top_order: int = DEFAULT_TOP_ORDER

    def __post_init__(self) -> None:
        if self.order < 3:
            raise ValueError("shard tree order must be at least 3")
        if self.shards < 1:
            raise ValueError("shard count must be at least 1")
        if self.top_order < 3:
            raise ValueError("top tree order must be at least 3")

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    @classmethod
    def coerce(cls, value: "StoreSpec | int | dict") -> "StoreSpec":
        """Accept a spec, a bare order int, or a wire/JSON dict."""
        if isinstance(value, StoreSpec):
            return value
        if isinstance(value, int):
            return cls(order=value)
        if isinstance(value, dict):
            try:
                return cls(
                    order=int(value["order"]),
                    shards=int(value.get("shards", 1)),
                    top_order=int(value.get("top_order", DEFAULT_TOP_ORDER)),
                )
            except KeyError as exc:
                raise ValueError(f"store spec dict lacks {exc}") from exc
        raise TypeError(f"cannot build a StoreSpec from {type(value).__name__}")

    def to_wire(self) -> int | dict:
        """Wire/JSON form: a bare int in single-tree mode (so existing
        evidence bundles and frames stay byte-identical), a dict when
        sharded."""
        if self.shards == 1:
            return self.order
        return {"order": self.order, "shards": self.shards,
                "top_order": self.top_order}


def shard_for_key(key: bytes, shards: int) -> int:
    """Deterministic key -> shard routing (domain-separated SHA-256).

    Both sides compute this: the server to place writes, the client to
    reject proofs served out of the wrong shard.
    """
    if shards <= 1:
        return 0
    raw = hashlib.sha256(_DOMAIN_ROUTE + key).digest()
    return int.from_bytes(raw[:8], "big") % shards


def shard_key(index: int) -> bytes:
    """Fixed-width top-tree key for shard ``index``.

    Zero-padded so lexicographic order equals numeric order -- range
    proofs over the top tree can then cover exactly shards 0..S-1.
    """
    if index < 0:
        raise ValueError("shard index must be non-negative")
    return b"shard:%08d" % index


# ---------------------------------------------------------------------------
# The forest
# ---------------------------------------------------------------------------


class MerkleForest:
    """S per-shard Merkle B+-trees under one top Merkle B+-tree.

    Mirrors the :class:`MerkleBPlusTree` surface the rest of the system
    uses (queries, mutation, ``refresh_root``, ``clone``), plus
    per-shard dirty tracking: mutations mark their shard, and
    :meth:`refresh_root` re-hashes only dirty shard paths before
    folding the changed shard roots into the top tree.

    The top tree's shape is deterministic -- shard keys are inserted in
    ascending order at construction and only ever *overwritten* -- so
    two forests holding the same entries always agree on the top root.
    """

    def __init__(self, order: int = DEFAULT_ORDER, shards: int = 2,
                 top_order: int = DEFAULT_TOP_ORDER) -> None:
        self._spec = StoreSpec(order=order, shards=shards, top_order=top_order)
        self._shards = [MerkleBPlusTree(order=order) for _ in range(shards)]
        self._top = MerkleBPlusTree(order=top_order)
        for index, tree in enumerate(self._shards):
            self._top.insert(shard_key(index), tree.root_digest().to_bytes())
        self._dirty: set[int] = set()
        #: shards mutated since the storage layer's last checkpoint;
        #: unlike ``_dirty`` (drained by every ``_sync_top``), this set
        #: is drained only by the checkpoint writer, which uses it to
        #: rewrite just the changed shards' pages.
        self._checkpoint_dirty: set[int] = set()

    # -- shape -------------------------------------------------------------

    @property
    def spec(self) -> StoreSpec:
        return self._spec

    @property
    def order(self) -> int:
        return self._spec.order

    @property
    def top_order(self) -> int:
        return self._spec.top_order

    @property
    def shard_count(self) -> int:
        return self._spec.shards

    @property
    def dirty_shard_count(self) -> int:
        """Shards mutated since the last top sync (obs + tests)."""
        return len(self._dirty)

    @property
    def digest_recomputations(self) -> int:
        """Total Merkle re-hashes across all shards plus the top tree."""
        return (self._top.digest_recomputations
                + sum(tree.digest_recomputations for tree in self._shards))

    def shard_tree(self, index: int) -> MerkleBPlusTree:
        """The per-shard Merkle tree (proof building + tests)."""
        return self._shards[index]

    @property
    def top_tree(self) -> MerkleBPlusTree:
        """The top Merkle tree (proof building + tests)."""
        return self._top

    # -- queries -----------------------------------------------------------

    def _route(self, key: bytes) -> int:
        return shard_for_key(key, self._spec.shards)

    def __len__(self) -> int:
        return sum(len(tree) for tree in self._shards)

    def __contains__(self, key: bytes) -> bool:
        return key in self._shards[self._route(key)]

    def get(self, key: bytes) -> bytes | None:
        return self._shards[self._route(key)].get(key)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All entries in global key order (merge of sorted shards)."""
        return _sorted_merge(*(tree.items() for tree in self._shards))

    def range(self, low: bytes, high: bytes) -> Iterator[tuple[bytes, bytes]]:
        return _sorted_merge(*(tree.range(low, high) for tree in self._shards))

    def height(self) -> int:
        return max(tree.height() for tree in self._shards)

    def check_invariants(self) -> None:
        for tree in self._shards:
            tree.check_invariants()
        self._top.check_invariants()
        assert len(self._top) == self._spec.shards, \
            "top tree entry count disagrees with the shard count"
        for index, tree in enumerate(self._shards):
            for key, _value in tree.items():
                assert self._route(key) == index, \
                    f"key {key!r} stored in shard {index} but routes elsewhere"
            if index not in self._dirty:
                committed = self._top.get(shard_key(index))
                assert committed == tree.root_digest().to_bytes(), \
                    f"top tree entry for clean shard {index} is stale"

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        index = self._route(key)
        created = self._shards[index].insert(key, value)
        self._dirty.add(index)
        self._checkpoint_dirty.add(index)
        return created

    def delete(self, key: bytes) -> bool:
        index = self._route(key)
        removed = self._shards[index].delete(key)
        if removed:
            self._dirty.add(index)
            self._checkpoint_dirty.add(index)
        return removed

    def checkpoint_dirty_shards(self) -> frozenset[int]:
        """Shards mutated since :meth:`clear_checkpoint_dirty` last ran."""
        return frozenset(self._checkpoint_dirty)

    def clear_checkpoint_dirty(self) -> None:
        """Called by the checkpoint writer once the rewrite is durable."""
        self._checkpoint_dirty.clear()

    def clone(self) -> "MerkleForest":
        """Structural copy sharing immutable entries and cached digests."""
        twin = MerkleForest.__new__(MerkleForest)
        twin._spec = self._spec
        twin._shards = [tree.clone() for tree in self._shards]
        twin._top = self._top.clone()
        twin._dirty = set(self._dirty)
        twin._checkpoint_dirty = set(self._checkpoint_dirty)
        return twin

    # -- digests -----------------------------------------------------------

    def _sync_top(self) -> int:
        """Fold every dirty shard's fresh root into the top tree.

        Returns the number of shard-tree nodes re-hashed.  Must run
        before any proof is built: the top tree half of a VO has to
        commit the *current* root of every shard, or a client that just
        verified a write in shard A would reject the very next proof.
        """
        if not self._dirty:
            return 0
        recomputed = 0
        observing = _obs.enabled
        for index in sorted(self._dirty):
            root, nodes = self._shards[index].refresh_root()
            recomputed += nodes
            if observing and nodes:
                _SHARD_RECOMPUTE.inc(nodes, shard=str(index))
            blob = root.to_bytes()
            if self._top.get(shard_key(index)) != blob:
                self._top.insert(shard_key(index), blob)
        self._dirty.clear()
        return recomputed

    def root_digest(self) -> Digest:
        """The signed root: the top tree's root digest."""
        self._sync_top()
        return self._top.root_digest()

    def refresh_root(self) -> tuple[Digest, int]:
        """Recompute the top root; returns ``(root, nodes_recomputed)``.

        Only dirty shard paths plus the top tree's dirty path are
        re-hashed -- a batch that touched 2 of 64 shards pays for 2
        shard paths, not 64.
        """
        recomputed = self._sync_top()
        root, top_nodes = self._top.refresh_root()
        if _obs.enabled and top_nodes:
            _SHARD_RECOMPUTE.inc(top_nodes, shard="top")
        return root, recomputed + top_nodes


# ---------------------------------------------------------------------------
# Two-level verification objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ForestReadProof:
    """Point-read VO: leaf path inside the shard + shard-root path in
    the top tree."""

    shard: int
    inner: ReadProof
    top: ReadProof

    @property
    def key(self) -> bytes:
        return self.inner.key

    @property
    def value(self) -> bytes | None:
        return self.inner.value

    def size_digests(self) -> int:
        return self.inner.size_digests() + self.top.size_digests()


@dataclass(frozen=True)
class ForestUpdateProof:
    """Update VO: pre-update path in the shard + pre-update shard-root
    path in the top tree.

    The top half is always an ``insert`` proof for the shard key -- the
    shard's entry in the top tree is *overwritten* with the new shard
    root, never created or removed, so the replay can never split the
    top tree and its shape stays deterministic.
    """

    operation: str  # "insert" or "delete" (the inner, user-level op)
    shard: int
    inner: UpdateProof
    top: UpdateProof

    @property
    def key(self) -> bytes:
        return self.inner.key

    def size_digests(self) -> int:
        return self.inner.size_digests() + self.top.size_digests()


@dataclass(frozen=True)
class ForestRangeProof:
    """Range VO: one completeness-carrying range proof *per shard* plus
    a top-tree range proof covering every shard root.

    Hash routing scatters adjacent keys across shards, so completeness
    for ``[low, high]`` requires every shard to prove its slice; the
    top proof pins each shard proof's implied root to the signed top
    root, and ``entries`` is the sorted merge the client re-derives.
    """

    low: bytes
    high: bytes
    shard_proofs: tuple[RangeProof, ...]
    top: RangeProof
    entries: tuple[tuple[bytes, bytes], ...]

    def size_digests(self) -> int:
        total = 0
        for proof in self.shard_proofs:
            total += _range_proof_digests(proof.root)
        return total + _range_proof_digests(self.top.root)


def _range_proof_digests(node) -> int:
    """Digest count of a (possibly fringe) range-proof subtree."""
    if isinstance(node, Digest):
        return 1
    if hasattr(node, "entry_digests"):  # LeafSnapshot
        return len(node.entry_digests)
    return sum(_range_proof_digests(child) for child in node.children)


ForestProof = ForestReadProof | ForestRangeProof | ForestUpdateProof


# -- building (server side) --------------------------------------------------


def build_forest_read_proof(forest: MerkleForest, key: bytes) -> ForestReadProof:
    forest._sync_top()
    index = forest._route(key)
    return ForestReadProof(
        shard=index,
        inner=build_read_proof(forest.shard_tree(index), key),
        top=build_read_proof(forest.top_tree, shard_key(index)),
    )


def build_forest_update_proof(
    forest: MerkleForest, operation: str, key: bytes
) -> ForestUpdateProof:
    forest._sync_top()
    index = forest._route(key)
    return ForestUpdateProof(
        operation=operation,
        shard=index,
        inner=build_update_proof(forest.shard_tree(index), operation, key),
        top=build_update_proof(forest.top_tree, "insert", shard_key(index)),
    )


def build_forest_range_proof(
    forest: MerkleForest, low: bytes, high: bytes
) -> ForestRangeProof:
    forest._sync_top()
    shard_proofs = tuple(
        build_range_proof(tree, low, high)
        for tree in (forest.shard_tree(i) for i in range(forest.shard_count))
    )
    top = build_range_proof(
        forest.top_tree, shard_key(0), shard_key(forest.shard_count - 1))
    entries = tuple(_sorted_merge(*(proof.entries for proof in shard_proofs)))
    return ForestRangeProof(
        low=low, high=high, shard_proofs=shard_proofs, top=top, entries=entries)


# -- verification (client side) ----------------------------------------------


def implied_root_for_forest_read(
    proof: ForestReadProof, key: bytes, spec: StoreSpec
) -> Digest:
    """The *top* root a forest read proof vouches for.

    Checks (a) the proof comes from the shard ``key`` routes to, (b)
    the inner proof's membership claim and path, and (c) the top tree
    commits exactly the shard root the inner proof implies.
    """
    if proof.shard != shard_for_key(key, spec.shards):
        raise ProofError("read proof was served out of the wrong shard")
    shard_root = implied_root_for_read(proof.inner, key)
    skey = shard_key(proof.shard)
    committed = check_read_answer(proof.top, skey)
    if committed != shard_root.to_bytes():
        raise ProofError("top tree entry disagrees with the shard proof")
    return _implied_path_root(proof.top.internals, proof.top.leaf, skey)


def verify_forest_read(
    root_digest: Digest, proof: ForestReadProof, key: bytes, spec: StoreSpec
) -> bytes | None:
    """Validate a forest read VO against the known (signed) top root."""
    if implied_root_for_forest_read(proof, key, spec) != root_digest:
        raise ProofError("read proof does not match committed root digest")
    return proof.inner.value


def derive_forest_update_roots(
    proof: ForestUpdateProof,
    spec: StoreSpec,
    key: bytes,
    value: bytes | None = None,
) -> tuple[Digest, Digest]:
    """Derive the (old, new) *top* roots a forest update vouches for.

    The level binding is the heart of the scheme: the top proof's leaf
    must commit ``hash_leaf(shard_key, old_shard_root)`` where
    ``old_shard_root`` is what the inner proof implies -- then the new
    top root is derived by replaying the overwrite of that entry with
    the client-recomputed new shard root.
    """
    if proof.shard != shard_for_key(key, spec.shards):
        raise ProofError("update proof was served out of the wrong shard")
    if proof.inner.operation != proof.operation:
        raise ProofError("forest update proof disagrees with its inner operation")
    if proof.top.operation != "insert":
        raise ProofError("top-tree half of a forest update must be an overwrite")
    skey = shard_key(proof.shard)
    if proof.top.key != skey:
        raise ProofError("top-tree proof is for a different shard key")
    old_shard, new_shard = derive_update_roots(proof.inner, spec.order, key, value)
    try:
        position = proof.top.leaf.keys.index(skey)
    except ValueError:
        raise ProofError("top-tree leaf does not contain the shard key") from None
    if proof.top.leaf.entry_digests[position] != hash_leaf(skey, old_shard.to_bytes()):
        raise ProofError("top tree does not commit the shard's pre-update root")
    old_top = _implied_path_root(proof.top.internals, proof.top.leaf, skey)
    new_top = verify_update(
        old_top, proof.top, spec.top_order, skey, new_shard.to_bytes())
    return old_top, new_top


def verify_forest_update(
    old_root_digest: Digest,
    proof: ForestUpdateProof,
    spec: StoreSpec,
    key: bytes,
    value: bytes | None = None,
) -> Digest:
    """Validate a forest update VO against the known old top root and
    return the client-derived new top root."""
    old_top, new_top = derive_forest_update_roots(proof, spec, key, value)
    if old_top != old_root_digest:
        raise ProofError("update proof does not match committed root digest")
    return new_top


def implied_root_for_forest_range(
    proof: ForestRangeProof, spec: StoreSpec
) -> Digest:
    """The top root a forest range proof vouches for.

    Every shard must prove its slice (completeness), every shard
    proof's implied root must be the exact entry the top tree commits,
    and ``entries`` must be the sorted merge of the per-shard slices.
    """
    if len(proof.shard_proofs) != spec.shards:
        raise ProofError("range proof does not cover every shard")
    if (proof.top.low, proof.top.high) != (shard_key(0), shard_key(spec.shards - 1)):
        raise ProofError("top-tree range proof does not span the shard keys")
    top_root = implied_root_for_range(proof.top)
    if [key for key, _ in proof.top.entries] != \
            [shard_key(i) for i in range(spec.shards)]:
        raise ProofError("top-tree range proof reveals the wrong shard set")
    for index, shard_proof in enumerate(proof.shard_proofs):
        if (shard_proof.low, shard_proof.high) != (proof.low, proof.high):
            raise ProofError(f"shard {index} proof covers a different range")
        implied = implied_root_for_range(shard_proof)
        if proof.top.entries[index][1] != implied.to_bytes():
            raise ProofError(f"top tree entry disagrees with shard {index} proof")
    merged = tuple(_sorted_merge(*(p.entries for p in proof.shard_proofs)))
    if merged != proof.entries:
        raise ProofError("merged entries disagree with the per-shard proofs")
    return top_root


def verify_forest_range(
    root_digest: Digest, proof: ForestRangeProof, spec: StoreSpec
) -> tuple[tuple[bytes, bytes], ...]:
    """Validate a forest range VO against the known top root; returns
    the proven, globally sorted entries."""
    if implied_root_for_forest_range(proof, spec) != root_digest:
        raise ProofError("range proof does not match committed root digest")
    return proof.entries
