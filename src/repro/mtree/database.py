"""A verified key-value database: queries, answers, verification objects.

The paper models the CVS server as "a database of data items" where
checkout is a read request and commit is an update request.  This
module provides both halves of that picture:

* :class:`VerifiedDatabase` -- the *server-side* store.  Every query is
  answered together with a verification object ``v(Q, D)`` built from
  the Merkle B+-tree.
* :class:`ClientVerifier` -- the *client-side* state of Section 4.1: a
  single tracked root digest ``M``.  ``apply`` verifies a response,
  returns the (now trustworthy) answer, and advances ``M`` for updates.

The multi-user protocols (:mod:`repro.protocols`) are layered on top:
they add counters, signatures, and XOR registers around exactly this
verify-and-advance loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest
from repro.mtree.forest import (
    DEFAULT_TOP_ORDER,
    ForestRangeProof,
    ForestReadProof,
    ForestUpdateProof,
    MerkleForest,
    StoreSpec,
    build_forest_range_proof,
    build_forest_read_proof,
    build_forest_update_proof,
    verify_forest_range,
    verify_forest_read,
    verify_forest_update,
)
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.proofs import (
    ProofError,
    RangeProof,
    ReadProof,
    UpdateProof,
    build_range_proof,
    build_read_proof,
    build_update_proof,
    verify_range,
    verify_read,
    verify_update,
)

# -- queries -----------------------------------------------------------------


@dataclass(frozen=True)
class ReadQuery:
    """Point read: the paper's checkout of a single item."""

    key: bytes

    @property
    def is_update(self) -> bool:
        return False


@dataclass(frozen=True)
class RangeQuery:
    """Range read over ``low <= key <= high`` (checkout of a directory)."""

    low: bytes
    high: bytes

    @property
    def is_update(self) -> bool:
        return False


@dataclass(frozen=True)
class WriteQuery:
    """Insert-or-overwrite: the paper's commit of a single item."""

    key: bytes
    value: bytes

    @property
    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class DeleteQuery:
    """Removal of an item (e.g. ``cvs remove``)."""

    key: bytes

    @property
    def is_update(self) -> bool:
        return True


Query = ReadQuery | RangeQuery | WriteQuery | DeleteQuery
Proof = (ReadProof | RangeProof | UpdateProof
         | ForestReadProof | ForestRangeProof | ForestUpdateProof)


@dataclass(frozen=True)
class QueryResult:
    """A server response: the answer ``Q(D)`` plus the VO ``v(Q, D)``.

    ``proof`` is ``None`` only for protocol-internal responses that
    carry no data query (e.g. Protocol III audit fetches).
    """

    answer: object
    proof: Proof | None


class VerifiedDatabase:
    """Server-side Merkle-backed store answering queries with VOs.

    With ``shards == 1`` the store is the classic single Merkle
    B+-tree; with ``shards > 1`` it is a :class:`MerkleForest` and
    every VO becomes two-level.  The signed root is always
    :meth:`root_digest`, whichever backing store produced it.
    """

    def __init__(self, order: int = 8, shards: int = 1,
                 top_order: int = DEFAULT_TOP_ORDER) -> None:
        self._spec = StoreSpec(order=order, shards=shards, top_order=top_order)
        if shards > 1:
            self._mtree: MerkleBPlusTree | MerkleForest = MerkleForest(
                order=order, shards=shards, top_order=top_order)
        else:
            self._mtree = MerkleBPlusTree(order=order)

    @property
    def order(self) -> int:
        return self._spec.order

    @property
    def spec(self) -> StoreSpec:
        return self._spec

    @property
    def shards(self) -> int:
        return self._spec.shards

    @property
    def mtree(self) -> MerkleBPlusTree | MerkleForest:
        return self._mtree

    def clone(self) -> "VerifiedDatabase":
        """Independent copy (see :meth:`MerkleBPlusTree.clone`)."""
        twin = VerifiedDatabase.__new__(VerifiedDatabase)
        twin._spec = self._spec
        twin._mtree = self._mtree.clone()
        return twin

    def __len__(self) -> int:
        return len(self._mtree)

    def root_digest(self) -> Digest:
        return self._mtree.root_digest()

    def get(self, key: bytes) -> bytes | None:
        """Unverified convenience read (server-internal use)."""
        return self._mtree.get(key)

    def execute(self, query: Query) -> QueryResult:
        """Execute ``query`` and return the answer with its VO.

        Update proofs snapshot the search path *before* mutating, per
        Section 4.1 ("recompute the root digest ... before and after
        the operation").
        """
        if isinstance(self._mtree, MerkleForest):
            return self._execute_forest(self._mtree, query)
        if isinstance(query, ReadQuery):
            proof = build_read_proof(self._mtree, query.key)
            return QueryResult(answer=proof.value, proof=proof)
        if isinstance(query, RangeQuery):
            proof = build_range_proof(self._mtree, query.low, query.high)
            return QueryResult(answer=proof.entries, proof=proof)
        if isinstance(query, WriteQuery):
            proof = build_update_proof(self._mtree, "insert", query.key)
            self._mtree.insert(query.key, query.value)
            return QueryResult(answer=None, proof=proof)
        if isinstance(query, DeleteQuery):
            if query.key not in self._mtree:
                raise KeyError(f"cannot delete absent key {query.key!r}")
            proof = build_update_proof(self._mtree, "delete", query.key)
            self._mtree.delete(query.key)
            return QueryResult(answer=None, proof=proof)
        raise TypeError(f"unknown query type {type(query).__name__}")

    def _execute_forest(self, forest: MerkleForest, query: Query) -> QueryResult:
        """Forest mode: same answers, two-level proofs."""
        if isinstance(query, ReadQuery):
            proof = build_forest_read_proof(forest, query.key)
            return QueryResult(answer=proof.inner.value, proof=proof)
        if isinstance(query, RangeQuery):
            proof = build_forest_range_proof(forest, query.low, query.high)
            return QueryResult(answer=proof.entries, proof=proof)
        if isinstance(query, WriteQuery):
            proof = build_forest_update_proof(forest, "insert", query.key)
            forest.insert(query.key, query.value)
            return QueryResult(answer=None, proof=proof)
        if isinstance(query, DeleteQuery):
            if query.key not in forest:
                raise KeyError(f"cannot delete absent key {query.key!r}")
            proof = build_forest_update_proof(forest, "delete", query.key)
            forest.delete(query.key)
            return QueryResult(answer=None, proof=proof)
        raise TypeError(f"unknown query type {type(query).__name__}")


class ClientVerifier:
    """Client-side verification state: the tracked root digest ``M``.

    This is the single-user scheme from Section 4.1.  ``apply`` raises
    :class:`~repro.mtree.proofs.ProofError` on any integrity violation;
    on success it returns the verified answer and, for updates, moves
    ``M`` to the new root digest the client *itself* derived.
    """

    def __init__(self, root_digest: Digest, order: int | StoreSpec = 8) -> None:
        self._root_digest = root_digest
        self._spec = StoreSpec.coerce(order)
        self._order = self._spec.order

    @property
    def root_digest(self) -> Digest:
        return self._root_digest

    @property
    def spec(self) -> StoreSpec:
        return self._spec

    def expected_new_root(self, query: Query, proof: Proof) -> Digest:
        """The root digest an honest server must have after ``query``.

        Reads leave the root unchanged; updates are replayed from the
        VO.  Does not advance the tracked state.
        """
        if isinstance(query, (ReadQuery, RangeQuery)):
            return self._root_digest
        if self._spec.sharded:
            return self._expected_forest_root(query, proof)
        if isinstance(query, WriteQuery):
            if not isinstance(proof, UpdateProof) or proof.operation != "insert":
                raise ProofError("write query answered with a non-insert proof")
            return verify_update(self._root_digest, proof, self._order, query.key, query.value)
        if isinstance(query, DeleteQuery):
            if not isinstance(proof, UpdateProof) or proof.operation != "delete":
                raise ProofError("delete query answered with a non-delete proof")
            return verify_update(self._root_digest, proof, self._order, query.key)
        raise TypeError(f"unknown query type {type(query).__name__}")

    def _expected_forest_root(self, query: Query, proof: Proof) -> Digest:
        if isinstance(query, WriteQuery):
            if not isinstance(proof, ForestUpdateProof) or proof.operation != "insert":
                raise ProofError("write query answered with a non-insert proof")
            return verify_forest_update(
                self._root_digest, proof, self._spec, query.key, query.value)
        if isinstance(query, DeleteQuery):
            if not isinstance(proof, ForestUpdateProof) or proof.operation != "delete":
                raise ProofError("delete query answered with a non-delete proof")
            return verify_forest_update(
                self._root_digest, proof, self._spec, query.key)
        raise TypeError(f"unknown query type {type(query).__name__}")

    def apply(self, query: Query, result: QueryResult) -> object:
        """Verify a response and advance the tracked root digest."""
        if isinstance(query, ReadQuery):
            if self._spec.sharded:
                if not isinstance(result.proof, ForestReadProof):
                    raise ProofError("read query answered with a non-read proof")
                value = verify_forest_read(
                    self._root_digest, result.proof, query.key, self._spec)
            else:
                if not isinstance(result.proof, ReadProof):
                    raise ProofError("read query answered with a non-read proof")
                value = verify_read(self._root_digest, result.proof, query.key)
            if value != result.answer:
                raise ProofError("server answer disagrees with its own proof")
            return value
        if isinstance(query, RangeQuery):
            if self._spec.sharded:
                if not isinstance(result.proof, ForestRangeProof):
                    raise ProofError("range query answered with a non-range proof")
                if (result.proof.low, result.proof.high) != (query.low, query.high):
                    raise ProofError("range proof covers a different range")
                entries = verify_forest_range(
                    self._root_digest, result.proof, self._spec)
            else:
                if not isinstance(result.proof, RangeProof):
                    raise ProofError("range query answered with a non-range proof")
                if (result.proof.low, result.proof.high) != (query.low, query.high):
                    raise ProofError("range proof covers a different range")
                entries = verify_range(self._root_digest, result.proof)
            if entries != result.answer:
                raise ProofError("server answer disagrees with its own proof")
            return entries
        new_root = self.expected_new_root(query, result.proof)
        self._root_digest = new_root
        return None
